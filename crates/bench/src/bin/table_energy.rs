//! Energy comparison (the §I/§II-D argument made quantitative): worst-case
//! battery/residual-energy budgets per scheme, and measured NVM write energy
//! (including undo-log amplification) for a write-heavy workload.

use cwsp_bench::scheme_stats;
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::energy::{battery_budget_joules, report};
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("table_energy", run);
}

fn run() {
    let cfg = SimConfig::default();
    println!("=== Battery / residual-energy budgets (per core) ===");
    for scheme in [Scheme::cwsp(), Scheme::Capri, Scheme::IdealPsp] {
        let j = battery_budget_joules(scheme, &cfg);
        println!("  {:<12} {:>12.3} µJ", scheme.name(), j * 1e6);
    }
    println!("\n(eADR-class designs must flush hundreds of MB of LLC; cWSP only the WPQs)");

    let w = cwsp_workloads::by_name("lu-cg").expect("workload");
    println!("\n=== NVM write energy, {} (write storm) ===", w.name);
    // Both scheme simulations run concurrently on the engine pool; the
    // in-order results keep the printed table byte-identical.
    let schemes = [Scheme::cwsp(), Scheme::Capri];
    let all_stats = cwsp_bench::par_map(&schemes, |&scheme| {
        scheme_stats(&w, &cfg, scheme, CompileOptions::default())
    });
    for (scheme, stats) in schemes.into_iter().zip(all_stats) {
        let r = report(scheme, &cfg, stats.nvm_writes);
        println!(
            "  {:<12} {:>10} word writes  {:>10.3} µJ (incl. logging amplification)",
            scheme.name(),
            r.nvm_word_writes,
            r.nvm_write_joules * 1e6
        );
    }
}
