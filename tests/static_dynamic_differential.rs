//! Differential soundness suite for the static analyzer.
//!
//! The contract under test: **static-clean ⇒ dynamic-clean**. A compiled
//! module with no error-severity diagnostic from `cwsp_analyzer` must pass
//! every dynamic checker (`check_all`: static residual-WAR count, executed
//! antidependence, slice exactness, output/return oracle) on every run.
//! The converse direction is exercised by injecting the three canonical bug
//! shapes into known-good compiled modules and requiring the analyzer to
//! catch each one statically, with a path witness.

use cwsp::analyzer::{self, Severity};
use cwsp::compiler::pipeline::{CompileOptions, Compiled, CwspCompiler};
use cwsp::compiler::slice::RsSource;
use cwsp::compiler::verify::check_all;
use cwsp::core::genprog::{generate, ProgramSpec};
use cwsp::ir::inst::{Inst, MemRef, Operand};
use cwsp::ir::layout::GLOBAL_BASE;
use cwsp::ir::module::Module;
use cwsp::ir::types::{Reg, RegionId};
use cwsp_bench::par_map;

fn compile(m: &Module) -> Compiled {
    CwspCompiler::new(CompileOptions::default()).compile(m)
}

#[test]
fn every_builtin_workload_is_static_clean() {
    let workloads = cwsp::workloads::all();
    let failures: Vec<String> = par_map(&workloads, |w| {
        let c = compile(&w.module);
        let report = analyzer::analyze(&c.module, &c.slices);
        if report.is_clean() {
            None
        } else {
            Some(format!("{}:\n{}", w.name, report.render_text()))
        }
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn static_clean_genprog_modules_pass_every_dynamic_checker() {
    let spec = ProgramSpec {
        globals: 2,
        global_words: 8,
        segments: 4,
        max_trip: 4,
        calls: true,
    };
    let seeds: Vec<u64> = (0..200).collect();
    let failures: Vec<String> = par_map(&seeds, |&seed| {
        let m = generate(&spec, seed);
        let c = compile(&m);
        let report = analyzer::analyze(&c.module, &c.slices);
        if !report.is_clean() {
            return Some(format!(
                "seed {seed} not static-clean:\n{}",
                report.render_text()
            ));
        }
        // Static-clean: the dynamic checkers must agree on the executed run.
        check_all(&m, &c.module, &c.slices, 200_000)
            .err()
            .map(|e| format!("seed {seed} static-clean but dynamically dirty: {e}"))
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// A compiled module with at least one recovery slice restoring from a
/// checkpoint slot — the substrate for the injected-bug mutations.
fn module_with_slot_restore() -> (Compiled, RegionId, Reg) {
    let spec = ProgramSpec::default();
    for seed in 0..64 {
        let c = compile(&generate(&spec, seed));
        // `SliceTable::iter` order is unspecified (HashMap) — take the
        // lowest (region, reg) so the mutation target is deterministic
        // run-to-run.
        let found = c
            .slices
            .iter()
            .flat_map(|(id, slice)| {
                slice
                    .restores
                    .iter()
                    .filter(|(_, src)| matches!(src, RsSource::Slot))
                    .map(|(r, _)| (*id, *r))
            })
            .min_by_key(|(id, r)| (id.0, r.0));
        if let Some((id, r)) = found {
            return (c, id, r);
        }
    }
    panic!("no genprog module with a Slot restore in 64 seeds");
}

/// Position (function, block, idx) of a region's boundary instruction.
fn find_boundary(m: &Module, region: RegionId) -> (cwsp::ir::module::FuncId, u32, usize) {
    for (fid, f) in m.iter_functions() {
        for (bid, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if matches!(inst, Inst::Boundary { id } if *id == region) {
                    return (fid, bid.0, i);
                }
            }
        }
    }
    panic!("boundary for {region} not found");
}

#[test]
fn injected_dropped_checkpoint_is_caught_statically_with_witness() {
    let (c, region, reg) = module_with_slot_restore();
    // Mutation: delete every `Ckpt reg` in the region's function. Dropping
    // only the copy nearest the boundary can be benign when another save
    // still dominates it; with no save left at all, the region's Slot
    // restore is unconditionally stale and must be flagged.
    let (fid, _, _) = find_boundary(&c.module, region);
    let mut m = c.module.clone();
    let f = m.function_mut(fid);
    for b in &mut f.blocks {
        b.insts
            .retain(|inst| !matches!(inst, Inst::Ckpt { reg: r } if *r == reg));
    }
    let report = analyzer::analyze(&m, &c.slices);
    let hit = report
        .errors()
        .find(|d| d.code == "I2-unsynced-slot" && d.region == Some(region.0))
        .unwrap_or_else(|| panic!("dropped checkpoint not flagged:\n{}", report.render_text()));
    let witness = hit.witness.as_ref().expect("witness attached");
    assert!(!witness.steps.is_empty(), "witness has a concrete path");
}

#[test]
fn injected_clobbered_slice_source_is_caught_statically_with_witness() {
    let (c, region, reg) = module_with_slot_restore();
    // Mutation: overwrite the restored register right before the boundary —
    // the checkpointed slot now disagrees with the live value.
    let (fid, bid, idx) = find_boundary(&c.module, region);
    let mut m = c.module.clone();
    m.function_mut(fid).blocks[bid as usize].insts.insert(
        idx,
        Inst::Mov {
            dst: reg,
            src: Operand::imm(0xDEAD_BEEF_0BAD_F00D),
        },
    );
    let report = analyzer::analyze(&m, &c.slices);
    let hit = report
        .errors()
        .find(|d| d.code == "I2-unsynced-slot" && d.region == Some(region.0))
        .unwrap_or_else(|| panic!("clobbered source not flagged:\n{}", report.render_text()));
    let witness = hit.witness.as_ref().expect("witness attached");
    assert!(
        witness.steps.iter().any(|s| s.note.contains("clobbers")),
        "witness names the clobbering definition: {witness:?}"
    );
}

#[test]
fn injected_intra_region_war_is_caught_statically_with_witness() {
    let (c, _, _) = module_with_slot_restore();
    // Mutation: a load→store pair on the same global word at function entry,
    // inside the entry region (before any boundary).
    let mut m = c.module.clone();
    let fid = m.entry().expect("entry");
    let f = m.function_mut(fid);
    let spy = Reg(f.reg_count);
    f.reg_count += 1;
    let insts = &mut f.blocks[0].insts;
    insts.insert(0, Inst::load(spy, MemRef::abs(GLOBAL_BASE)));
    insts.insert(1, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
    let report = analyzer::analyze(&m, &c.slices);
    let hit = report
        .errors()
        .find(|d| d.code == "I1-mem-war")
        .unwrap_or_else(|| panic!("intra-region WAR not flagged:\n{}", report.render_text()));
    let witness = hit.witness.as_ref().expect("witness attached");
    assert!(
        witness.steps.iter().any(|s| s.note.contains("ldr")),
        "witness shows the offending load: {witness:?}"
    );
    assert!(
        witness.steps.iter().any(|s| s.note.contains("str")),
        "witness ends at the offending store: {witness:?}"
    );
}

#[test]
fn severity_ordering_drives_exit_semantics() {
    // The lint driver's exit code hinges on Error > Warning > Info.
    assert!(Severity::Error > Severity::Warning);
    assert!(Severity::Warning > Severity::Info);
}
