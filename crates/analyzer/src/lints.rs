//! General IR lints (the `L-*` rule family).
//!
//! These ride the same traversals as the invariant checks but report code
//! hygiene rather than crash-consistency violations — with one exception:
//! a program store (or load) whose address provably lands in the reserved
//! checkpoint/metadata layout ranges is an error, because it would corrupt
//! (or depend on) recovery state behind the hardware's back, voiding the
//! separation assumption the other analyses rest on.

use crate::consts::{CVal, ConstProp};
use crate::diag::{Diagnostic, Invariant, Location, Severity};
use cwsp_compiler::liveness::{defs, RegSet};
use cwsp_compiler::slice::{RsSource, SliceTable};
use cwsp_ir::cfg;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::{Inst, MemRef, Operand};
use cwsp_ir::layout;
use cwsp_ir::module::Module;
use cwsp_ir::pretty::fmt_inst;
use cwsp_ir::types::{Reg, RegionId, Word};
use std::collections::HashSet;

fn diag(
    f: &Function,
    b: BlockId,
    idx: Option<usize>,
    severity: Severity,
    code: &'static str,
    message: String,
) -> Diagnostic {
    Diagnostic {
        severity,
        invariant: Invariant::Lint,
        code,
        message,
        location: Location {
            function: f.name.clone(),
            block: b.0,
            inst: idx,
        },
        region: None,
        witness: None,
    }
}

/// Resolve the address of `m` at `(b, idx)` to a constant if possible.
fn const_addr(
    module: &Module,
    consts: &ConstProp,
    f: &Function,
    b: BlockId,
    idx: usize,
    m: &MemRef,
) -> Option<Word> {
    let base = match m.base {
        Operand::Imm(v) => module.resolve_addr(v),
        Operand::Reg(r) => match consts.value_before(f, b, idx, r)? {
            CVal::Const(c) => module.resolve_addr(c),
            CVal::Unknown => return None,
        },
    };
    Some(base.wrapping_add(m.offset as Word))
}

/// Run all lints on one function, appending findings to `out`.
pub fn check_function(
    module: &Module,
    f: &Function,
    slices: &SliceTable,
    out: &mut Vec<Diagnostic>,
) {
    let rpo = cfg::reverse_post_order(f);
    let mut reachable = vec![false; f.blocks.len()];
    for &b in &rpo {
        reachable[b.index()] = true;
    }

    // --- L-unreachable-block ---
    for (bid, _) in f.iter_blocks() {
        if !reachable[bid.index()] {
            out.push(diag(
                f,
                bid,
                None,
                Severity::Warning,
                "L-unreachable-block",
                format!("bb{} is unreachable from the function entry", bid.0),
            ));
        }
    }

    // --- L-uninit-read: forward must-defined analysis. ---
    // The interpreter zero-initializes registers, so this is a warning (the
    // program still executes deterministically), but reading a register no
    // path has written usually means a lowering bug.
    let nregs = f.reg_count as usize;
    let mut defined_in: Vec<Option<RegSet>> = vec![None; f.blocks.len()];
    let mut entry_defined = RegSet::new(nregs);
    for p in 0..f.param_count {
        entry_defined.insert(Reg(p));
    }
    defined_in[f.entry().index()] = Some(entry_defined);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let Some(mut state) = defined_in[b.index()].clone() else {
                continue;
            };
            for inst in &f.block(b).insts {
                for d in defs(inst) {
                    state.insert(d);
                }
            }
            for s in cfg::successors(f, b) {
                match &mut defined_in[s.index()] {
                    cur @ None => {
                        *cur = Some(state.clone());
                        changed = true;
                    }
                    Some(cur) => {
                        for r in (0..nregs as u32).map(Reg) {
                            if cur.contains(r) && !state.contains(r) {
                                cur.remove(r);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    }
    let mut warned_uninit: HashSet<Reg> = HashSet::new();
    for &b in &rpo {
        let Some(mut state) = defined_in[b.index()].clone() else {
            continue;
        };
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            // `Ckpt r` on a never-written register is the entry residual
            // checkpoint pattern for zero-initialized locals — skip it.
            if !matches!(inst, Inst::Ckpt { .. }) {
                for u in inst.uses() {
                    if !state.contains(u) && warned_uninit.insert(u) {
                        out.push(diag(
                            f,
                            b,
                            Some(i),
                            Severity::Warning,
                            "L-uninit-read",
                            format!(
                                "{} reads {u}, which no path has written (registers zero-initialize)",
                                fmt_inst(inst)
                            ),
                        ));
                    }
                }
            }
            for d in defs(inst) {
                state.insert(d);
            }
        }
    }

    // --- L-dead-ckpt + L-reserved-store/load ---
    // A checkpoint is "consumed" if some slice of a region whose boundary
    // lives in this function restores from that register's slot (directly
    // or as an expression leaf).
    let mut consumed = RegSet::new(nregs);
    let region_ids: Vec<RegionId> = f
        .blocks
        .iter()
        .flat_map(|blk| {
            blk.insts.iter().filter_map(|i| match i {
                Inst::Boundary { id } => Some(*id),
                _ => None,
            })
        })
        .collect();
    for id in &region_ids {
        if let Some(slice) = slices.get(*id) {
            for (r, src) in &slice.restores {
                match src {
                    RsSource::Slot => {
                        consumed.insert(*r);
                    }
                    RsSource::Expr(e) => {
                        let mut leaves = Vec::new();
                        e.slot_leaves(&mut leaves);
                        for leaf in leaves {
                            consumed.insert(leaf);
                        }
                    }
                    RsSource::Const(_) => {}
                }
            }
        }
    }

    let consts = ConstProp::compute(f);
    for &b in &rpo {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            match inst {
                Inst::Ckpt { reg } if !consumed.contains(*reg) => {
                    out.push(diag(
                        f,
                        b,
                        Some(i),
                        Severity::Warning,
                        "L-dead-ckpt",
                        format!(
                            "checkpoint of {reg} is never consumed by any recovery slice in this function"
                        ),
                    ));
                }
                Inst::Store { addr, .. } => {
                    if let Some(a) = const_addr(module, &consts, f, b, i, addr) {
                        if layout::is_ckpt_addr(a) || layout::is_hw_meta_addr(a) {
                            out.push(diag(
                                f,
                                b,
                                Some(i),
                                Severity::Error,
                                "L-reserved-store",
                                format!(
                                    "{} writes reserved address {a:#x} (checkpoint/recovery metadata range)",
                                    fmt_inst(inst)
                                ),
                            ));
                        }
                    }
                }
                Inst::Load { addr, .. } => {
                    if let Some(a) = const_addr(module, &consts, f, b, i, addr) {
                        if layout::is_ckpt_addr(a) || layout::is_hw_meta_addr(a) {
                            out.push(diag(
                                f,
                                b,
                                Some(i),
                                Severity::Error,
                                "L-reserved-load",
                                format!(
                                    "{} reads reserved address {a:#x} (checkpoint/recovery metadata range)",
                                    fmt_inst(inst)
                                ),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_compiler::slice::RecoverySlice;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::BinOp;

    fn run(f: &Function, t: &SliceTable) -> Vec<Diagnostic> {
        let m = Module::new("t");
        let mut out = Vec::new();
        check_function(&m, f, t, &mut out);
        out
    }

    #[test]
    fn unreachable_block_warns() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let dead = b.block();
        b.push(e, Inst::Halt);
        b.push(dead, Inst::Halt);
        let f = b.build();
        let diags = run(&f, &SliceTable::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "L-unreachable-block");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn uninit_read_warns_once_per_register() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.vreg();
        let r1 = b.vreg();
        b.push(e, Inst::binary(BinOp::Add, r1, r0.into(), r0.into()));
        b.push(e, Inst::Out { val: r0.into() });
        b.push(e, Inst::Halt);
        let f = b.build();
        let diags = run(&f, &SliceTable::new());
        let uninit: Vec<_> = diags.iter().filter(|d| d.code == "L-uninit-read").collect();
        assert_eq!(uninit.len(), 1, "deduped per register: {diags:?}");
        assert!(uninit[0].message.contains("r0"));
    }

    #[test]
    fn defined_on_one_path_only_still_warns() {
        let mut bld = FunctionBuilder::new("f", 1);
        let e = bld.entry();
        let a = bld.block();
        let join = bld.block();
        let r1 = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: a,
                if_false: join,
            },
        );
        bld.push(
            a,
            Inst::Mov {
                dst: r1,
                src: Operand::imm(1),
            },
        );
        bld.push(a, Inst::Br { target: join });
        bld.push(join, Inst::Out { val: r1.into() });
        bld.push(join, Inst::Halt);
        let f = bld.build();
        let diags = run(&f, &SliceTable::new());
        assert!(diags.iter().any(|d| d.code == "L-uninit-read"), "{diags:?}");
    }

    #[test]
    fn param_read_is_not_uninit() {
        let mut b = FunctionBuilder::new("f", 1);
        let e = b.entry();
        b.push(e, Inst::Out { val: Reg(0).into() });
        b.push(e, Inst::Halt);
        let f = b.build();
        assert!(run(&f, &SliceTable::new()).is_empty());
    }

    #[test]
    fn dead_ckpt_warns_and_consumed_ckpt_does_not() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(1));
        let r1 = b.mov(e, Operand::imm(2));
        b.push(e, Inst::Ckpt { reg: r0 });
        b.push(e, Inst::Ckpt { reg: r1 });
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(e, Inst::Out { val: r0.into() });
        b.push(e, Inst::Out { val: r1.into() });
        b.push(e, Inst::Halt);
        let f = b.build();
        let mut t = SliceTable::new();
        t.insert(
            RegionId(0),
            RecoverySlice {
                restores: vec![(r0, RsSource::Slot), (r1, RsSource::Const(2))],
            },
        );
        let diags = run(&f, &t);
        let dead: Vec<_> = diags.iter().filter(|d| d.code == "L-dead-ckpt").collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains("r1"));
    }

    #[test]
    fn store_to_ckpt_range_is_an_error() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        b.push(
            e,
            Inst::store(
                Operand::imm(1),
                MemRef::abs(layout::ckpt_slot_addr(0, Reg(3))),
            ),
        );
        b.push(e, Inst::Halt);
        let f = b.build();
        let diags = run(&f, &SliceTable::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "L-reserved-store");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn reserved_store_found_through_const_propagated_base() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(layout::RECOVERY_META_BASE));
        b.push(e, Inst::store(Operand::imm(7), MemRef::reg(r0, 8)));
        b.push(e, Inst::Halt);
        let f = b.build();
        let diags = run(&f, &SliceTable::new());
        assert!(
            diags.iter().any(|d| d.code == "L-reserved-store"),
            "{diags:?}"
        );
    }

    #[test]
    fn load_from_reserved_range_is_an_error() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.vreg();
        b.push(
            e,
            Inst::load(r0, MemRef::abs(layout::ckpt_slot_addr(0, Reg(0)))),
        );
        b.push(e, Inst::Out { val: r0.into() });
        b.push(e, Inst::Halt);
        let f = b.build();
        let diags = run(&f, &SliceTable::new());
        assert!(
            diags.iter().any(|d| d.code == "L-reserved-load"),
            "{diags:?}"
        );
    }

    #[test]
    fn program_data_store_is_fine() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        b.push(
            e,
            Inst::store(Operand::imm(1), MemRef::abs(layout::GLOBAL_BASE)),
        );
        b.push(e, Inst::Halt);
        let f = b.build();
        assert!(run(&f, &SliceTable::new()).is_empty());
    }
}
