//! Call-save computation: fill each call's `save_regs` with the registers
//! live across it.
//!
//! On real hardware, compiler calling conventions spill caller-saved live
//! values to the stack around calls; cWSP relies on exactly that to make
//! cross-frame register state persistent (the stack is NVM). Our IR makes the
//! spill explicit in the `Call` instruction; this pass computes the minimal
//! save set = registers live after the call, minus the call's own return
//! register.

use crate::liveness::Liveness;
use cwsp_ir::inst::Inst;
use cwsp_ir::module::Module;
use cwsp_ir::types::Reg;

/// Fill `save_regs` on every call in the module. Returns the total number of
/// saved registers across all call sites (a spill-traffic statistic).
pub fn compute_call_saves(module: &mut Module) -> usize {
    let mut total = 0;
    for fid in 0..module.function_count() {
        let fid = cwsp_ir::module::FuncId(fid as u32);
        let f = module.function(fid).clone();
        let lv = Liveness::compute(&f);
        let mut updates: Vec<(u32, usize, Vec<Reg>)> = Vec::new();
        for (bid, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Inst::Call { ret, .. } = inst {
                    let live = lv.live_after(&f, bid, i);
                    let saves: Vec<Reg> = live.iter().filter(|r| Some(*r) != *ret).collect();
                    total += saves.len();
                    updates.push((bid.0, i, saves));
                }
            }
        }
        let fm = module.function_mut(fid);
        for (b, i, saves) in updates {
            if let Inst::Call { save_regs, .. } = &mut fm.blocks[b as usize].insts[i] {
                *save_regs = saves;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{BinOp, Operand};

    #[test]
    fn live_across_call_is_saved_and_dead_is_not() {
        let mut m = Module::new("t");
        let mut leaf = FunctionBuilder::new("leaf", 0);
        let le = leaf.entry();
        leaf.push(
            le,
            Inst::Ret {
                val: Some(Operand::imm(1)),
            },
        );
        let leaf = m.add_function(leaf.build());

        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let live = b.mov(e, Operand::imm(10));
        let dead = b.mov(e, Operand::imm(20));
        let _ = dead;
        let r = b.call(e, leaf, vec![], true).unwrap();
        let s = b.bin(e, BinOp::Add, live.into(), r.into());
        b.push(
            e,
            Inst::Ret {
                val: Some(s.into()),
            },
        );
        let main = m.add_function(b.build());
        m.set_entry(main);

        let n = compute_call_saves(&mut m);
        assert_eq!(n, 1);
        let f = m.function(main);
        let call = f
            .block(f.entry())
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::Call { save_regs, ret, .. } => Some((save_regs.clone(), *ret)),
                _ => None,
            })
            .unwrap();
        assert_eq!(call.0, vec![live]);
        assert!(
            !call.0.contains(&call.1.unwrap()),
            "return register never saved"
        );

        // Semantics preserved (and now robust to register-file loss).
        let out = cwsp_ir::interp::run(&m, 1000).unwrap();
        assert_eq!(out.return_value, Some(11));
    }

    #[test]
    fn chained_calls_each_save_what_they_need() {
        let mut m = Module::new("t");
        let mut leaf = FunctionBuilder::new("leaf", 1);
        let le = leaf.entry();
        let p = leaf.param(0);
        let v = leaf.bin(le, BinOp::Add, p.into(), Operand::imm(1));
        leaf.push(
            le,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let leaf = m.add_function(leaf.build());

        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let keep = b.mov(e, Operand::imm(100));
        let r1 = b.call(e, leaf, vec![Operand::imm(1)], true).unwrap();
        let r2 = b.call(e, leaf, vec![r1.into()], true).unwrap();
        let s1 = b.bin(e, BinOp::Add, r2.into(), keep.into());
        b.push(
            e,
            Inst::Ret {
                val: Some(s1.into()),
            },
        );
        let main = m.add_function(b.build());
        m.set_entry(main);

        compute_call_saves(&mut m);
        let f = m.function(main);
        let saves: Vec<Vec<Reg>> = f
            .block(f.entry())
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Call { save_regs, .. } => Some(save_regs.clone()),
                _ => None,
            })
            .collect();
        // call1 saves keep (r1 is its ret); call2 saves keep (r1 dead after).
        assert!(saves[0].contains(&keep));
        assert!(saves[1].contains(&keep));
        assert!(
            !saves[1].contains(&r1),
            "r1 dead after second call consumes it"
        );
        assert_eq!(
            cwsp_ir::interp::run(&m, 1000).unwrap().return_value,
            Some(103)
        );
    }
}
