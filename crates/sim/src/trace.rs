//! Bounded event tracing for the persist machinery.
//!
//! Debugging crash-consistency issues requires seeing the interleaving of
//! region lifecycle events, persist traffic, and stalls around the failure
//! point. [`Trace`] is a fixed-capacity ring of [`Event`]s the machine can be
//! asked to record; the newest events — the ones leading up to a crash — are
//! always retained.

use cwsp_ir::types::{DynRegionId, Word};
use std::collections::VecDeque;
use std::fmt;

/// One traced machine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A dynamic region was opened on `core`.
    RegionOpen {
        cycle: u64,
        core: usize,
        region: DynRegionId,
    },
    /// A region fully persisted and retired from the RBT head.
    RegionRetire {
        cycle: u64,
        core: usize,
        region: DynRegionId,
    },
    /// A store entered the persist buffer.
    PersistIssue {
        cycle: u64,
        core: usize,
        region: DynRegionId,
        addr: Word,
    },
    /// A store reached a WPQ (and became persistent).
    PersistArrive {
        cycle: u64,
        mc: usize,
        region: DynRegionId,
        addr: Word,
    },
    /// An undo-log record was appended at an MC.
    UndoLogged {
        cycle: u64,
        mc: usize,
        region: DynRegionId,
        addr: Word,
    },
    /// The core stalled (`kind` is a static label: "pb", "rbt", "sync", …).
    Stall {
        cycle: u64,
        core: usize,
        kind: &'static str,
    },
    /// Power failed.
    PowerFailure { cycle: u64 },
}

impl Event {
    /// The cycle the event occurred at.
    pub fn cycle(&self) -> u64 {
        match self {
            Event::RegionOpen { cycle, .. }
            | Event::RegionRetire { cycle, .. }
            | Event::PersistIssue { cycle, .. }
            | Event::PersistArrive { cycle, .. }
            | Event::UndoLogged { cycle, .. }
            | Event::Stall { cycle, .. }
            | Event::PowerFailure { cycle } => *cycle,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::RegionOpen {
                cycle,
                core,
                region,
            } => {
                write!(f, "[{cycle:>8}] core{core} open   {region}")
            }
            Event::RegionRetire {
                cycle,
                core,
                region,
            } => {
                write!(f, "[{cycle:>8}] core{core} retire {region}")
            }
            Event::PersistIssue {
                cycle,
                core,
                region,
                addr,
            } => {
                write!(f, "[{cycle:>8}] core{core} issue  {region} @{addr:#x}")
            }
            Event::PersistArrive {
                cycle,
                mc,
                region,
                addr,
            } => {
                write!(f, "[{cycle:>8}] mc{mc}   arrive {region} @{addr:#x}")
            }
            Event::UndoLogged {
                cycle,
                mc,
                region,
                addr,
            } => {
                write!(f, "[{cycle:>8}] mc{mc}   undo   {region} @{addr:#x}")
            }
            Event::Stall { cycle, core, kind } => {
                write!(f, "[{cycle:>8}] core{core} stall  ({kind})")
            }
            Event::PowerFailure { cycle } => write!(f, "[{cycle:>8}] POWER FAILURE"),
        }
    }
}

/// A fixed-capacity ring of machine events (newest kept).
#[derive(Debug, Clone)]
pub struct Trace {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl Trace {
    /// A trace retaining at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Trace {
            cap: cap.max(1),
            events: VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
        }
    }

    /// Record an event (evicting the oldest when full).
    pub fn record(&mut self, e: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// Events in chronological order.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The last `n` events formatted one per line (crash post-mortems).
    pub fn tail(&self, n: usize) -> String {
        let skip = self.events.len().saturating_sub(n);
        self.events
            .iter()
            .skip(skip)
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest() {
        let mut t = Trace::new(3);
        for c in 0..5 {
            t.record(Event::PowerFailure { cycle: c });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn display_formats_are_greppable() {
        let e = Event::PersistArrive {
            cycle: 42,
            mc: 1,
            region: DynRegionId(7),
            addr: 0x1000,
        };
        let s = e.to_string();
        assert!(
            s.contains("mc1") && s.contains("dyn7") && s.contains("0x1000"),
            "{s}"
        );
        let open = Event::RegionOpen {
            cycle: 1,
            core: 0,
            region: DynRegionId(0),
        };
        assert!(open.to_string().contains("open"));
    }

    #[test]
    fn tail_returns_last_lines() {
        let mut t = Trace::new(10);
        for c in 0..6 {
            t.record(Event::Stall {
                cycle: c,
                core: 0,
                kind: "pb",
            });
        }
        let tail = t.tail(2);
        assert_eq!(tail.lines().count(), 2);
        assert!(tail.contains("[       5]"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(4);
        assert!(t.is_empty());
        assert_eq!(t.tail(3), "");
    }
}
