//! Compare persistence schemes on one paper workload: baseline (no crash
//! consistency), cWSP, Capri, and ReplayCache — a one-workload slice of
//! Fig 14.
//!
//! ```sh
//! cargo run --release --example scheme_comparison [workload]
//! ```

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::sim::config::SimConfig;
use cwsp::sim::machine::Machine;
use cwsp::sim::scheme::Scheme;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "radix".to_string());
    let w = cwsp::workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name} (try lbm, radix, tpcc, kmeans…)"));
    println!("workload: {}/{}", w.suite, w.name);

    let cfg = SimConfig::default();
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
    println!(
        "compiled: {} regions, {} checkpoints ({} pruned)",
        compiled.stats.boundaries_inserted, compiled.stats.ckpts_final, compiled.stats.ckpts_pruned
    );

    // Baseline runs the original binary; persistence schemes run the
    // compiled one (the paper normalizes the same way).
    let mut base_machine = Machine::new(&w.module, &cfg, Scheme::Baseline);
    let base = base_machine.run(u64::MAX, None).expect("baseline").stats;
    println!(
        "\n{:<14} {:>12} {:>8} {:>10} {:>12}",
        "scheme", "cycles", "slow", "IPC", "NVM writes"
    );
    println!(
        "{:<14} {:>12} {:>8.3} {:>10.2} {:>12}",
        "baseline",
        base.cycles,
        1.0,
        base.ipc(),
        "-"
    );

    for scheme in [Scheme::cwsp(), Scheme::Capri, Scheme::ReplayCache] {
        let mut machine = Machine::new(&compiled.module, &cfg, scheme);
        let s = machine.run(u64::MAX, None).expect("run").stats;
        println!(
            "{:<14} {:>12} {:>8.3} {:>10.2} {:>12}",
            scheme.name(),
            s.cycles,
            s.cycles as f64 / base.cycles as f64,
            s.ipc(),
            s.nvm_writes
        );
    }
    println!(
        "\n(cWSP persists at 8-byte granularity with MC speculation; Capri moves \
         64-byte lines into a redo buffer; ReplayCache persists synchronously)"
    );
}
