//! Whole-system persistence across the software stack: a program that
//! allocates with the simulated libc, enters the simulated kernel through the
//! §VI syscall path, and survives power failure anywhere — user code, libc,
//! or kernel.
//!
//! ```sh
//! cargo run --release --example kernel_persistence
//! ```

use cwsp::core::system::CwspSystem;
use cwsp::ir::builder::build_counted_loop;
use cwsp::ir::prelude::*;
use cwsp::runtime::{Runtime, SYS_TIME, SYS_WRITE};

fn main() {
    let mut m = Module::new("kernel-demo");
    let rt = Runtime::install(&mut m);
    let mut b = FunctionBuilder::new("main", 0);
    let e = b.entry();

    // buf = malloc(8); fill it via memset; then 10 iterations of:
    //   t = syscall(SYS_TIME); buf[t % 8] += t; syscall(SYS_WRITE, buf[t%8])
    let buf = b.call(e, rt.malloc, vec![Operand::imm(8)], true).unwrap();
    b.call(
        e,
        rt.memset,
        vec![buf.into(), Operand::imm(5), Operand::imm(8)],
        false,
    );
    let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(10), |b, bb, _i| {
        let t = b
            .call(
                bb,
                rt.syscall,
                vec![Operand::imm(SYS_TIME), Operand::imm(0), Operand::imm(0)],
                true,
            )
            .unwrap();
        let slot = b.bin(bb, BinOp::And, t.into(), Operand::imm(7));
        let off = b.bin(bb, BinOp::Shl, slot.into(), Operand::imm(3));
        let addr = b.bin(bb, BinOp::Add, buf.into(), off.into());
        let v = b.load(bb, MemRef::reg(addr, 0));
        let nv = b.bin(bb, BinOp::Add, v.into(), t.into());
        b.store(bb, nv.into(), MemRef::reg(addr, 0));
        b.call(
            bb,
            rt.syscall,
            vec![Operand::imm(SYS_WRITE), nv.into(), Operand::imm(0)],
            false,
        );
    });
    let fin = b.load(exit, MemRef::reg(buf, 0));
    b.push(
        exit,
        Inst::Ret {
            val: Some(fin.into()),
        },
    );
    let main_fn = m.add_function(b.build());
    m.set_entry(main_fn);

    let system = CwspSystem::compile(&m);
    let oracle = system.oracle(10_000_000).expect("oracle");
    println!(
        "failure-free: {} console writes through the kernel path, first = {:?}",
        oracle.output.len(),
        oracle.output.first()
    );

    // The syscall path executes kernel code with hand-written region
    // boundaries (§VI); crashes inside it must recover like anywhere else.
    let mut checked = 0;
    for crash_cycle in (25..6_000).step_by(149) {
        let rec = system
            .run_with_crash(crash_cycle, 10_000_000)
            .unwrap_or_else(|e| panic!("crash@{crash_cycle}: {e}"));
        assert_eq!(
            rec.output, oracle.output,
            "kernel state diverged @ {crash_cycle}"
        );
        assert_eq!(rec.return_value, oracle.return_value);
        checked += 1;
    }
    println!(
        "{checked} crash points (user code, malloc, memset, syscall entry, kernel \
         services): all recovered ✔"
    );
}
