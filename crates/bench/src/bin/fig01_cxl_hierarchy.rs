//! Figure 1: normalized slowdown of CXL PMEM main memory vs CXL DRAM main
//! memory with 2–5 cache levels (paper: 2.14× at 2 levels dropping to 1.34×
//! at 5 levels — deeper hierarchies make NVM's latency tolerable).
//!
//! Uses the hierarchy probes (working-set-controlled variants of the
//! memory-intensive subset) on a 1/32-scaled hierarchy; see
//! `cwsp_workloads::probes`.

use cwsp_bench::{cached_stats, gmean, measure_all, print_results, AppResult};
use cwsp_sim::config::{MainMemory, NvmTech, SimConfig};
use cwsp_sim::scheme::Scheme;
use cwsp_workloads::probes::{hierarchy_probes, SCALE_SHIFT};

fn main() {
    cwsp_bench::harness_main("fig01_cxl_hierarchy", run);
}

fn run() {
    let apps = hierarchy_probes();
    let mut trend = Vec::new();
    for levels in 2..=5usize {
        let results: Vec<AppResult> = measure_all(&apps, |w| {
            let mut pmem = SimConfig::default()
                .hierarchy_depth(levels)
                .scaled(SCALE_SHIFT);
            pmem.main_memory = MainMemory::Nvm(NvmTech::Pmem);
            let mut dram = pmem.clone();
            dram.main_memory = MainMemory::Nvm(NvmTech::Dram);
            let p = cached_stats(w.name, &w.module, &pmem, Scheme::Baseline).cycles;
            let d = cached_stats(w.name, &w.module, &dram, Scheme::Baseline).cycles;
            p as f64 / d as f64
        });
        print_results(
            &format!("Fig 1 [{levels} cache levels]: CXL-PMEM vs CXL-DRAM slowdown"),
            "x",
            &results,
        );
        let all: Vec<f64> = results.iter().map(|r| r.value).collect();
        trend.push((levels, gmean(&all)));
    }
    println!("\n>>> trend (paper: 2.14x at 2 levels -> 1.34x at 5 levels):");
    for (levels, g) in trend {
        println!("    {levels} levels: {g:.3}x");
    }
}
