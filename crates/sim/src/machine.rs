//! The whole-system machine: cores stepping the interpreter, the cache
//! hierarchy, the persist hardware, memory controllers, and power failure.
//!
//! The machine executes a (compiled) module with exact architectural
//! semantics — the interpreter is the same one the oracle uses — while
//! maintaining a *separate NVM image* that only advances when stores drain
//! through the persist machinery. Cutting power at an arbitrary cycle
//! therefore yields a bit-accurate post-failure NVM state: WPQ contents are
//! already applied (ADR), in-flight path entries and the volatile hierarchy
//! are lost, and per-region undo logs await reversal (§VII).

use crate::cache::{line_of, Cache};
use crate::config::SimConfig;
use crate::iodevice::IoDevice;
use crate::mc::MemoryController;
use crate::persist::{PersistBuffer, PersistPath, RbtEntry, RegionBoundaryTable};
use crate::profiler::{Cause, CycleProfiler, Site};
use crate::scheme::Scheme;
use crate::stats::SimStats;
use crate::trace::{Event, StallKind, Trace};
use crate::wbuf::WriteBuffer;
use cwsp_ir::decoded::DecodedModule;
use cwsp_ir::interp::{
    BoundaryInfo, EffectKind, Interp, InterpError, ResumeKind, ResumePoint, StepEffect,
};
use cwsp_ir::layout;
use cwsp_ir::memory::Memory;
use cwsp_ir::module::Module;
use cwsp_ir::types::{DynRegionId, RegionId, Word};
use cwsp_ir::{BlockId, FuncId, Inst};
use cwsp_obs::flight::{FlightKind, FlightRecord, FlightRecorder, REGION_NONE};
use cwsp_obs::forensics::{CoreFrontier, MachineFrontier};
use std::collections::VecDeque;
use std::sync::Arc;

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// All cores halted and the persist machinery drained.
    Completed,
    /// The instruction budget was exhausted (benchmark-window mode).
    InstLimit,
    /// Power was cut at the requested cycle.
    PowerFailure,
}

/// Result of [`Machine::run`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Why the run ended.
    pub end: RunEnd,
    /// Statistics up to the end.
    pub stats: SimStats,
}

/// The crash-surviving state extracted by [`Machine::into_crash_image`].
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// The NVM contents after ADR flush and undo-log reversal (§VII step 1).
    pub nvm: Memory,
    /// Output released by persisted regions (the battery-backed I/O redo
    /// buffer of §VIII keeps exactly this).
    pub output: Vec<Word>,
    /// The persisted recovery metadata: entry of the oldest unpersisted
    /// region, per core.
    pub resume: Vec<(ResumePoint, Option<RegionId>)>,
    /// Undo-log records reverted during the §VII step-1 reversal.
    pub reverted_records: usize,
}

/// Per-core pipeline + persist-hardware state.
struct Core<'m> {
    interp: Interp<'m>,
    l1: Cache,
    wb: WriteBuffer,
    pb: PersistBuffer,
    rbt: RegionBoundaryTable,
    busy_until: u64,
    halted: bool,
    /// Stores that executed architecturally but await PB space.
    pending_pb: VecDeque<(Word, Word)>,
    /// A boundary that executed but awaits RBT space (or a boundary drain
    /// when MC speculation is off).
    pending_boundary: Option<BoundaryInfo>,
    /// Dirty L1 evictions awaiting WB space.
    pending_evictions: VecDeque<u64>,
    /// Waiting for the sync-point drain (atomic/fence committed next).
    sync_drain: bool,
    /// Pending synchronous NVM writes to apply once the drain completes
    /// (the atomic's own store, persisted at commit).
    sync_writes: Vec<(Word, Word)>,
    /// Resume point to install once the sync drain completes.
    sync_resume: Option<(ResumePoint, Option<RegionId>)>,
    /// Dynamic instructions in the current region (Fig 19).
    region_insts: u64,
    /// Lines already redo-buffered by the current region (Capri model).
    capri_region_lines: Vec<u64>,
    /// Reused effect buffer so the execute stage never allocates.
    eff_scratch: StepEffect,
    /// In-progress coalesced stall span (only ever `Some` while tracing).
    open_stall: Option<OpenStall>,
    /// Site of the last issued instruction (profiler busy attribution).
    prof_site: Site,
    /// Superblock of the last issued instruction (profiler attribution at
    /// fused-dispatch granularity).
    prof_sb: Option<u32>,
    /// WPQ-delay cycles folded into the current instruction's cost
    /// (profiler splits them out of the busy window).
    prof_busy_wpq: u64,
    /// Scheme-stall cycles folded into the current instruction's cost.
    prof_busy_scheme: u64,
}

/// A stall span being coalesced for the trace ring: consecutive stall
/// cycles of one kind on one region collapse into a single [`Event::Stall`].
#[derive(Debug, Clone, Copy)]
struct OpenStall {
    kind: StallKind,
    region: Option<DynRegionId>,
    start: u64,
    cycles: u64,
}

/// What one issue slot did (drives both the issue loop and the profiler).
enum SlotOutcome {
    /// An instruction issued; `more` means another slot may issue this cycle.
    Issued { more: bool },
    /// The core stalled in the persist machinery.
    Stalled(StallKind),
    /// The core was halted or busy on entry (later slots only).
    Blocked,
}

/// The simulated machine.
pub struct Machine<'m> {
    module: &'m Module,
    cfg: &'m SimConfig,
    scheme: Scheme,
    cycle: u64,
    arch_mem: Memory,
    nvm: Memory,
    cores: Vec<Core<'m>>,
    shared: Vec<Cache>,
    dram_cache: Option<Cache>,
    mcs: Vec<MemoryController>,
    path: PersistPath,
    dyn_counter: u64,
    stats: SimStats,
    device: IoDevice,
    resume_meta: Vec<(ResumePoint, Option<RegionId>)>,
    trace: Option<Trace>,
    profiler: Option<CycleProfiler>,
    /// Crash-survivable flight recorder (persist-path event journal). `None`
    /// keeps every hook to a single predicted-not-taken branch.
    flight: Option<FlightRecorder>,
    /// Shadow of each core's persisted resume region (the RBT head's dynamic
    /// id at the last metadata write) — survives an empty RBT at the crash.
    resume_dyn: Vec<Option<u64>>,
    /// Reused scratch for [`MemoryController::tick_drained`] output.
    nvm_drained: Vec<(Word, DynRegionId)>,
    /// Fused superblock dispatch (see [`cwsp_ir::decoded::fuse_enabled`]).
    /// A pure dispatch strategy: results and statistics are byte-identical
    /// with it on or off.
    fuse: bool,
    /// Cached sum of live MC undo-log records; recomputed only when a log
    /// append or deallocation may have changed it (`logs_dirty`).
    live_logs_cache: usize,
    logs_dirty: bool,
    /// Opt-in durability-ordering oracle for [`Scheme::AutoFence`] crash
    /// tests (see [`Machine::enable_durability_oracle`]). `None` on every
    /// measured run.
    oracle: Option<DurabilityOracle>,
}

/// Ground truth for the flush/fence semantics under [`Scheme::AutoFence`]:
/// tracks, per word, the value guaranteed durable by the last completed
/// ordering fence. At a crash, NVM must still hold that value for every word
/// not flushed again since — otherwise the machine lost a fenced flush and
/// the I6 static guarantee would be vacuous.
#[derive(Debug, Default)]
struct DurabilityOracle {
    /// Word → value covered by the latest completed fence.
    durable: std::collections::HashMap<Word, Word>,
    /// Words flushed again after their durable value was recorded (their NVM
    /// cell may legitimately hold a newer snapshot at the crash).
    refreshed: std::collections::HashSet<Word>,
    /// Per-core (word, value) snapshots flushed since that core's last
    /// completed fence.
    pending: Vec<Vec<(Word, Word)>>,
}

impl<'m> Machine<'m> {
    /// Build a machine executing `module` under `scheme`. Core `i` receives
    /// `i` as the entry function's first argument when it takes parameters
    /// (thread id for multicore workloads).
    ///
    /// # Panics
    /// Panics if the module has no entry function.
    pub fn new(module: &'m Module, cfg: &'m SimConfig, scheme: Scheme) -> Self {
        let mut arch_mem = Memory::new();
        let mut cores = Vec::new();
        let mut resume_meta = Vec::new();
        let entry_fn = module.entry().expect("module has an entry");
        let entry_params = module.function(entry_fn).param_count as usize;
        // Decode the module once; every core executes from the same flat
        // micro-op stream.
        let dec = Arc::new(DecodedModule::new(module));
        for core in 0..cfg.cores {
            let nargs = if core == 0 { 0 } else { 1.min(entry_params) };
            let interp = if nargs == 0 {
                // Core 0 passes no args; a thread-id parameter reads as 0.
                Interp::new_shared(module, Arc::clone(&dec), core, &mut arch_mem)
                    .expect("module has an entry")
            } else {
                let args = [core as Word];
                Interp::with_args_shared(module, Arc::clone(&dec), core, &mut arch_mem, &args)
                    .expect("module has an entry")
            };
            let base =
                layout::stack_top(core) - cwsp_ir::interp::frame::size_words(0, nargs as u64) * 8;
            let entry_resume = ResumePoint {
                func: entry_fn,
                block: module.function(entry_fn).entry(),
                idx: 0,
                frame_base: base,
                sp: base,
                kind: ResumeKind::FuncEntry,
            };
            resume_meta.push((entry_resume, None));
            cores.push(Core {
                interp,
                l1: Cache::new(cfg.sram_levels[0]),
                wb: WriteBuffer::new(cfg.wb_entries, cfg.wb_drain_cycles),
                pb: PersistBuffer::new(pb_capacity(scheme, cfg)),
                rbt: RegionBoundaryTable::new(cfg.rbt_entries),
                busy_until: 0,
                halted: false,
                pending_pb: VecDeque::new(),
                pending_boundary: None,
                pending_evictions: VecDeque::new(),
                sync_drain: false,
                sync_writes: Vec::new(),
                sync_resume: None,
                region_insts: 0,
                capri_region_lines: Vec::new(),
                eff_scratch: StepEffect::default(),
                open_stall: None,
                prof_site: (None, None),
                prof_sb: None,
                prof_busy_wpq: 0,
                prof_busy_scheme: 0,
            });
        }
        let nvm = arch_mem.clone();
        let shared = cfg.sram_levels[1..]
            .iter()
            .map(|p| Cache::new(*p))
            .collect();
        let dram_cache = cfg.dram_cache.map(Cache::new);
        // Media-level banking/write-combining: an 8-byte WPQ entry occupies
        // its slot for a fraction of the raw media write latency.
        let drain = (cfg.main_memory.write_cycles() / 32).max(2);
        let mcs = (0..cfg.mem_controllers)
            .map(|i| MemoryController::new(i, cfg.wpq_entries, drain, drain))
            .collect();
        // cWSP's granularity is configurable (the §V-A2 8-byte vs 64-byte
        // ablation); cacheline schemes are fixed at 64 bytes.
        let granularity = match scheme {
            Scheme::Cwsp(_) => cfg.persist_granularity,
            _ => scheme.persist_granularity(),
        };
        let path = PersistPath::new(
            cfg.persist_path_cycles / 2, // one-way
            cfg.path_bytes_per_cycle(),
            granularity,
        );
        let mut machine = Machine {
            module,
            cfg,
            scheme,
            cycle: 0,
            arch_mem,
            nvm,
            cores,
            shared,
            dram_cache,
            mcs,
            path,
            dyn_counter: 0,
            stats: SimStats::default(),
            device: IoDevice::new(),
            resume_meta,
            trace: None,
            profiler: None,
            flight: FlightRecorder::from_env(),
            resume_dyn: vec![None; cfg.cores],
            nvm_drained: Vec::new(),
            fuse: cwsp_ir::decoded::fuse_enabled(),
            live_logs_cache: 0,
            logs_dirty: false,
            oracle: None,
        };
        // Open the initial region on every core (the program-entry region is
        // the non-speculative head from the start) and persist its metadata.
        if machine.uses_rbt() {
            for core in 0..machine.cfg.cores {
                let (resume, sr) = machine.resume_meta[core];
                let dyn_id = machine.next_dyn();
                machine.cores[core].rbt.open(RbtEntry {
                    dyn_id,
                    static_region: sr,
                    resume,
                    pending: 0,
                    mc_mask: 0,
                    closed: false,
                });
                machine.write_meta(core);
            }
        }
        machine
    }

    fn next_dyn(&mut self) -> DynRegionId {
        let id = DynRegionId(self.dyn_counter);
        self.dyn_counter += 1;
        id
    }

    /// Persist core `core`'s recovery metadata (the RBT head's "RS pointer",
    /// §V-B step 4) into the NVM image.
    fn write_meta(&mut self, core: usize) {
        if let Some(h) = self.cores[core].rbt.head() {
            self.resume_meta[core] = (h.resume, h.static_region);
            self.resume_dyn[core] = Some(h.dyn_id.0);
        }
        let (rp, sr) = self.resume_meta[core];
        let base = layout::RECOVERY_META_BASE + core as Word * layout::RECOVERY_META_STRIDE;
        for (i, w) in pack_meta(rp, sr).into_iter().enumerate() {
            self.nvm.store(base + i as Word * 8, w);
        }
    }

    /// Enable event tracing with a ring of `cap` events (see
    /// [`crate::trace::Trace`]); call before [`Machine::run`].
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Trace::new(cap));
    }

    /// Enable the durability-ordering oracle (AutoFence crash tests); call
    /// before [`Machine::run`]. Records, per word, the value the flush/fence
    /// contract guarantees durable, so a post-crash NVM image can be checked
    /// against it via [`Machine::durability_violations`].
    pub fn enable_durability_oracle(&mut self) {
        self.oracle = Some(DurabilityOracle {
            pending: vec![Vec::new(); self.cfg.cores],
            ..Default::default()
        });
    }

    /// Words whose NVM cell no longer holds their fence-guaranteed durable
    /// value (and were not flushed again since). Empty when the oracle is
    /// disabled or the flush/fence contract held. Call at the crash point,
    /// before [`Machine::into_crash_image`] consumes the machine.
    pub fn durability_violations(&self) -> Vec<Word> {
        let Some(o) = &self.oracle else {
            return Vec::new();
        };
        let mut bad: Vec<Word> = o
            .durable
            .iter()
            .filter(|&(w, &v)| !o.refreshed.contains(w) && self.nvm.load(*w) != v)
            .map(|(&w, _)| w)
            .collect();
        bad.sort_unstable();
        bad
    }

    /// Override fused superblock dispatch for this machine (defaults to the
    /// process-wide `CWSP_FUSE` setting). Used by the fused-vs-unfused
    /// stats-invariance tests; simulated results never depend on it.
    pub fn set_fuse(&mut self, on: bool) {
        self.fuse = on;
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Force-enable the flight recorder (independent of `CWSP_FLIGHT`); call
    /// before [`Machine::run`]. No-op when one is already attached.
    ///
    /// # Errors
    /// Propagates journal-file creation failure.
    pub fn enable_flight(&mut self) -> std::io::Result<()> {
        if self.flight.is_none() {
            self.flight = Some(FlightRecorder::create()?);
        }
        Ok(())
    }

    /// Attach a recorder built elsewhere (e.g. on a caller-chosen journal
    /// directory), replacing any existing one.
    pub fn attach_flight(&mut self, f: FlightRecorder) {
        self.flight = Some(f);
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Decoded journal records (flushed pages plus the in-memory tail), or
    /// empty when no recorder is attached.
    pub fn flight_records(&self) -> Vec<FlightRecord> {
        self.flight
            .as_ref()
            .map(FlightRecorder::records)
            .unwrap_or_default()
    }

    /// Snapshot the crash-instant persist frontier: what is still volatile
    /// on every core (PB / pending stores / uncommitted sync writes / WB /
    /// dirty L1) and what sits in each WPQ. Callable on the live machine —
    /// take it before [`Machine::into_crash_image`] consumes the state.
    pub fn frontier(&self) -> MachineFrontier {
        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| CoreFrontier {
                resume_region: self.resume_dyn[i],
                halted: c.halted,
                pb: c
                    .pb
                    .entries()
                    .map(|e| (e.addr, e.region.0, e.sent))
                    .collect(),
                pending: c.pending_pb.iter().map(|&(a, _)| a).collect(),
                sync_pending: c.sync_writes.iter().map(|&(a, _)| a).collect(),
                wb_lines: c.wb.parked_lines().collect(),
                dirty_l1: c.l1.dirty_lines(),
            })
            .collect();
        MachineFrontier {
            crash_cycle: self.cycle,
            cores,
            wpq: self
                .mcs
                .iter()
                .map(|m| m.wpq_entries().map(|(a, r)| (a, r.0)).collect())
                .collect(),
            live_log_records: self.mcs.iter().map(|m| m.live_log_records() as u64).sum(),
        }
    }

    /// Enable exact cycle attribution (see [`crate::profiler`]); call before
    /// [`Machine::run`]. Unlike tracing, this classifies every core-cycle,
    /// so it adds measurable (but small) simulation overhead.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(CycleProfiler::new());
    }

    /// The flat cycle-attribution profile, if profiling was enabled.
    pub fn flat_profile(&self) -> Option<cwsp_obs::FlatProfile> {
        self.profiler.as_ref().map(|p| p.to_flat(self.module))
    }

    /// The exec profile at superblock (fused-dispatch) granularity, if
    /// profiling was enabled; the region column carries the super-op index.
    pub fn superblock_profile(&self) -> Option<cwsp_obs::FlatProfile> {
        self.profiler
            .as_ref()
            .map(|p| p.superblock_flat(self.module))
    }

    /// Fraction of exec cycles attributed to a known superblock (profiled
    /// runs only).
    pub fn superblock_coverage(&self) -> Option<f64> {
        self.profiler
            .as_ref()
            .map(CycleProfiler::superblock_coverage)
    }

    /// The recorded trace as Chrome trace-event JSON tracks, if tracing was
    /// enabled.
    pub fn chrome_trace(&self) -> Option<cwsp_obs::ChromeTrace> {
        self.trace
            .as_ref()
            .map(|t| t.to_chrome(self.cores.len(), self.mcs.len()))
    }

    #[inline]
    fn emit(&mut self, e: Event) {
        if let Some(t) = &mut self.trace {
            t.record(e);
        }
    }

    /// Note one traced stall cycle on core `i`, coalescing consecutive
    /// cycles of the same kind/region into one span event. No-op (one
    /// branch) when tracing is off.
    #[inline]
    fn note_stall(&mut self, i: usize, kind: StallKind) {
        if self.trace.is_none() {
            return;
        }
        // The draining region is the RBT head (oldest unpersisted); fall
        // back to the open tail for stalls before anything is in flight.
        let region = {
            let rbt = &self.cores[i].rbt;
            rbt.head()
                .map(|e| e.dyn_id)
                .or_else(|| rbt.tail().map(|e| e.dyn_id))
        };
        let cycle = self.cycle;
        let prev = {
            let slot = &mut self.cores[i].open_stall;
            match slot {
                Some(s) if s.kind == kind && s.region == region => {
                    s.cycles += 1;
                    None
                }
                _ => slot.replace(OpenStall {
                    kind,
                    region,
                    start: cycle,
                    cycles: 1,
                }),
            }
        };
        if let Some(p) = prev {
            self.emit(Event::Stall {
                cycle: p.start,
                core: i,
                kind: p.kind,
                region: p.region,
                cycles: p.cycles,
            });
        }
    }

    /// Flush core `i`'s in-progress stall span into the ring (the stall
    /// ended: the core issued, or the run is ending).
    fn flush_stall(&mut self, i: usize) {
        if let Some(p) = self.cores[i].open_stall.take() {
            self.emit(Event::Stall {
                cycle: p.start,
                core: i,
                kind: p.kind,
                region: p.region,
                cycles: p.cycles,
            });
        }
    }

    fn flush_all_stalls(&mut self) {
        for i in 0..self.cores.len() {
            self.flush_stall(i);
        }
    }

    /// Charge one profiled core-cycle (no-op branch when profiling is off).
    #[inline]
    fn charge(&mut self, site: Site, cause: Cause) {
        if let Some(p) = &mut self.profiler {
            p.charge(site, cause);
        }
    }

    /// The current attribution site for core `i`: executing function +
    /// open static region.
    fn cur_site(&self, i: usize) -> Site {
        let core = &self.cores[i];
        (
            core.interp.position().map(|rp| rp.func),
            core.rbt.tail().and_then(|e| e.static_region),
        )
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Output released so far (persisted regions only).
    pub fn output(&self) -> &[Word] {
        self.device.flushed()
    }

    /// The I/O device (redo-buffer inspection).
    pub fn device(&self) -> &IoDevice {
        &self.device
    }

    /// The architectural memory (for end-of-run verification).
    pub fn arch_mem(&self) -> &Memory {
        &self.arch_mem
    }

    /// The NVM image (lags architectural state by the persist pipeline).
    pub fn nvm(&self) -> &Memory {
        &self.nvm
    }

    /// Run until completion, an instruction budget, or a crash cycle.
    ///
    /// # Errors
    /// Propagates interpreter traps (a trap is a program bug, not a
    /// simulation outcome).
    pub fn run(
        &mut self,
        max_insts: u64,
        crash_at_cycle: Option<u64>,
    ) -> Result<RunResult, InterpError> {
        loop {
            if let Some(c) = crash_at_cycle {
                if self.cycle >= c {
                    self.flush_all_stalls();
                    self.emit(Event::PowerFailure { cycle: self.cycle });
                    if let Some(f) = &mut self.flight {
                        f.record(FlightRecord::new(FlightKind::PowerFail, self.cycle));
                        f.seal();
                    }
                    self.finalize_stats();
                    return Ok(RunResult {
                        end: RunEnd::PowerFailure,
                        stats: self.stats.clone(),
                    });
                }
            }
            if self.stats.insts >= max_insts {
                if let Some(f) = &mut self.flight {
                    f.seal();
                }
                self.finalize_stats();
                return Ok(RunResult {
                    end: RunEnd::InstLimit,
                    stats: self.stats.clone(),
                });
            }
            if self.all_done() {
                if let Some(f) = &mut self.flight {
                    f.seal();
                }
                self.finalize_stats();
                return Ok(RunResult {
                    end: RunEnd::Completed,
                    stats: self.stats.clone(),
                });
            }
            if self.profiler.is_none() {
                self.idle_skip(crash_at_cycle);
            }
            self.tick()?;
        }
    }

    /// Event-horizon fast-forward: when every core is halted or mid-latency
    /// and no machinery event (path arrival, PB send, WB drain, RBT retire,
    /// sync poll, stall poll) can occur before cycle `T`, jump directly to
    /// `T - 1` instead of ticking through provably idle cycles one by one.
    ///
    /// Exactness: a skipped cycle's tick would only (a) accrue path tokens —
    /// replayed bit-exactly by [`PersistPath::advance`]; (b) pop drained WPQ
    /// slots — deferred safely because pops are monotone and only observed at
    /// arrivals or core loads, both of which bound `T`; and (c) add the
    /// (constant while idle) WB/PB occupancies to their integrals — added in
    /// closed form here. Every stat, trace event, and state transition is
    /// byte-identical to the cycle-by-cycle path.
    fn idle_skip(&mut self, crash_at_cycle: Option<u64>) {
        let cycle = self.cycle;
        let mut t = u64::MAX;
        for c in &self.cores {
            if c.halted {
                continue;
            }
            // A core that can issue (or poll a stall/sync condition) next
            // tick forbids skipping: polls mutate stall statistics.
            if c.busy_until <= cycle + 1 {
                return;
            }
            t = t.min(c.busy_until);
        }
        for c in &self.cores {
            // Due (or delay-held) WB heads are checked every tick.
            if let Some(d) = c.wb.next_drain_cycle() {
                if d <= cycle + 1 {
                    return;
                }
                t = t.min(d);
            }
            // A retirable RBT head retires next tick.
            if c.rbt.head().is_some_and(|h| h.closed && h.pending == 0) {
                return;
            }
            // Unsent PB entries send as soon as path tokens accrue.
            if c.pb.has_unsent() {
                let k = self.path.cycles_until_tokens().max(1);
                if k == 1 {
                    return;
                }
                t = t.min(cycle.saturating_add(k));
            }
        }
        if let Some(a) = self.path.next_arrival_cycle() {
            if a <= cycle + 1 {
                return; // arrived (possibly WPQ-blocked): retried every tick
            }
            t = t.min(a);
        }
        if t == u64::MAX || t <= cycle + 1 {
            return;
        }
        let mut target = t - 1;
        if let Some(c) = crash_at_cycle {
            target = target.min(c);
        }
        if target <= cycle {
            return;
        }
        let skipped = target - cycle;
        self.path.advance(skipped);
        let mut occ_wb = 0u64;
        let mut occ_pb = 0u64;
        for c in &self.cores {
            occ_wb += c.wb.occupancy() as u64;
            occ_pb += c.pb.occupancy() as u64;
        }
        self.stats.wb_occupancy_sum += skipped * occ_wb;
        self.stats.pb_occupancy_sum += skipped * occ_pb;
        self.cycle = target;
    }

    fn all_done(&self) -> bool {
        self.cores.iter().all(|c| {
            c.halted
                && c.pending_pb.is_empty()
                && c.pb.is_empty()
                && c.rbt.is_empty()
                && c.pending_boundary.is_none()
        })
    }

    fn finalize_stats(&mut self) {
        self.flush_all_stalls();
        self.stats.cycles = self.cycle;
        let mut mix = [0u64; cwsp_ir::decoded::OPCODE_COUNT];
        for core in &self.cores {
            for (m, &c) in mix.iter_mut().zip(core.interp.op_counts()) {
                *m += c;
            }
        }
        self.stats.op_mix = mix;
        self.stats.l1 = self
            .cores
            .iter()
            .map(|c| c.l1.stats())
            .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        if let Some(last) = self.shared.last() {
            self.stats.llc_sram = last.stats();
        }
        if let Some(d) = &self.dram_cache {
            self.stats.dram_cache = d.stats();
        }
        self.stats.nvm_writes += self.mcs.iter().map(|m| m.nvm_writes).sum::<u64>();
        self.stats.log_appends = self.mcs.iter().map(|m| m.log_appends).sum();
    }

    /// Advance one cycle.
    fn tick(&mut self) -> Result<(), InterpError> {
        self.cycle += 1;
        let cycle = self.cycle;

        // --- persist machinery ---
        self.path.tick();
        if self.flight.is_some() {
            // Recorder attached: observe each drained WPQ slot as an NVM
            // media commit. The plain `tick` below stays on the hot path.
            let mut drained = std::mem::take(&mut self.nvm_drained);
            for mi in 0..self.mcs.len() {
                drained.clear();
                self.mcs[mi].tick_drained(cycle, &mut drained);
                if let Some(f) = &mut self.flight {
                    for &(addr, region) in &drained {
                        let mut r = FlightRecord::new(FlightKind::NvmCommit, cycle);
                        r.mc = mi as u8;
                        r.addr = addr;
                        r.region = region.0;
                        f.record(r);
                    }
                }
            }
            self.nvm_drained = drained;
        } else {
            for mc in &mut self.mcs {
                mc.tick(cycle);
            }
        }
        // Path arrivals → WPQ (FIFO; head-of-line blocks on a full WPQ).
        let cacheline_scheme = matches!(self.scheme, Scheme::Capri | Scheme::ReplayCache);
        while let Some(e) = self.path.peek_arrival(cycle).copied() {
            let logs_before = if self.trace.is_some() || self.flight.is_some() {
                self.mcs[e.mc].log_appends
            } else {
                0
            };
            let accepted = if cacheline_scheme {
                // Line payloads are not materialized; charge timing only.
                self.mcs[e.mc].accept_timing_only(cycle, e.region, e.addr)
            } else {
                self.mcs[e.mc].accept(cycle, e.region, e.addr, e.data, e.log_bit, &mut self.nvm)
            };
            if !accepted {
                break;
            }
            self.path.pop_arrival();
            if self.trace.is_some() && self.mcs[e.mc].log_appends > logs_before {
                self.emit(Event::UndoLogged {
                    cycle,
                    mc: e.mc,
                    region: e.region,
                    addr: e.addr,
                });
            }
            self.emit(Event::PersistArrive {
                cycle,
                mc: e.mc,
                region: e.region,
                addr: e.addr,
            });
            if let Some(f) = &mut self.flight {
                let mut r = FlightRecord::new(FlightKind::WpqEnqueue, cycle);
                r.core = e.core as u8;
                r.mc = e.mc as u8;
                r.logged = self.mcs[e.mc].log_appends > logs_before;
                r.addr = e.addr;
                r.region = e.region.0;
                f.record(r);
            }
            let core = &mut self.cores[e.core];
            core.pb.complete(e.pb_seq);
            core.rbt.on_ack(e.region);
            self.logs_dirty = true;
        }
        // PB → path sends (round-robin start for fairness).
        let ncores = self.cores.len();
        for k in 0..ncores {
            let i = (cycle as usize + k) % ncores;
            let core = &mut self.cores[i];
            if let Some(entry) = core.pb.next_unsent() {
                let mc = self.cfg.mc_of(entry.addr);
                let skew = self.cfg.mc_numa_skew_cycles * mc as u64;
                let (seq, region, addr, data, log) = (
                    entry.seq,
                    entry.region,
                    entry.addr,
                    entry.data,
                    entry.log_bit,
                );
                if self
                    .path
                    .try_send(cycle, i, seq, region, addr, data, log, mc, skew)
                {
                    if let Some(e) = core.pb.next_unsent() {
                        debug_assert_eq!(e.seq, seq);
                        e.sent = true;
                    }
                }
            }
        }
        // RBT retirements: flush region output, promote the next head,
        // deallocate its logs, persist new recovery metadata.
        for i in 0..ncores {
            while let Some(retired) = self.cores[i].rbt.try_retire() {
                // Release the region's I/O redo buffer to the device (§VIII).
                self.device.flush_region(retired.dyn_id);
                self.emit(Event::RegionRetire {
                    cycle,
                    core: i,
                    region: retired.dyn_id,
                });
                if let Some(f) = &mut self.flight {
                    let mut r = FlightRecord::new(FlightKind::RegionClose, cycle);
                    r.core = i as u8;
                    r.region = retired.dyn_id.0;
                    f.record(r);
                }
                if let Some(h) = self.cores[i].rbt.head() {
                    let hid = h.dyn_id;
                    for mc in &mut self.mcs {
                        mc.dealloc_logs_upto(hid);
                    }
                    self.logs_dirty = true;
                }
                self.write_meta(i);
            }
            // Sample the live-log peak exactly as the per-cycle walk did,
            // but only recompute the (BTreeMap-walking) sum when an append
            // or deallocation may have changed it since the last sample.
            if self.logs_dirty {
                self.live_logs_cache = self.mcs.iter().map(|m| m.live_log_records()).sum();
                self.logs_dirty = false;
            }
            self.stats.peak_live_logs = self.stats.peak_live_logs.max(self.live_logs_cache);
        }
        // WB drains (with the cWSP PB-CAM delay when enabled).
        let wb_delay_on = matches!(self.scheme, Scheme::Cwsp(f) if f.wb_delay && f.persist_path);
        for core in &mut self.cores {
            let mut delayed = false;
            let pb = &core.pb;
            let _ = core.wb.try_drain(
                cycle,
                |line| wb_delay_on && pb.matches_line(line),
                &mut delayed,
            );
            if delayed {
                self.stats.wb_delays += 1;
            }
        }

        // --- occupancy integrals ---
        for core in &self.cores {
            self.stats.wb_occupancy_sum += core.wb.occupancy() as u64;
            self.stats.pb_occupancy_sum += core.pb.occupancy() as u64;
        }

        // --- cores ---
        for i in 0..ncores {
            self.advance_core(i)?;
        }
        Ok(())
    }

    /// Progress core `i` by up to `issue_width` instructions this cycle (or
    /// unblock pending work). Register-class instructions and L1-hit accesses
    /// consume one issue slot; longer operations block the core for their
    /// latency.
    fn advance_core(&mut self, i: usize) -> Result<(), InterpError> {
        if self.profiler.is_none() {
            // Fast path: no per-cycle classification.
            let mut slots = self.cfg.issue_width;
            while slots > 0 {
                // Fused superblock burst: when the core has no pending
                // persist work, consecutive register-only ops issue as one
                // dispatch. Each such op is exactly what advance_core_once
                // would do for it — an empty ALU effect, cost 1, one issue
                // slot — so stats and state are byte-identical; only the
                // per-op dispatch overhead is elided. (Skipped while tracing
                // so stall spans coalesce identically.)
                if self.fuse && self.trace.is_none() {
                    let c = &mut self.cores[i];
                    if !c.halted
                        && c.busy_until <= self.cycle
                        && !c.sync_drain
                        && c.pending_boundary.is_none()
                        && c.pending_evictions.is_empty()
                        && c.pending_pb.is_empty()
                    {
                        let burst = c.interp.step_run(slots);
                        if burst > 0 {
                            c.region_insts += burst as u64;
                            self.stats.insts += burst as u64;
                            slots -= burst;
                            continue;
                        }
                    }
                }
                if !matches!(
                    self.advance_core_once(i)?,
                    SlotOutcome::Issued { more: true }
                ) {
                    break;
                }
                slots -= 1;
            }
            return Ok(());
        }
        // Profiled path: classify exactly one core-cycle.
        if self.cores[i].halted {
            self.charge((None, None), Cause::Halted);
            return Ok(());
        }
        if self.cores[i].busy_until > self.cycle {
            // A long-latency instruction is in flight. Split lump-sum stall
            // latencies folded into its cost back out to their cause; the
            // remainder is execution time at the issue site.
            let site = self.cores[i].prof_site;
            let cause = if self.cores[i].prof_busy_scheme > 0 {
                self.cores[i].prof_busy_scheme -= 1;
                Cause::Stall(StallKind::Scheme)
            } else if self.cores[i].prof_busy_wpq > 0 {
                self.cores[i].prof_busy_wpq -= 1;
                Cause::Stall(StallKind::Wpq)
            } else {
                Cause::Exec
            };
            if cause == Cause::Exec {
                let sb = self.cores[i].prof_sb;
                if let Some(p) = &mut self.profiler {
                    p.charge_exec_superblock(site.0, sb);
                }
            }
            self.charge(site, cause);
            return Ok(());
        }
        let mut attr: Option<(Site, Cause)> = None;
        for _slot in 0..self.cfg.issue_width {
            match self.advance_core_once(i)? {
                SlotOutcome::Issued { more } => {
                    attr = Some((self.cores[i].prof_site, Cause::Exec));
                    if !more {
                        break;
                    }
                }
                SlotOutcome::Stalled(kind) => {
                    // A stall after an issue still counts as an issuing cycle.
                    if attr.is_none() {
                        attr = Some((self.cur_site(i), Cause::Stall(kind)));
                    }
                    break;
                }
                SlotOutcome::Blocked => break,
            }
        }
        let (site, cause) = attr.unwrap_or(((None, None), Cause::Exec));
        // Only an actually-issued slot carries a fresh superblock capture;
        // the no-slot fallback would pair a stale one.
        if attr.is_some() && cause == Cause::Exec {
            let sb = self.cores[i].prof_sb;
            if let Some(p) = &mut self.profiler {
                p.charge_exec_superblock(site.0, sb);
            }
        }
        self.charge(site, cause);
        Ok(())
    }

    /// One issue slot for core `i`.
    fn advance_core_once(&mut self, i: usize) -> Result<SlotOutcome, InterpError> {
        let cycle = self.cycle;
        if self.cores[i].halted || self.cores[i].busy_until > cycle {
            return Ok(SlotOutcome::Blocked);
        }
        // Drain pending dirty evictions into the WB first.
        while let Some(&line) = self.cores[i].pending_evictions.front() {
            if self.cores[i].wb.has_space() {
                self.cores[i].wb.push(line);
                self.cores[i].pending_evictions.pop_front();
                self.emit(Event::WbEnqueue {
                    cycle,
                    core: i,
                    line,
                });
                if let Some(f) = &mut self.flight {
                    let mut r = FlightRecord::new(FlightKind::LineEvict, cycle);
                    r.core = i as u8;
                    r.addr = line;
                    f.record(r);
                }
            } else {
                self.stats.stall_wb += 1;
                self.note_stall(i, StallKind::Wb);
                return Ok(SlotOutcome::Stalled(StallKind::Wb));
            }
        }
        // Pending PB inserts from an already-executed store (or, under
        // AutoFence, from an executed flush — line words awaiting PB space).
        let uses_rbt = self.uses_rbt();
        while let Some(&(addr, data)) = self.cores[i].pending_pb.front() {
            if self.cores[i].pb.has_space() {
                let core = &mut self.cores[i];
                let (region, log_bit) = if uses_rbt {
                    let Some(tail) = core.rbt.tail() else {
                        return Err(InterpError::Trap(
                            "store issued with no open region (malformed module: missing region boundary)"
                                .into(),
                        ));
                    };
                    (tail.dyn_id, core.rbt.tail_is_speculative())
                } else {
                    // AutoFence: no region machinery; entries ride the path
                    // under the sentinel region (like Capri's redo lines).
                    (DynRegionId(0), false)
                };
                core.pb.push(region, addr, data, log_bit);
                if uses_rbt {
                    core.rbt.on_store(self.cfg.mc_of(addr));
                }
                core.pending_pb.pop_front();
                self.emit(Event::PersistIssue {
                    cycle,
                    core: i,
                    region,
                    addr,
                });
                if let Some(f) = &mut self.flight {
                    // Issue-order journal entry with (function, region)
                    // attribution — the spine of the persist lineage.
                    let func = self.cores[i].interp.position().map(|rp| rp.func.0);
                    let mut r = FlightRecord::new(FlightKind::StoreIssue, cycle);
                    r.core = i as u8;
                    r.func = func;
                    r.addr = addr;
                    r.region = region.0;
                    f.record(r);
                }
            } else {
                self.stats.stall_pb += 1;
                self.note_stall(i, StallKind::Pb);
                return Ok(SlotOutcome::Stalled(StallKind::Pb));
            }
        }
        // Pending boundary: needs RBT space (plus a full drain when MC
        // speculation is off — the conservative prior-work behavior).
        if let Some(b) = self.cores[i].pending_boundary {
            let spec_on = matches!(self.scheme, Scheme::Cwsp(f) if f.mc_speculation);
            let uses_rbt = self.uses_rbt();
            let ready = if !uses_rbt {
                true
            } else if spec_on {
                self.cores[i].rbt.has_space()
            } else {
                // Without MC speculation the core may not persist a region
                // while an older one is still in flight (§II-B): at most the
                // closing region plus the new one occupy the table.
                self.cores[i].rbt.occupancy() <= 1
            };
            if !ready {
                self.stats.stall_rbt += 1;
                self.note_stall(i, StallKind::Rbt);
                return Ok(SlotOutcome::Stalled(StallKind::Rbt));
            }
            if uses_rbt {
                let dyn_id = self.next_dyn();
                let core = &mut self.cores[i];
                core.rbt.close_tail();
                let was_empty = core.rbt.is_empty();
                core.rbt.open(RbtEntry {
                    dyn_id,
                    static_region: b.static_region,
                    resume: b.resume,
                    pending: 0,
                    mc_mask: 0,
                    closed: false,
                });
                if was_empty {
                    self.write_meta(i);
                }
                self.emit(Event::RegionOpen {
                    cycle: self.cycle,
                    core: i,
                    region: dyn_id,
                });
                if let Some(f) = &mut self.flight {
                    let mut r = FlightRecord::new(FlightKind::RegionOpen, self.cycle);
                    r.core = i as u8;
                    r.region = dyn_id.0;
                    f.record(r);
                }
            }
            self.cores[i].pending_boundary = None;
            self.stats.regions += 1;
            self.stats.region_insts += self.cores[i].region_insts;
            let n = self.cores[i].region_insts;
            self.stats.record_region_size(n);
            self.cores[i].region_insts = 0;
        }
        // Sync drain (atomic/fence waiting for full persistence, §VIII; under
        // AutoFence also a pfence waiting for prior flushes to reach the ADR
        // domain — no RBT to drain, just the PB and its feed queue).
        if self.cores[i].sync_drain {
            let drained = if self.uses_rbt() {
                self.cores[i].rbt.drained()
                    && self.cores[i].pb.is_empty()
                    && self.cores[i].pending_pb.is_empty()
            } else {
                self.cores[i].pb.is_empty() && self.cores[i].pending_pb.is_empty()
            };
            if !drained {
                self.stats.stall_sync += 1;
                self.note_stall(i, StallKind::Sync);
                return Ok(SlotOutcome::Stalled(StallKind::Sync));
            }
            // Commit the sync point: its store persists synchronously, and
            // the recovery point advances past it (it must never re-execute).
            self.cores[i].sync_drain = false;
            let mut writes = std::mem::take(&mut self.cores[i].sync_writes);
            for &(a, v) in &writes {
                self.nvm.store(a, v);
                self.stats.nvm_writes += 1;
            }
            if let Some(o) = &mut self.oracle {
                // The completed drain makes every flush issued before it —
                // and the sync's own writes — durable.
                for (w, v) in o.pending[i].drain(..) {
                    o.durable.insert(w, v);
                    o.refreshed.remove(&w);
                }
                for &(w, v) in &writes {
                    o.durable.insert(w, v);
                    o.refreshed.remove(&w);
                }
            }
            writes.clear();
            self.cores[i].sync_writes = writes;
            if let Some((rp, sr)) = self.cores[i].sync_resume.take() {
                // The open region is the head (we just drained); rewrite its
                // recovery entry so the committed sync never re-executes.
                if let Some(h) = self.cores[i].rbt.head().copied() {
                    let mut e = h;
                    e.resume = rp;
                    e.static_region = sr;
                    self.cores[i].rbt.replace_head(e);
                }
                self.resume_meta[i] = (rp, sr);
                self.write_meta(i);
            }
            if let Some(f) = &mut self.flight {
                // The committed sync advanced the resume point mid-region:
                // journaled stores of this region issued before this record
                // never replay.
                let region = self.cores[i].rbt.head().map_or(REGION_NONE, |h| h.dyn_id.0);
                let mut r = FlightRecord::new(FlightKind::SyncCommit, cycle);
                r.core = i as u8;
                r.region = region;
                f.record(r);
            }
        }

        // The stall (if any) ended: complete its coalesced trace span.
        if self.cores[i].open_stall.is_some() {
            self.flush_stall(i);
        }
        if self.profiler.is_some() {
            // Capture the issue site before stepping (the interpreter's
            // position moves past the instruction), and reset the lump-sum
            // stall split for this instruction's cost.
            self.cores[i].prof_site = self.cur_site(i);
            self.cores[i].prof_sb = self.cores[i].interp.current_super_op();
            self.cores[i].prof_busy_wpq = 0;
            self.cores[i].prof_busy_scheme = 0;
        }
        // Execute one instruction into the core's reused effect buffer.
        let mut eff = std::mem::take(&mut self.cores[i].eff_scratch);
        if let Err(e) = self.cores[i].interp.step_into(&mut self.arch_mem, &mut eff) {
            self.cores[i].eff_scratch = eff;
            return Err(e);
        }
        self.stats.insts += 1;
        self.cores[i].region_insts += 1;
        let cost = match self.apply_effect(i, &eff) {
            Ok(c) => c,
            Err(e) => {
                self.cores[i].eff_scratch = eff;
                return Err(e);
            }
        };
        self.cores[i].eff_scratch = eff;
        if cost <= 1 {
            // Slot-cost instruction: the core may issue again this cycle.
            Ok(SlotOutcome::Issued {
                more: !self.cores[i].halted,
            })
        } else {
            self.cores[i].busy_until = cycle + cost;
            Ok(SlotOutcome::Issued { more: false })
        }
    }

    fn uses_rbt(&self) -> bool {
        self.scheme.uses_persist_path() && matches!(self.scheme, Scheme::Cwsp(_))
    }

    /// Turn a step effect into timing + persist actions; returns its cost.
    fn apply_effect(
        &mut self,
        i: usize,
        eff: &cwsp_ir::interp::StepEffect,
    ) -> Result<u64, InterpError> {
        let mut cost: u64 = 1;
        let is_cwsp_path = matches!(self.scheme, Scheme::Cwsp(f) if f.persist_path);
        match eff.kind {
            EffectKind::Alu | EffectKind::Boundary | EffectKind::Out => {}
            EffectKind::Load => {
                cost = self.load_cost(i, eff.reads[0]);
            }
            EffectKind::Store | EffectKind::Ckpt => {
                let (a, v) = eff.writes[0];
                cost = self.store_cost(i, a, v);
                if eff.kind == EffectKind::Ckpt {
                    self.stats.ckpt_stores += 1;
                    if let Some(f) = &mut self.flight {
                        let func = self.cores[i].interp.position().map(|rp| rp.func.0);
                        let region = self.cores[i].rbt.tail().map_or(REGION_NONE, |e| e.dyn_id.0);
                        let mut r = FlightRecord::new(FlightKind::Checkpoint, self.cycle);
                        r.core = i as u8;
                        r.func = func;
                        r.addr = a;
                        r.region = region;
                        f.record(r);
                    }
                } else {
                    self.stats.stores += 1;
                }
            }
            EffectKind::Call | EffectKind::Ret => {
                // Frame traffic: spill stores / restore loads.
                for &(a, v) in &eff.writes {
                    cost += self.store_cost(i, a, v);
                    self.stats.frame_stores += 1;
                }
                for &a in &eff.reads {
                    cost += self.load_cost(i, a);
                }
            }
            EffectKind::Atomic | EffectKind::Fence => {
                self.stats.syncs += 1;
                cost = 20;
                if self.uses_rbt() {
                    // Drain, then persist the atomic synchronously and advance
                    // the recovery point past it (see module docs).
                    let sync_resume = self.after_sync_resume(i);
                    let core = &mut self.cores[i];
                    core.sync_drain = true;
                    core.sync_writes.clear();
                    core.sync_writes.extend_from_slice(&eff.writes);
                    core.sync_resume = sync_resume;
                    cost = self.cfg.persist_path_cycles.max(20);
                } else if matches!(self.scheme, Scheme::AutoFence) {
                    // A full sync is at least a pfence: drain every prior
                    // flush, then persist the atomic's own store
                    // synchronously (no recovery-slice machinery to advance).
                    let core = &mut self.cores[i];
                    core.sync_drain = true;
                    core.sync_writes.clear();
                    core.sync_writes.extend_from_slice(&eff.writes);
                    cost = self.cfg.persist_path_cycles.max(20);
                } else if matches!(self.scheme, Scheme::ReplayCache | Scheme::Capri) {
                    cost = self.cfg.persist_path_cycles.max(20);
                }
            }
            EffectKind::Flush => {
                if matches!(self.scheme, Scheme::AutoFence) {
                    // clwb: snapshot the flushed line at execution time and
                    // enqueue its eight words toward the persist path (64
                    // bytes — exactly one line writeback of bandwidth).
                    let line = line_of(eff.reads[0]);
                    for k in 0..8u64 {
                        let a = line + k * 8;
                        let v = self.arch_mem.load(a);
                        self.cores[i].pending_pb.push_back((a, v));
                        if let Some(o) = &mut self.oracle {
                            o.pending[i].push((a, v));
                            o.refreshed.insert(a);
                        }
                    }
                }
                // Architecturally a no-op everywhere else: cost 1, no cache
                // or persist traffic, so non-AutoFence figures are unchanged.
            }
            EffectKind::PFence => {
                if matches!(self.scheme, Scheme::AutoFence) {
                    let drained =
                        self.cores[i].pb.is_empty() && self.cores[i].pending_pb.is_empty();
                    if drained {
                        // Everything flushed before already reached the ADR
                        // domain: the fence completes immediately.
                        if let Some(o) = &mut self.oracle {
                            for (w, v) in o.pending[i].drain(..) {
                                o.durable.insert(w, v);
                                o.refreshed.remove(&w);
                            }
                        }
                    } else {
                        // Stall the core until the PB and its feed queue
                        // drain (the sync-drain poll, minus RBT conditions).
                        self.cores[i].sync_drain = true;
                    }
                }
            }
            EffectKind::Halt => {
                self.cores[i].halted = true;
                self.cores[i].rbt.close_tail();
                // Count the final region.
                self.stats.regions += 1;
                self.stats.region_insts += self.cores[i].region_insts;
                let n = self.cores[i].region_insts;
                self.stats.record_region_size(n);
                self.cores[i].region_insts = 0;
            }
        }
        if let Some(v) = eff.out {
            if self.uses_rbt() {
                let Some(tail) = self.cores[i].rbt.tail() else {
                    return Err(InterpError::Trap(
                        "out issued with no open region (malformed module: missing region boundary)"
                            .into(),
                    ));
                };
                let region = tail.dyn_id;
                self.device.emit(region, v);
            } else {
                self.device.emit_direct(v);
            }
        }
        if let Some(b) = eff.boundary {
            if eff.kind != EffectKind::Halt {
                self.cores[i].pending_boundary = Some(b);
            }
        }
        // Route writes into the persist machinery.
        if is_cwsp_path
            && matches!(
                eff.kind,
                EffectKind::Store | EffectKind::Ckpt | EffectKind::Call | EffectKind::Ret
            )
        {
            for &(a, v) in &eff.writes {
                self.cores[i].pending_pb.push_back((a, v));
            }
        }
        if matches!(self.scheme, Scheme::Capri) {
            // Redo buffer at cacheline granularity. Dirty-line copies
            // coalesce only within the current region (the redo buffer is
            // logged per region for its 2-phase persistence), so repeated
            // stores to a line in *different* regions each enqueue a 64-byte
            // copy — the 8× write amplification of §II-D.
            for &(a, _) in &eff.writes {
                let line = line_of(a);
                if !self.cores[i].capri_region_lines.contains(&line) {
                    self.cores[i].capri_region_lines.push(line);
                    if !self.cores[i].pb.has_space() {
                        // Stall until the redo buffer drains one line.
                        cost += self.cfg.persist_path_cycles;
                        self.stats.stall_scheme += self.cfg.persist_path_cycles;
                        self.cores[i].prof_busy_scheme += self.cfg.persist_path_cycles;
                    } else {
                        self.cores[i].pb.push(DynRegionId(0), line, 0, false);
                    }
                }
            }
            if eff.boundary.is_some() {
                self.cores[i].capri_region_lines.clear();
                // Region end: the 2-phase persistence requires this region's
                // redo entries to reach the battery-backed proxy before too
                // many pile up; the core stalls while the buffer is saturated.
                let occ = self.cores[i].pb.occupancy();
                if occ > 128 {
                    let wait = (occ as u64 - 128) / 2;
                    cost += wait;
                    self.stats.stall_scheme += wait;
                    self.cores[i].prof_busy_scheme += wait;
                }
            }
        }
        if matches!(self.scheme, Scheme::ReplayCache) && !eff.writes.is_empty() {
            // Synchronous cacheline persistence per store.
            let per_line = (64.0 / self.cfg.path_bytes_per_cycle()).ceil() as u64;
            let sync_cost = (self.cfg.persist_path_cycles + per_line) * eff.writes.len() as u64;
            self.stats.stall_scheme += sync_cost;
            self.cores[i].prof_busy_scheme += sync_cost;
            cost += sync_cost;
            for &(a, v) in &eff.writes {
                self.nvm.store(a, v);
            }
        }
        Ok(cost)
    }

    /// The recovery point immediately after a committed sync instruction.
    fn after_sync_resume(&self, i: usize) -> Option<(ResumePoint, Option<RegionId>)> {
        // The interpreter has already stepped past the sync; its current
        // position is exactly the after-sync point.
        let rp = self.cores[i].interp.position()?;
        // The next explicit boundary in this block supplies the recovery
        // slice for the live-ins at that point (the compiler placed one right
        // after every sync, with only checkpoint stores in between).
        let f = self.module.function(rp.func);
        let sr = f.block(rp.block).insts[rp.idx..]
            .iter()
            .find_map(|inst| match inst {
                Inst::Boundary { id } => Some(*id),
                _ => None,
            });
        Some((rp, sr))
    }

    /// Timing for a load at `addr` (full hierarchy walk).
    fn load_cost(&mut self, i: usize, addr: Word) -> u64 {
        self.stats.loads += 1;
        let core = &mut self.cores[i];
        let r = core.l1.access(addr, false);
        if r.hit {
            // Pipelined L1 hits are hidden by the OOO window: slot cost only.
            return 1;
        }
        if let Some(line) = r.writeback {
            core.pending_evictions.push_back(line);
        }
        for (li, c) in self.shared.iter_mut().enumerate() {
            let rr = c.access(addr, false);
            if rr.hit {
                return self.cfg.sram_levels[li + 1].hit_cycles;
            }
        }
        if let Some(d) = &mut self.dram_cache {
            let rr = d.access(addr, false);
            if rr.hit {
                return self.cfg.dram_cache.as_ref().unwrap().hit_cycles;
            }
        }
        // Main memory (NVM): possible WPQ hit delay (§V-A2).
        self.stats.nvm_reads += 1;
        let mut lat = self.cfg.main_memory.read_cycles();
        let wpq_delay_on = matches!(self.scheme, Scheme::Cwsp(f) if f.wpq_delay && f.persist_path);
        if wpq_delay_on {
            let mc = self.cfg.mc_of(addr);
            if let Some(free_at) = self.mcs[mc].wpq_hit(addr) {
                self.stats.wpq_hits += 1;
                let extra = free_at.saturating_sub(self.cycle);
                self.stats.stall_wpq += extra;
                self.cores[i].prof_busy_wpq += extra;
                lat += extra;
            }
        }
        lat
    }

    /// Timing for a store at `addr` (write-allocate; latency mostly hidden by
    /// the store buffer — the visible cost is L1 occupancy + evictions).
    fn store_cost(&mut self, i: usize, addr: Word, _value: Word) -> u64 {
        let core = &mut self.cores[i];
        let r = core.l1.access(addr, true);
        if let Some(line) = r.writeback {
            core.pending_evictions.push_back(line);
        }
        if !r.hit {
            // Allocate through the shared levels (tag state only).
            for c in self.shared.iter_mut() {
                if c.access(addr, false).hit {
                    break;
                }
            }
            if let Some(d) = &mut self.dram_cache {
                let _ = d.access(addr, false);
            }
        }
        1
    }

    /// Cut power: consume the machine and return the crash-surviving state,
    /// performing the §VII step-1 undo-log reversal.
    pub fn into_crash_image(mut self) -> CrashImage {
        let mut reverted = 0;
        for mc in &mut self.mcs {
            reverted += mc.crash_revert(&mut self.nvm);
        }
        CrashImage {
            nvm: self.nvm,
            output: self.device.crash(),
            resume: self.resume_meta,
            reverted_records: reverted,
        }
    }

    /// Entry-function return value of core `i`, if halted via `Ret`.
    pub fn return_value(&self, i: usize) -> Option<Word> {
        self.cores[i].interp.return_value()
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted)
    }
}

fn pb_capacity(scheme: Scheme, cfg: &SimConfig) -> usize {
    match scheme {
        // Capri's redo buffer: 18 KB of 64-byte lines = 288 entries.
        Scheme::Capri => 288,
        _ => cfg.pb_entries,
    }
}

/// Pack a resume point + slice id into NVM metadata words.
pub fn pack_meta(rp: ResumePoint, sr: Option<RegionId>) -> [Word; 7] {
    let kind = match rp.kind {
        ResumeKind::Normal => 0,
        ResumeKind::FuncEntry => 1,
        ResumeKind::PostCall => 2,
    };
    [
        kind,
        rp.func.0 as Word,
        rp.block.0 as Word,
        rp.idx as Word,
        rp.frame_base,
        rp.sp,
        sr.map(|r| r.0 as Word + 1).unwrap_or(0),
    ]
}

/// Unpack recovery metadata written by [`pack_meta`] from the NVM image.
pub fn unpack_meta(nvm: &Memory, core: usize) -> (ResumePoint, Option<RegionId>) {
    let base = layout::RECOVERY_META_BASE + core as Word * layout::RECOVERY_META_STRIDE;
    let mut w = [0 as Word; 7];
    for (i, slot) in w.iter_mut().enumerate() {
        *slot = nvm.load(base + i as Word * 8);
    }
    let kind = match w[0] {
        0 => ResumeKind::Normal,
        1 => ResumeKind::FuncEntry,
        _ => ResumeKind::PostCall,
    };
    (
        ResumePoint {
            func: FuncId(w[1] as u32),
            block: BlockId(w[2] as u32),
            idx: w[3] as usize,
            frame_base: w[4],
            sp: w[5],
            kind,
        },
        (w[6] > 0).then(|| RegionId(w[6] as u32 - 1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    use cwsp_compiler_testutil::*;

    /// Minimal local test-module builders (no dependency on cwsp-compiler:
    /// boundaries and checkpoints are hand-placed where needed).
    mod cwsp_compiler_testutil {
        use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
        use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
        use cwsp_ir::module::Module;

        /// A loop summing into a global, with hand-placed boundaries/ckpts in
        /// the shape the compiler would produce.
        pub fn looping_module(n: u64) -> Module {
            let mut m = Module::new("t");
            let g = m.add_global("acc", 1);
            let mut b = FunctionBuilder::new("main", 0);
            let e = b.entry();
            let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(n), |b, bb, i| {
                let v = b.load(bb, MemRef::global(g, 0));
                let s = b.bin(bb, BinOp::Add, v.into(), i.into());
                b.store(bb, s.into(), MemRef::global(g, 0));
            });
            let v = b.load(exit, MemRef::global(g, 0));
            b.push(
                exit,
                Inst::Ret {
                    val: Some(v.into()),
                },
            );
            let f = m.add_function(b.build());
            m.set_entry(f);
            m
        }

        /// The same module put through the real compiler pipeline.
        pub fn compiled_looping_module(n: u64) -> Module {
            // cwsp-compiler is a dependent crate; replicate the two passes we
            // need inline is overkill — the sim crate tests only need region
            // boundaries, which we insert by hand here.
            let mut m = looping_module(n);
            // Insert a boundary at each loop-header block start by scanning
            // for blocks targeted by back edges: cheap approximation — put a
            // boundary before every store (cuts the WAR) and at block 1.
            let fid = m.entry().unwrap();
            let f = m.function_mut(fid);
            for block in &mut f.blocks {
                let mut i = 0;
                while i < block.insts.len() {
                    if matches!(block.insts[i], Inst::Store { .. }) {
                        block.insts.insert(
                            i,
                            Inst::Boundary {
                                id: cwsp_ir::types::RegionId(u32::MAX),
                            },
                        );
                        i += 1;
                    }
                    i += 1;
                }
            }
            // Renumber.
            let mut next = 0;
            for block in &mut m.function_mut(fid).blocks {
                for inst in &mut block.insts {
                    if let Inst::Boundary { id } = inst {
                        *id = cwsp_ir::types::RegionId(next);
                        next += 1;
                    }
                }
            }
            m
        }
    }

    fn small_cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn baseline_completes_and_matches_oracle() {
        let m = looping_module(50);
        let oracle = cwsp_ir::interp::run(&m, 100_000).unwrap();
        let cfg_ = small_cfg();
        let mut machine = Machine::new(&m, &cfg_, Scheme::Baseline);
        let r = machine.run(1_000_000, None).unwrap();
        assert_eq!(r.end, RunEnd::Completed);
        assert_eq!(machine.return_value(0), oracle.return_value);
        assert!(r.stats.cycles > 0 && r.stats.insts == oracle.steps);
    }

    #[test]
    fn cwsp_completes_with_converged_nvm() {
        let m = compiled_looping_module(40);
        let oracle = cwsp_ir::interp::run(&m, 100_000).unwrap();
        let cfg_ = small_cfg();
        let mut machine = Machine::new(&m, &cfg_, Scheme::cwsp());
        let r = machine.run(1_000_000, None).unwrap();
        assert_eq!(r.end, RunEnd::Completed);
        assert_eq!(machine.return_value(0), oracle.return_value);
        // At completion every store persisted: the NVM image equals the
        // architectural memory on all software-visible words.
        let diffs = machine.nvm().diff_where(
            machine.arch_mem(),
            |a| !cwsp_ir::layout::is_hw_meta_addr(a),
            8,
        );
        assert!(diffs.is_empty(), "NVM lag at completion: {diffs:x?}");
        assert!(r.stats.regions > 0);
    }

    #[test]
    fn cwsp_is_slower_than_baseline_but_modest() {
        let m = looping_module(200);
        let mc = compiled_looping_module(200);
        let base = {
            let cfg_ = small_cfg();
            let mut machine = Machine::new(&m, &cfg_, Scheme::Baseline);
            machine.run(10_000_000, None).unwrap().stats.cycles
        };
        let cwsp = {
            let cfg_ = small_cfg();
            let mut machine = Machine::new(&mc, &cfg_, Scheme::cwsp());
            machine.run(10_000_000, None).unwrap().stats.cycles
        };
        assert!(cwsp >= base, "cwsp {cwsp} < baseline {base}");
        assert!(
            cwsp < base * 3,
            "cwsp overhead unreasonable: {cwsp} vs {base}"
        );
    }

    #[test]
    fn replaycache_is_much_slower_than_cwsp() {
        let mc = compiled_looping_module(200);
        let cwsp = {
            let cfg_ = small_cfg();
            let mut machine = Machine::new(&mc, &cfg_, Scheme::cwsp());
            machine.run(10_000_000, None).unwrap().stats.cycles
        };
        let rc = {
            let cfg_ = small_cfg();
            let mut machine = Machine::new(&mc, &cfg_, Scheme::ReplayCache);
            machine.run(10_000_000, None).unwrap().stats.cycles
        };
        assert!(rc > cwsp, "replaycache {rc} <= cwsp {cwsp}");
    }

    #[test]
    fn ideal_psp_pays_nvm_latency_without_dram_cache() {
        // A workload whose footprint misses the small L2 we give it.
        let m = looping_module(400);
        let mut cfg_with = small_cfg();
        cfg_with.sram_levels[1].size_bytes = 4 << 10; // shrink L2 to force misses
        let mut cfg_without = cfg_with.clone();
        cfg_without.dram_cache = None;
        let with = {
            let mut machine = Machine::new(&m, &cfg_with, Scheme::Baseline);
            machine.run(10_000_000, None).unwrap().stats.cycles
        };
        let without = {
            let mut machine = Machine::new(&m, &cfg_without, Scheme::IdealPsp);
            machine.run(10_000_000, None).unwrap().stats.cycles
        };
        // Equal-ish here because this footprint fits L1; the figure-level
        // contrast comes from DRAM-cache-resident workloads. Sanity only:
        assert!(without >= with);
    }

    #[test]
    fn crash_yields_image_with_meta() {
        let m = compiled_looping_module(100);
        let cfg_ = small_cfg();
        let mut machine = Machine::new(&m, &cfg_, Scheme::cwsp());
        let r = machine.run(1_000_000, Some(500)).unwrap();
        assert_eq!(r.end, RunEnd::PowerFailure);
        let img = machine.into_crash_image();
        // Recovery metadata is readable from the NVM image.
        let (rp, _sr) = unpack_meta(&img.nvm, 0);
        assert!(rp.frame_base > 0);
        assert_eq!(img.resume.len(), 1);
    }

    #[test]
    fn meta_pack_roundtrip() {
        let rp = ResumePoint {
            func: FuncId(3),
            block: BlockId(7),
            idx: 11,
            frame_base: 0xff00,
            sp: 0xff00,
            kind: ResumeKind::PostCall,
        };
        let mut nvm = Memory::new();
        let base = layout::RECOVERY_META_BASE + 2 * layout::RECOVERY_META_STRIDE;
        for (i, w) in pack_meta(rp, Some(RegionId(5))).into_iter().enumerate() {
            nvm.store(base + i as Word * 8, w);
        }
        let (got, sr) = unpack_meta(&nvm, 2);
        assert_eq!(got, rp);
        assert_eq!(sr, Some(RegionId(5)));
    }

    #[test]
    fn instruction_budget_truncates() {
        let m = looping_module(10_000);
        let cfg_ = small_cfg();
        let mut machine = Machine::new(&m, &cfg_, Scheme::Baseline);
        let r = machine.run(1_000, None).unwrap();
        assert_eq!(r.end, RunEnd::InstLimit);
        assert!(r.stats.insts >= 1_000);
    }

    #[test]
    fn multicore_steps_all_cores() {
        let m = looping_module(50);
        let mut cfg = small_cfg();
        cfg.cores = 4;
        let mut machine = Machine::new(&m, &cfg, Scheme::Baseline);
        let r = machine.run(10_000_000, None).unwrap();
        assert_eq!(r.end, RunEnd::Completed);
        assert!(machine.all_halted());
        // Wait — all cores run the same `main` summing into ONE global with
        // unsynchronized RMW; architectural interleaving is fine for the
        // machine test (cores share memory), we only check completion.
        assert!(r.stats.insts > 4 * 50);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::scheme::Scheme;
    use crate::trace::Event;
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};

    #[test]
    fn trace_records_region_lifecycle_and_crash() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 1);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(30), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
        });
        b.push(exit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        // Hand-place a boundary per iteration like the compiler would.
        let fm = m.function_mut(m.entry().unwrap());
        for block in &mut fm.blocks {
            let mut i = 0;
            while i < block.insts.len() {
                if matches!(block.insts[i], Inst::Store { .. }) {
                    block.insts.insert(
                        i,
                        Inst::Boundary {
                            id: cwsp_ir::types::RegionId(0),
                        },
                    );
                    i += 1;
                }
                i += 1;
            }
        }
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&m, &cfg_, Scheme::cwsp());
        machine.enable_trace(256);
        let r = machine.run(u64::MAX, Some(400)).unwrap();
        assert_eq!(r.end, RunEnd::PowerFailure);
        let t = machine.trace().expect("tracing enabled");
        assert!(!t.is_empty());
        let mut opened = 0;
        let mut retired = 0;
        let mut arrived = 0;
        let mut failed = 0;
        for e in t.events() {
            match e {
                Event::RegionOpen { .. } => opened += 1,
                Event::RegionRetire { .. } => retired += 1,
                Event::PersistArrive { .. } => arrived += 1,
                Event::PowerFailure { .. } => failed += 1,
                _ => {}
            }
        }
        assert!(
            opened > 0 && arrived > 0,
            "opened={opened} arrived={arrived}"
        );
        assert!(retired <= opened);
        assert_eq!(failed, 1);
        // The tail renders human-readable lines for post-mortems.
        assert!(t.tail(5).contains("POWER FAILURE"));
        // Cycles are monotone in the ring for point events (stall spans are
        // recorded when they *end* but stamped with their start cycle, so
        // they may appear after later point events).
        let cycles: Vec<u64> = t
            .events()
            .filter(|e| !matches!(e, Event::Stall { .. }))
            .map(|e| e.cycle())
            .collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
        // PB issues are traced now that stores route through the machinery.
        assert!(
            t.events().any(|e| matches!(e, Event::PersistIssue { .. })),
            "no PersistIssue events traced"
        );
    }
}

#[cfg(test)]
mod iodevice_tests {
    use super::*;
    use crate::scheme::Scheme;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{Inst, MemRef, Operand};
    use cwsp_ir::types::RegionId;

    #[test]
    fn output_is_held_until_its_region_persists() {
        // region A: out 1; store; boundary; region B: out 2; halt.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.store(e, Operand::imm(9), MemRef::abs(4096));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(2),
            },
        );
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);

        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&m, &cfg_, Scheme::cwsp());
        // Run a handful of cycles: the instructions execute, but region A's
        // store has not persisted yet (path latency 20 cycles one-way), so no
        // output may have reached the device.
        let _ = machine.run(10_000_000, Some(6)).unwrap();
        assert!(
            machine.output().is_empty(),
            "output leaked before persistence: {:?}",
            machine.output()
        );
        assert!(machine.device().pending() >= 1, "held in the redo buffer");
        // Crash now: the unpersisted regions' output is discarded; recovery
        // re-execution would re-emit it (verified end-to-end in cwsp-core).
        let img = machine.into_crash_image();
        assert!(img.output.is_empty());
    }

    #[test]
    fn completed_run_releases_all_output_in_order() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        for k in 0..5u64 {
            b.push(
                e,
                Inst::Out {
                    val: Operand::imm(k),
                },
            );
            b.store(e, Operand::imm(k), MemRef::abs(4096 + k * 64));
            b.push(e, Inst::Boundary { id: RegionId(0) });
        }
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let cfg_ = SimConfig::default();
        let mut machine = Machine::new(&m, &cfg_, Scheme::cwsp());
        let r = machine.run(u64::MAX, None).unwrap();
        assert_eq!(r.end, RunEnd::Completed);
        assert_eq!(machine.output(), &[0, 1, 2, 3, 4]);
        assert_eq!(machine.device().pending(), 0);
    }
}

#[cfg(test)]
mod stale_read_tests {
    use super::*;
    use crate::config::CacheParams;
    use crate::scheme::Scheme;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{Inst, MemRef, Operand};
    use cwsp_ir::types::RegionId;

    /// Construct the §II-A race: a store's dirty line is evicted from a tiny
    /// L1 while its persist is still crawling down a slow path. The WB-delay
    /// check must hold the writeback (wb_delays > 0) — the cheap fix of
    /// Fig 5 — and with the feature off, no delays are recorded.
    fn race_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        // Store to line A, then immediately thrash the (1-set) L1 with
        // conflicting lines so A's dirty line is evicted into the WB while
        // the persist path (starved of bandwidth) still holds the store.
        b.store(e, Operand::imm(1), MemRef::abs(0x10000));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        for k in 1..24u64 {
            let _ = b.load(e, MemRef::abs(0x10000 + k * 4096));
        }
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::default();
        // 1-set, 2-way L1: conflicting lines evict immediately.
        cfg.sram_levels[0] = CacheParams {
            size_bytes: 128,
            assoc: 2,
            hit_cycles: 4,
        };
        cfg.persist_path_gbps = 0.005; // ~1 entry per 3200 cycles: persist crawls
        cfg.wb_drain_cycles = 1;
        cfg
    }

    #[test]
    fn wb_delay_holds_racing_writebacks() {
        let m = race_module();
        let cfg_ = tiny_cfg();
        let mut machine = Machine::new(&m, &cfg_, Scheme::cwsp());
        let r = machine.run(u64::MAX, None).unwrap();
        assert!(
            r.stats.wb_delays > 0,
            "the dirty line must be held while its persist is pending: {:?}",
            r.stats.wb_delays
        );
    }

    #[test]
    fn disabling_the_feature_records_no_delays() {
        let m = race_module();
        let f = crate::scheme::CwspFeatures {
            wb_delay: false,
            ..Default::default()
        };
        let cfg_ = tiny_cfg();
        let mut machine = Machine::new(&m, &cfg_, Scheme::Cwsp(f));
        let r = machine.run(u64::MAX, None).unwrap();
        assert_eq!(r.stats.wb_delays, 0);
    }
}

#[cfg(test)]
mod wpq_delay_tests {
    use super::*;
    use crate::config::{CacheParams, CxlDevice, MainMemory};
    use crate::scheme::Scheme;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{Inst, MemRef, Operand};
    use cwsp_ir::types::RegionId;

    /// §V-A2: a load that misses the whole hierarchy while its word still
    /// sits in a WPQ must wait for the entry to drain (counted as a WPQ hit,
    /// Fig 8). Exercised with a glacial NVM write latency so the entry is
    /// still pending when the load arrives.
    #[test]
    fn load_hitting_pending_wpq_entry_is_delayed_and_counted() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.store(e, Operand::imm(7), MemRef::abs(0x10000));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        // Thrash the 1-set L1 so 0x10000's line is evicted...
        let _ = b.load(e, MemRef::abs(0x10000 + 4096));
        let _ = b.load(e, MemRef::abs(0x10000 + 2 * 4096));
        // ...then reload it: misses to NVM while the WPQ entry drains.
        let v = b.load(e, MemRef::abs(0x10000));
        b.push(
            e,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);

        let mut cfg = SimConfig::default();
        cfg.sram_levels[0] = CacheParams {
            size_bytes: 128,
            assoc: 2,
            hit_cycles: 4,
        };
        cfg.sram_levels[1] = CacheParams {
            size_bytes: 256,
            assoc: 2,
            hit_cycles: 14,
        };
        cfg.dram_cache = None; // misses go straight to NVM
        cfg.main_memory = MainMemory::Cxl(CxlDevice {
            name: "glacial",
            ip: "test",
            technology: "molasses",
            max_bandwidth_gbps: 1.0,
            read_ns: 100.0,
            write_ns: 50_000.0, // WPQ entries drain for thousands of cycles
        });
        let mut machine = Machine::new(&m, &cfg, Scheme::cwsp());
        let r = machine.run(u64::MAX, None).unwrap();
        assert_eq!(
            machine.return_value(0),
            Some(7),
            "architectural value correct"
        );
        assert!(
            r.stats.wpq_hits >= 1,
            "the reload must hit the pending WPQ entry"
        );
        assert!(r.stats.stall_wpq > 0, "and be delayed until it drains");
    }
}
