//! Figure 24: L1D write-buffer size sensitivity (paper: flat — the persist
//! path outruns the regular path, so WB delaying never binds).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig24_wb_sweep", run);
}

fn run() {
    let apps = cwsp_workloads::all();
    println!("\n=== Fig 24: WB size sweep ===");
    for wb in [8usize, 16, 32] {
        let cfg = SimConfig {
            wb_entries: wb,
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| {
            slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
        });
        println!("-- WB-{wb}");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
