//! Sparse word-granular memory, stored as 4 KiB pages.
//!
//! Both the interpreter's architectural memory and the simulator's NVM image
//! are [`Memory`] instances: sparse maps from 8-byte-aligned addresses to
//! words. Sparsity is what lets the reproduction simulate the paper's
//! multi-gigabyte footprints (2.5–6 GB, §IX-C) without allocating them.
//!
//! ## Representation
//!
//! Earlier versions kept one `HashMap<Word, Word>` entry per non-zero word,
//! which made every simulated load and store a hash probe. Real footprints
//! are page-clustered (stacks, globals, heap arenas), so the map now keys
//! 4 KiB pages (`[Word; 512]`) with an [`FxHashMap`] page table plus a
//! one-entry last-page cache: sequential and strided access patterns resolve
//! to an index into the cached page with no hashing at all.
//!
//! The observable semantics are unchanged and load-bearing for crash
//! consistency checks:
//!
//! * unwritten words read as zero;
//! * storing zero restores "never written" ([`Memory::nonzero_words`] counts
//!   only non-zero words, and two memories are equal iff their non-zero
//!   contents agree — a page left allocated but all-zero equals no page);
//! * [`Memory::iter`] visits exactly the non-zero words.
//!
//! ## Tiering
//!
//! With `CWSP_MEM_BUDGET` set (or [`Memory::with_budget`]), the page table
//! becomes the *hot tier* of a two-tier store: at most `budget` pages stay
//! resident; the rest spill to the process-wide append-only page file
//! ([`cwsp_store::spill`]). Eviction is clock/second-chance over the resident
//! slots; an all-zero victim is dropped outright (identical to the sparse
//! in-RAM behavior), other victims stage in a small writeback buffer that
//! flushes to the spill file in batches. Loads from spilled pages read
//! through without promotion; stores fault the page back in (evicting
//! another under budget pressure). All of the semantics above hold
//! bit-exactly across spill and fault — the crash-consistency oracle cannot
//! tell the tiers apart.

use crate::fxhash::FxHashMap;
use crate::types::Word;
use cwsp_store::{tier as telemetry, SpillStore};
use std::cell::Cell;
use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Instant;

/// Words per page (4 KiB / 8 bytes).
const PAGE_WORDS: usize = 512;
/// log2 of the page size in bytes.
const PAGE_SHIFT: u32 = 12;
/// Mask extracting the word offset within a page from `addr >> 3`.
const OFF_MASK: Word = PAGE_WORDS as Word - 1;
/// Sentinel page number marking the last-page cache invalid (real page
/// numbers are `addr >> 12`, which cannot reach `u64::MAX`).
const NO_PAGE: Word = Word::MAX;

/// Dirty pages staged per memory before one batched append to the spill
/// file. Bounded extra residency on top of the budget (≤ 64 KiB).
const WRITEBACK_BATCH: usize = 16;

// The spill tier and this memory must agree on the page geometry.
const _: () = assert!(PAGE_WORDS == cwsp_store::PAGE_WORDS);

type Page = Box<[Word; PAGE_WORDS]>;

fn new_page() -> Page {
    // Heap-allocate directly; `Box::new([0; 512])` would build 4 KiB on the
    // stack first in debug builds.
    vec![0; PAGE_WORDS].into_boxed_slice().try_into().unwrap()
}

/// Where a non-resident page's contents live.
#[derive(Clone, Copy, Debug)]
enum SpillRef {
    /// Immutable slot offset in the spill file.
    File(u64),
    /// Index into the owning tier's writeback buffer (not yet flushed).
    Pending(u32),
}

/// Cold-tier state of one tiered memory.
struct Tier {
    /// Maximum resident pages (≥ 1).
    budget: usize,
    /// Shared append-only page file.
    spill: Arc<SpillStore>,
    /// Page number → where its spilled contents live.
    spilled: FxHashMap<Word, SpillRef>,
    /// Dirty evicted pages awaiting one batched append.
    pending: Vec<(Word, Page)>,
    /// Clock reference bits, parallel to `Memory::pages`. `Cell` so read
    /// hits can mark recency through `&self`.
    refbits: Vec<Cell<bool>>,
    /// Clock hand (next slot to examine).
    hand: usize,
    /// Freed slots in `Memory::pages` available for reuse.
    free: Vec<u32>,
    /// Current resident pages of this memory.
    resident: usize,
    /// Resident accesses since the last telemetry flush (bulk-reported on
    /// drop to keep atomics off the simulated load/store path).
    hits: Cell<u64>,
}

impl Tier {
    fn new(budget: usize, spill: Arc<SpillStore>) -> Tier {
        Tier {
            budget: budget.max(1),
            spill,
            spilled: FxHashMap::default(),
            pending: Vec::new(),
            refbits: Vec::new(),
            hand: 0,
            free: Vec::new(),
            resident: 0,
            hits: Cell::new(0),
        }
    }

    /// Read one word of a spilled page without promoting it.
    fn read_spilled_word(&self, r: SpillRef, off: usize) -> Word {
        match r {
            SpillRef::Pending(i) => self.pending[i as usize].1[off],
            SpillRef::File(o) => self.spill.read_word(o, off),
        }
    }

    /// Copy of a spilled page's contents (iteration/diff path).
    fn read_spilled_page(&self, r: SpillRef) -> [Word; PAGE_WORDS] {
        match r {
            SpillRef::Pending(i) => *self.pending[i as usize].1,
            SpillRef::File(o) => {
                let mut buf = [0 as Word; PAGE_WORDS];
                self.spill.read_page(o, &mut buf);
                buf
            }
        }
    }

    /// Append every staged page to the spill file in one batch.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let n = self.pending.len() as u64;
        let start = Instant::now();
        for (page_no, page) in self.pending.drain(..) {
            let off = self.spill.append_page(&page);
            self.spilled.insert(page_no, SpillRef::File(off));
        }
        telemetry::record_writeback_batch(n, start.elapsed().as_nanos() as u64);
    }
}

impl Clone for Tier {
    fn clone(&self) -> Tier {
        // The global gauges count pages across live memories, so a clone
        // re-registers its resident and spilled sets.
        for _ in 0..self.resident {
            telemetry::resident_add(self.resident as u64);
        }
        telemetry::spilled_delta(self.spilled.len() as i64);
        Tier {
            budget: self.budget,
            spill: Arc::clone(&self.spill),
            spilled: self.spilled.clone(),
            pending: self.pending.clone(),
            refbits: self.refbits.clone(),
            hand: self.hand,
            free: self.free.clone(),
            resident: self.resident,
            hits: Cell::new(0),
        }
    }
}

impl Drop for Tier {
    fn drop(&mut self) {
        telemetry::record_resident_hits(self.hits.get());
        telemetry::resident_sub(self.resident as u64);
        telemetry::spilled_delta(-(self.spilled.len() as i64));
    }
}

thread_local! {
    /// Test hook: `Some(budget)` overrides `CWSP_MEM_BUDGET` for this thread
    /// (`Some(None)` forces unbounded). Set via [`with_budget_override`].
    static BUDGET_OVERRIDE: Cell<Option<Option<usize>>> = const { Cell::new(None) };
}

/// Run `f` with every `Memory::new()` on this thread using `budget` resident
/// pages (`None` = unbounded), regardless of `CWSP_MEM_BUDGET`. Restores the
/// previous override on exit, including on panic. Parallel tests must use
/// this instead of mutating the environment.
pub fn with_budget_override<R>(budget: Option<usize>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Option<usize>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(BUDGET_OVERRIDE.with(|c| c.replace(Some(budget))));
    f()
}

/// Parse a `CWSP_MEM_BUDGET` value: a bare number is pages, a `K`/`M`/`G`
/// suffix is bytes (converted to pages, minimum 1). `0`, `inf`, `none`, and
/// `unbounded` disable tiering.
fn parse_budget(s: &str) -> Option<usize> {
    let lower = s.trim().to_ascii_lowercase();
    if matches!(lower.as_str(), "" | "0" | "inf" | "none" | "unbounded") {
        return None;
    }
    let (num, bytes_mult) = match lower.as_bytes().last() {
        Some(b'k') => (&lower[..lower.len() - 1], 1u64 << 10),
        Some(b'm') => (&lower[..lower.len() - 1], 1 << 20),
        Some(b'g') => (&lower[..lower.len() - 1], 1 << 30),
        _ => (lower.as_str(), 0),
    };
    let n: u64 = num.trim().parse().ok()?;
    if n == 0 {
        return None;
    }
    let pages = if bytes_mult == 0 {
        n
    } else {
        (n * bytes_mult) >> PAGE_SHIFT
    };
    Some(pages.max(1) as usize)
}

/// The resident-page budget new memories are built with: the thread-local
/// test override if set, else `CWSP_MEM_BUDGET` (parsed once per process),
/// else unbounded.
pub fn default_budget_pages() -> Option<usize> {
    if let Some(o) = BUDGET_OVERRIDE.with(|c| c.get()) {
        return o;
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CWSP_MEM_BUDGET")
            .ok()
            .and_then(|s| parse_budget(&s))
    })
}

/// Sparse, word-granular memory. Unwritten words read as zero.
///
/// # Example
/// ```
/// use cwsp_ir::Memory;
/// let mut m = Memory::new();
/// assert_eq!(m.load(0x1000), 0);
/// m.store(0x1000, 42);
/// assert_eq!(m.load(0x1000), 42);
/// ```
#[derive(Clone)]
pub struct Memory {
    /// Page number (`addr >> 12`) → slot in `pages`.
    index: FxHashMap<Word, u32>,
    /// Allocated pages, in allocation order. With a tier, slots whose
    /// `page_ids` entry is [`NO_PAGE`] are free (their contents are stale).
    pages: Vec<Page>,
    /// Slot → page number (for iteration without touching the map).
    page_ids: Vec<Word>,
    /// Last-page-hit cache: `(page number, slot)`; `NO_PAGE` when invalid.
    /// A `Cell` so read hits can refresh it through `&self`.
    last: Cell<(Word, u32)>,
    /// Global count of non-zero words across all pages, resident or spilled.
    nonzero: usize,
    /// Cold-tier state; `None` = unbounded (the historical behavior, with
    /// an unchanged hot path).
    tier: Option<Box<Tier>>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl Memory {
    /// An empty (all-zero) memory, tiered per [`default_budget_pages`].
    pub fn new() -> Self {
        Memory::with_budget(default_budget_pages())
    }

    /// An empty memory with an explicit resident-page budget (`None` =
    /// unbounded). A budget of 0 is clamped to 1. Falls back to unbounded
    /// if the process-wide spill file cannot be created.
    pub fn with_budget(budget: Option<usize>) -> Self {
        let tier = budget.and_then(|b| SpillStore::global().map(|s| Box::new(Tier::new(b, s))));
        Memory {
            index: FxHashMap::default(),
            pages: Vec::new(),
            page_ids: Vec::new(),
            last: Cell::new((NO_PAGE, 0)),
            nonzero: 0,
            tier,
        }
    }

    /// Whether this memory has a cold tier.
    pub fn tier_enabled(&self) -> bool {
        self.tier.is_some()
    }

    /// Resident-page budget, if tiered.
    pub fn budget_pages(&self) -> Option<usize> {
        self.tier.as_ref().map(|t| t.budget)
    }

    /// Pages currently resident in the hot tier.
    pub fn resident_pages(&self) -> usize {
        match &self.tier {
            Some(t) => t.resident,
            None => self.pages.len(),
        }
    }

    /// Pages currently spilled (including ones staged for writeback).
    pub fn spilled_pages(&self) -> usize {
        self.tier.as_ref().map_or(0, |t| t.spilled.len())
    }

    /// Read the word at `addr`.
    ///
    /// # Panics
    /// Debug-asserts 8-byte alignment.
    #[inline]
    pub fn load(&self, addr: Word) -> Word {
        debug_assert_eq!(addr % 8, 0, "unaligned load at {addr:#x}");
        let page = addr >> PAGE_SHIFT;
        let off = ((addr >> 3) & OFF_MASK) as usize;
        let (cached, slot) = self.last.get();
        if cached == page {
            if let Some(t) = &self.tier {
                t.refbits[slot as usize].set(true);
                t.hits.set(t.hits.get() + 1);
            }
            return self.pages[slot as usize][off];
        }
        match self.index.get(&page) {
            Some(&slot) => {
                self.last.set((page, slot));
                if let Some(t) = &self.tier {
                    t.refbits[slot as usize].set(true);
                    t.hits.set(t.hits.get() + 1);
                }
                self.pages[slot as usize][off]
            }
            None => match &self.tier {
                Some(t) => match t.spilled.get(&page) {
                    // Read through without promotion: loads never churn the
                    // resident set.
                    Some(&r) => {
                        telemetry::record_spilled_load();
                        t.read_spilled_word(r, off)
                    }
                    None => 0,
                },
                None => 0,
            },
        }
    }

    /// Write the word at `addr`, returning the previous value.
    ///
    /// # Panics
    /// Debug-asserts 8-byte alignment.
    #[inline]
    pub fn store(&mut self, addr: Word, value: Word) -> Word {
        debug_assert_eq!(addr % 8, 0, "unaligned store at {addr:#x}");
        let page = addr >> PAGE_SHIFT;
        let off = ((addr >> 3) & OFF_MASK) as usize;
        let (cached, cached_slot) = self.last.get();
        let slot = if cached == page {
            cached_slot
        } else if let Some(&slot) = self.index.get(&page) {
            self.last.set((page, slot));
            slot
        } else {
            match self.store_miss(page, off, value) {
                Ok(slot) => slot,
                // The store was a no-op (zero to absent, or the spilled word
                // already held `value`); `prev` is returned directly.
                Err(prev) => return prev,
            }
        };
        if let Some(t) = &self.tier {
            t.refbits[slot as usize].set(true);
            t.hits.set(t.hits.get() + 1);
        }
        let w = &mut self.pages[slot as usize][off];
        let prev = *w;
        *w = value;
        self.nonzero += (value != 0) as usize;
        self.nonzero -= (prev != 0) as usize;
        prev
    }

    /// Store path when `page` is not resident: fault it from the cold tier,
    /// allocate it, or report a no-op (`Err(previous value)`).
    #[cold]
    fn store_miss(&mut self, page: Word, off: usize, value: Word) -> Result<u32, Word> {
        if let Some(t) = self.tier.as_deref() {
            if let Some(&r) = t.spilled.get(&page) {
                let current = t.read_spilled_word(r, off);
                if current == value {
                    // Nothing would change; skip the fault entirely.
                    return Err(current);
                }
                return Ok(self.fault_in(page));
            }
        }
        if value == 0 {
            // Keep the map sparse: a zero store to an unallocated page is a
            // no-op.
            return Err(0);
        }
        Ok(self.alloc_page(page))
    }

    /// Allocate a fresh all-zero resident page for `page`, evicting under
    /// budget pressure.
    fn alloc_page(&mut self, page: Word) -> u32 {
        self.make_room();
        let Memory {
            index,
            pages,
            page_ids,
            last,
            tier,
            ..
        } = self;
        let slot = match tier.as_deref_mut() {
            Some(t) => {
                let slot = match t.free.pop() {
                    Some(s) => {
                        // Freed slots hold stale contents; a new page must
                        // read all-zero.
                        pages[s as usize].fill(0);
                        page_ids[s as usize] = page;
                        s
                    }
                    None => {
                        pages.push(new_page());
                        page_ids.push(page);
                        t.refbits.push(Cell::new(false));
                        (pages.len() - 1) as u32
                    }
                };
                t.resident += 1;
                telemetry::resident_add(t.resident as u64);
                slot
            }
            None => {
                pages.push(new_page());
                page_ids.push(page);
                (pages.len() - 1) as u32
            }
        };
        index.insert(page, slot);
        last.set((page, slot));
        slot
    }

    /// Fault a spilled page back into the resident set (store path only;
    /// loads read through).
    fn fault_in(&mut self, page: Word) -> u32 {
        self.make_room();
        let Memory {
            index,
            pages,
            page_ids,
            last,
            tier,
            ..
        } = self;
        let t = tier.as_deref_mut().expect("fault_in requires a tier");
        let r = t.spilled.remove(&page).expect("fault_in target is spilled");
        telemetry::spilled_delta(-1);
        telemetry::record_fault();
        let slot = match t.free.pop() {
            Some(s) => s,
            None => {
                pages.push(new_page());
                page_ids.push(NO_PAGE);
                t.refbits.push(Cell::new(false));
                (pages.len() - 1) as u32
            }
        };
        match r {
            SpillRef::Pending(i) => {
                let (pno, data) = t.pending.swap_remove(i as usize);
                debug_assert_eq!(pno, page);
                pages[slot as usize] = data;
                // swap_remove moved the tail entry into index `i`; fix its
                // spill ref.
                if (i as usize) < t.pending.len() {
                    let moved = t.pending[i as usize].0;
                    t.spilled.insert(moved, SpillRef::Pending(i));
                }
            }
            SpillRef::File(o) => t.spill.read_page(o, &mut pages[slot as usize]),
        }
        page_ids[slot as usize] = page;
        index.insert(page, slot);
        t.refbits[slot as usize].set(true);
        t.resident += 1;
        telemetry::resident_add(t.resident as u64);
        last.set((page, slot));
        slot
    }

    /// Evict until a page can be added within the budget.
    fn make_room(&mut self) {
        while self.tier.as_ref().is_some_and(|t| t.resident >= t.budget) {
            self.evict_one();
        }
    }

    /// Clock/second-chance eviction of one resident page. All-zero victims
    /// are dropped (restoring "never written"); others stage for a batched
    /// writeback to the spill file.
    fn evict_one(&mut self) {
        let Memory {
            index,
            pages,
            page_ids,
            last,
            tier,
            ..
        } = self;
        let t = tier.as_deref_mut().expect("evict_one requires a tier");
        debug_assert!(t.resident > 0);
        let slot = loop {
            if t.hand >= pages.len() {
                t.hand = 0;
            }
            let s = t.hand;
            t.hand += 1;
            if page_ids[s] == NO_PAGE {
                continue; // free slot
            }
            if t.refbits[s].replace(false) {
                continue; // second chance
            }
            break s;
        };
        let page = page_ids[slot];
        index.remove(&page);
        page_ids[slot] = NO_PAGE;
        t.free.push(slot as u32);
        t.resident -= 1;
        telemetry::resident_sub(1);
        telemetry::record_eviction();
        if last.get().0 == page {
            last.set((NO_PAGE, 0));
        }
        if pages[slot].iter().all(|&w| w == 0) {
            // Zero pages vanish, exactly as in the unbounded representation;
            // the slot's stale contents are cleared on reuse.
            telemetry::record_zero_drop();
            return;
        }
        let idx = t.pending.len() as u32;
        t.pending.push((page, pages[slot].clone()));
        t.spilled.insert(page, SpillRef::Pending(idx));
        telemetry::spilled_delta(1);
        if t.pending.len() >= WRITEBACK_BATCH {
            t.flush_pending();
        }
    }

    /// Number of non-zero words currently stored.
    pub fn nonzero_words(&self) -> usize {
        self.nonzero
    }

    /// Iterate `(addr, value)` over non-zero words (unspecified order),
    /// resident and spilled alike.
    pub fn iter(&self) -> impl Iterator<Item = (Word, Word)> + '_ {
        let resident = self
            .pages
            .iter()
            .zip(self.page_ids.iter())
            .filter(|&(_, &page)| page != NO_PAGE)
            .flat_map(|(p, &page)| {
                let base = page << PAGE_SHIFT;
                p.iter()
                    .enumerate()
                    .filter_map(move |(i, &v)| (v != 0).then_some((base + i as Word * 8, v)))
            });
        let spilled = self.tier.as_deref().into_iter().flat_map(|t| {
            t.spilled.iter().flat_map(move |(&page, &r)| {
                let base = page << PAGE_SHIFT;
                t.read_spilled_page(r)
                    .into_iter()
                    .enumerate()
                    .filter_map(move |(i, v)| (v != 0).then_some((base + i as Word * 8, v)))
            })
        });
        resident.chain(spilled)
    }

    /// Compare this memory with `other` over addresses `filter` accepts,
    /// returning up to `limit` differing addresses as
    /// `(addr, self_value, other_value)`.
    ///
    /// Used by the consistency verifier to compare a recovered run's NVM image
    /// against the failure-free oracle while ignoring hardware metadata.
    pub fn diff_where(
        &self,
        other: &Memory,
        mut filter: impl FnMut(Word) -> bool,
        limit: usize,
    ) -> Vec<(Word, Word, Word)> {
        let mut out = Vec::new();
        for (a, v) in self.iter() {
            if out.len() >= limit {
                break;
            }
            if filter(a) && other.load(a) != v {
                out.push((a, v, other.load(a)));
            }
        }
        // Words non-zero only in `other`: the first loop cannot see them.
        for (a, v) in other.iter() {
            if out.len() >= limit {
                break;
            }
            if filter(a) && self.load(a) == 0 {
                out.push((a, 0, v));
            }
        }
        out
    }
}

/// Equality over non-zero contents only: a page that was written and then
/// zeroed again stays allocated but compares equal to never-written memory.
impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        // Same non-zero count + every non-zero word of `self` matches
        // `other` ⇒ the non-zero sets coincide exactly.
        self.nonzero == other.nonzero && self.iter().all(|(a, v)| other.load(a) == v)
    }
}

impl Eq for Memory {}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print only the non-zero words, sorted, so assertion failures stay
        // readable regardless of page-allocation order.
        let mut words: Vec<(Word, Word)> = self.iter().collect();
        words.sort_unstable();
        f.debug_struct("Memory")
            .field("nonzero", &self.nonzero)
            .field("words", &words)
            .finish()
    }
}

impl FromIterator<(Word, Word)> for Memory {
    fn from_iter<T: IntoIterator<Item = (Word, Word)>>(iter: T) -> Self {
        let mut m = Memory::new();
        for (a, v) in iter {
            m.store(a, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default_and_roundtrip() {
        let mut m = Memory::new();
        assert_eq!(m.load(8), 0);
        assert_eq!(m.store(8, 5), 0);
        assert_eq!(m.store(8, 7), 5);
        assert_eq!(m.load(8), 7);
    }

    #[test]
    fn zero_store_keeps_sparse() {
        let mut m = Memory::new();
        m.store(16, 9);
        assert_eq!(m.nonzero_words(), 1);
        assert_eq!(m.store(16, 0), 9);
        assert_eq!(m.nonzero_words(), 0);
        assert_eq!(m.load(16), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    #[cfg(debug_assertions)]
    fn unaligned_traps_in_debug() {
        Memory::new().load(3);
    }

    #[test]
    fn diff_where_finds_asymmetric_differences() {
        let a: Memory = [(8, 1), (16, 2)].into_iter().collect();
        let b: Memory = [(8, 1), (24, 3)].into_iter().collect();
        let mut d = a.diff_where(&b, |_| true, 10);
        d.sort();
        assert_eq!(d, vec![(16, 2, 0), (24, 0, 3)]);
        // filter excludes
        let d2 = a.diff_where(&b, |addr| addr < 16, 10);
        assert!(d2.is_empty());
        // limit respected
        let d3 = a.diff_where(&b, |_| true, 1);
        assert_eq!(d3.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let m: Memory = [(8, 1), (16, 0)].into_iter().collect();
        assert_eq!(m.nonzero_words(), 1);
    }

    #[test]
    fn page_boundaries_are_seamless() {
        let mut m = Memory::new();
        // Last word of page 0, first word of page 1, and a far page.
        for (i, a) in [4096 - 8, 4096, 7 << 40].into_iter().enumerate() {
            m.store(a, i as Word + 1);
        }
        assert_eq!(m.load(4096 - 8), 1);
        assert_eq!(m.load(4096), 2);
        assert_eq!(m.load(7 << 40), 3);
        assert_eq!(m.nonzero_words(), 3);
        // Neighbors within the same pages still read zero.
        assert_eq!(m.load(4096 - 16), 0);
        assert_eq!(m.load(4096 + 8), 0);
    }

    #[test]
    fn zeroed_page_equals_never_written() {
        let mut a = Memory::new();
        a.store(0x5000, 1);
        a.store(0x5000, 0); // page stays allocated, contents all-zero
        let b = Memory::new();
        assert_eq!(a, b);
        assert_eq!(b, a);
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn equality_ignores_page_allocation_order() {
        let a: Memory = [(0x1000, 1), (0x9000, 2)].into_iter().collect();
        let b: Memory = [(0x9000, 2), (0x1000, 1)].into_iter().collect();
        assert_eq!(a, b);
        let c: Memory = [(0x1000, 1), (0x9000, 3)].into_iter().collect();
        assert_ne!(a, c);
        let d: Memory = [(0x1000, 1)].into_iter().collect();
        assert_ne!(a, d);
        assert_ne!(d, a);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Memory::new();
        a.store(64, 10);
        let mut b = a.clone();
        b.store(64, 20);
        b.store(1 << 30, 5);
        assert_eq!(a.load(64), 10);
        assert_eq!(a.load(1 << 30), 0);
        assert_eq!(b.load(64), 20);
        assert_eq!(a.nonzero_words(), 1);
        assert_eq!(b.nonzero_words(), 2);
    }

    #[test]
    fn iter_yields_exactly_nonzero_words() {
        let mut m = Memory::new();
        m.store(0, 1);
        m.store(8, 2);
        m.store(8, 0);
        m.store(0x10_0000, 3);
        let mut got: Vec<(Word, Word)> = m.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (0x10_0000, 3)]);
        assert_eq!(m.nonzero_words(), 2);
    }

    #[test]
    fn tiered_spill_and_fault_round_trip() {
        let mut m = Memory::with_budget(Some(2));
        assert!(m.tier_enabled());
        // Touch 8 pages; only 2 can stay resident.
        for p in 0..8 as Word {
            m.store(p << PAGE_SHIFT, p + 1);
        }
        assert!(m.resident_pages() <= 2, "resident {}", m.resident_pages());
        assert_eq!(m.spilled_pages(), 6);
        // Loads read through the cold tier without promotion.
        let spilled_before = m.spilled_pages();
        for p in 0..8 as Word {
            assert_eq!(m.load(p << PAGE_SHIFT), p + 1);
        }
        assert_eq!(m.spilled_pages(), spilled_before);
        // Stores fault pages back in, still within budget.
        for p in 0..8 as Word {
            m.store((p << PAGE_SHIFT) + 8, p + 100);
        }
        assert!(m.resident_pages() <= 2);
        for p in 0..8 as Word {
            assert_eq!(m.load(p << PAGE_SHIFT), p + 1);
            assert_eq!(m.load((p << PAGE_SHIFT) + 8), p + 100);
        }
        assert_eq!(m.nonzero_words(), 16);
    }

    #[test]
    fn tiered_matches_unbounded_semantics() {
        let mut tiered = Memory::with_budget(Some(1));
        let mut plain = Memory::with_budget(None);
        // Deterministic mixed workload over several pages, with zero stores.
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 33) % (16 * PAGE_WORDS as u64)) * 8;
            let val = if x.is_multiple_of(5) { 0 } else { x % 1000 };
            assert_eq!(tiered.store(addr, val), plain.store(addr, val));
            let probe = ((x >> 13) % (16 * PAGE_WORDS as u64)) * 8;
            assert_eq!(tiered.load(probe), plain.load(probe));
        }
        assert_eq!(tiered.nonzero_words(), plain.nonzero_words());
        assert_eq!(tiered, plain);
        assert_eq!(plain, tiered);
        let mut a: Vec<_> = tiered.iter().collect();
        let mut b: Vec<_> = plain.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn tiered_zero_store_restores_unwritten_across_spill() {
        let mut m = Memory::with_budget(Some(1));
        m.store(0x1000, 7);
        m.store(0x2000, 8); // evicts page 1
        m.store(0x1000, 0); // faults page 1 back, zeroes the word
        m.store(0x3000, 9); // evict again; the all-zero page must drop
        assert_eq!(m.nonzero_words(), 2);
        assert_eq!(m.load(0x1000), 0);
        let unwritten = Memory::with_budget(Some(1));
        assert_ne!(m, unwritten);
        let expect: Memory = [(0x2000, 8), (0x3000, 9)].into_iter().collect();
        assert_eq!(m, expect);
    }

    #[test]
    fn tiered_clone_is_independent() {
        let mut a = Memory::with_budget(Some(2));
        for p in 0..6 as Word {
            a.store(p << PAGE_SHIFT, p + 1);
        }
        let mut b = a.clone();
        b.store(0, 99);
        b.store(5 << PAGE_SHIFT, 0);
        for p in 0..6 as Word {
            assert_eq!(a.load(p << PAGE_SHIFT), p + 1, "clone mutated parent");
        }
        assert_eq!(b.load(0), 99);
        assert_eq!(b.load(5 << PAGE_SHIFT), 0);
        assert_eq!(a.nonzero_words(), 6);
        assert_eq!(b.nonzero_words(), 5);
    }

    #[test]
    fn budget_override_and_parse() {
        let m = with_budget_override(Some(4), Memory::new);
        assert_eq!(m.budget_pages(), Some(4));
        let m2 = with_budget_override(None, Memory::new);
        assert!(!m2.tier_enabled());
        assert_eq!(parse_budget("128"), Some(128));
        assert_eq!(parse_budget("64K"), Some(16)); // 64 KiB / 4 KiB
        assert_eq!(parse_budget("1m"), Some(256));
        assert_eq!(parse_budget("2G"), Some(2 << 18));
        assert_eq!(parse_budget("0"), None);
        assert_eq!(parse_budget("inf"), None);
        assert_eq!(parse_budget("1"), Some(1));
        assert_eq!(parse_budget("junk"), None);
        assert_eq!(parse_budget("2K"), Some(1), "sub-page budgets clamp to 1");
    }

    #[test]
    fn tiered_diff_where_sees_spilled_words() {
        let (a, b) = with_budget_override(Some(1), || {
            let a: Memory = (0..8).map(|p| ((p as Word) << PAGE_SHIFT, p + 1)).collect();
            let mut b = a.clone();
            b.store(3 << PAGE_SHIFT, 42);
            (a, b)
        });
        let d = a.diff_where(&b, |_| true, 10);
        assert_eq!(d, vec![(3 << PAGE_SHIFT, 4, 42)]);
    }

    #[test]
    fn interleaved_pages_exercise_the_page_cache() {
        let mut m = Memory::new();
        // Alternate between two pages so the one-entry cache keeps flipping.
        for i in 0..PAGE_WORDS as Word {
            m.store(i * 8, i);
            m.store((1 << 20) + i * 8, i * 2);
        }
        for i in 1..PAGE_WORDS as Word {
            assert_eq!(m.load(i * 8), i);
            assert_eq!(m.load((1 << 20) + i * 8), i * 2);
        }
        assert_eq!(m.nonzero_words(), 2 * (PAGE_WORDS - 1));
    }
}
