//! Human-readable compilation reports.
//!
//! Summarizes what the cWSP pipeline did to a module — per-function region
//! and checkpoint placement, recovery-slice composition — in the spirit of
//! `-Rpass` remarks. Used by examples and by humans debugging why a region
//! is shorter or a checkpoint survived pruning.

use crate::pipeline::Compiled;
use crate::slice::RsSource;
use cwsp_ir::inst::Inst;
use std::fmt::Write as _;

/// Per-function placement counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Instructions after compilation.
    pub insts: usize,
    /// Explicit region boundaries.
    pub boundaries: usize,
    /// Surviving checkpoints.
    pub ckpts: usize,
}

/// A whole-module report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// One entry per function, in id order.
    pub functions: Vec<FunctionReport>,
    /// Recovery-slice restore counts: `(slot, const, expr)`.
    pub restores: (usize, usize, usize),
    /// Average live-ins restored per region slice.
    pub avg_live_ins: f64,
}

/// Build a report from a compiled module.
pub fn report(compiled: &Compiled) -> Report {
    let mut functions = Vec::new();
    for (_, f) in compiled.module.iter_functions() {
        let mut fr = FunctionReport {
            name: f.name.clone(),
            ..Default::default()
        };
        fr.insts = f.inst_count();
        for block in &f.blocks {
            for inst in &block.insts {
                match inst {
                    Inst::Boundary { .. } => fr.boundaries += 1,
                    Inst::Ckpt { .. } => fr.ckpts += 1,
                    _ => {}
                }
            }
        }
        functions.push(fr);
    }
    let (mut slot, mut cst, mut expr, mut total, mut regions) = (0, 0, 0, 0usize, 0usize);
    for (_, s) in compiled.slices.iter() {
        regions += 1;
        for (_, src) in &s.restores {
            total += 1;
            match src {
                RsSource::Slot => slot += 1,
                RsSource::Const(_) => cst += 1,
                RsSource::Expr(_) => expr += 1,
            }
        }
    }
    Report {
        functions,
        restores: (slot, cst, expr),
        avg_live_ins: if regions == 0 {
            0.0
        } else {
            total as f64 / regions as f64
        },
    }
}

/// Render the report as aligned text.
pub fn render(r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<20} {:>7} {:>9} {:>7}",
        "function", "insts", "regions", "ckpts"
    );
    for f in &r.functions {
        let _ = writeln!(
            s,
            "{:<20} {:>7} {:>9} {:>7}",
            f.name, f.insts, f.boundaries, f.ckpts
        );
    }
    let (slot, cst, expr) = r.restores;
    let _ = writeln!(
        s,
        "slices: {slot} slot loads, {cst} constants, {expr} expressions \
         ({:.1} live-ins/region avg)",
        r.avg_live_ins
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{CompileOptions, CwspCompiler};
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, MemRef, Operand};
    use cwsp_ir::module::Module;

    fn compiled_sample() -> Compiled {
        let mut m = Module::new("t");
        let g = m.add_global("g", 4);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(10), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
        });
        b.push(exit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        CwspCompiler::new(CompileOptions::default()).compile(&m)
    }

    #[test]
    fn report_counts_match_module() {
        let c = compiled_sample();
        let r = report(&c);
        assert_eq!(r.functions.len(), 1);
        assert_eq!(r.functions[0].name, "main");
        assert_eq!(r.functions[0].boundaries, c.stats.boundaries_inserted);
        assert_eq!(r.functions[0].ckpts, c.stats.ckpts_final);
        let (slot, cst, expr) = r.restores;
        assert_eq!(slot, c.stats.slot_restores);
        assert_eq!(cst, c.stats.const_restores);
        assert!(slot + cst + expr > 0);
        assert!(r.avg_live_ins > 0.0);
    }

    #[test]
    fn render_is_aligned_text() {
        let c = compiled_sample();
        let text = render(&report(&c));
        assert!(text.contains("function"));
        assert!(text.contains("main"));
        assert!(text.contains("slices:"));
        assert!(text.lines().count() >= 3);
    }
}
