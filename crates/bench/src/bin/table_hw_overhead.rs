//! §IX-N hardware overhead: RBT storage = 16 entries × 11 bytes = 176 bytes,
//! a 346× reduction from Capri's 54 KB per core; the PB reuses the existing
//! 1 KB write-combining buffer.

use cwsp_sim::config::SimConfig;

fn main() {
    cwsp_bench::harness_main("table_hw_overhead", run);
}

fn run() {
    let cfg = SimConfig::default();
    let rbt = cfg.rbt_storage_bytes();
    let capri_per_core: usize = 54 * 1024; // "54KB per core", §I
    println!("=== §IX-N: hardware storage overhead ===");
    // The two sections are independent; fan them out over the engine pool
    // (order-preserving) so the harness records achieved parallelism here
    // like in every other figure binary.
    let sections = cwsp_bench::par_map(&[0usize, 1], |&section| match section {
        0 => vec![
            format!(
                "cWSP RBT:   {} entries x 11 B = {rbt} B per core",
                cfg.rbt_entries
            ),
            "cWSP PB:    repurposed 1 KB Intel write-combining buffer (no new storage)".to_string(),
            format!("Capri:      {capri_per_core} B per core (battery-backed redo buffer)"),
            format!(
                "reduction:  {:.0}x (paper: 346x = 54 KB + proxy share vs 176 B)",
                capri_per_core as f64 / rbt as f64
            ),
        ],
        _ => {
            // Capri total on a 128-core, 12-MC EPYC. The paper quotes 88 MB,
            // which matches (N+1) x M x 54 KB; its inline formula says 18 KB
            // per buffer — we print the 54 KB variant that reproduces the
            // quoted total.
            let n = 12usize;
            let m = 128usize;
            let capri_total = (n + 1) * m * capri_per_core;
            vec![format!(
                "Capri total on 128-core/12-MC EPYC: (N+1) x M x 54 KB = {:.0} MB (paper: 88 MB)",
                capri_total as f64 / (1024.0 * 1024.0)
            )]
        }
    });
    for line in sections.into_iter().flatten() {
        println!("{line}");
    }
}
