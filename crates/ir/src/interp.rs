//! The interpreter and its step-effect stream.
//!
//! The interpreter executes one IR instruction per [`Interp::step`] call and
//! reports everything the outside world could observe in a [`StepEffect`]:
//! memory reads/writes (with addresses and values), dynamic region boundaries,
//! output words, and termination. Two consumers exist:
//!
//! * [`run`] — the *oracle*: executes to completion with no persistence
//!   machinery, producing the ground-truth output and final memory.
//! * `cwsp-sim` — drives the same stepping semantics, but attaches timing and
//!   the cWSP persistence hardware to each effect, maintains a separate NVM
//!   image that lags architectural state, and can cut power at any cycle.
//!
//! ## Execution core
//!
//! [`Interp`] executes from a [`DecodedModule`] — the module lowered once
//! into a flat `Copy` micro-op array (see [`crate::decoded`]) — so the
//! steady-state path performs no heap allocation: fetch is an array read,
//! call argument/save lists are pool slices, argument values go through a
//! reused scratch buffer, and popped frames recycle their register files.
//! Callers that step in a loop should use [`Interp::step_into`] with a
//! reused [`StepEffect`] to keep the effect buffers allocation-free too;
//! [`Interp::step`] is the convenience wrapper that returns a fresh effect.
//! The tree-walking executable specification these semantics are checked
//! against lives in [`crate::reference`].
//!
//! ## Calls, frames, and persistence
//!
//! All cross-frame state lives in (persistent) stack memory (see
//! [`Inst::Call`]): a call stores a frame record, the live-across-call
//! registers (`save_regs`), and the arguments; a return stores the return
//! value and *reloads* `save_regs` from memory. Because those are ordinary
//! stores riding the persist path, power-failure recovery can rebuild the
//! whole call stack from NVM — [`Interp::resume`] does exactly that.

use crate::decoded::{DecAddr, DecodedInst, DecodedModule, PoolRange, OPCODE_COUNT};
use crate::function::{BlockId, InstIdx};
use crate::inst::{AtomicOp, Inst, Operand};
use crate::layout;
use crate::memory::Memory;
use crate::module::{FuncId, Module};
use crate::types::{Reg, RegionId, Word};
use std::fmt;
use std::sync::Arc;

/// Frame-record header layout (word offsets from `frame_base`).
pub mod frame {
    /// Previous frame's base address (0 for the entry frame).
    pub const PREV_BASE: u64 = 0;
    /// Caller function id (sentinel [`NO_CALLER`] for the entry frame).
    pub const CALLER_FUNC: u64 = 1;
    /// Caller block id.
    pub const CALLER_BLOCK: u64 = 2;
    /// Caller instruction index (the `Call` instruction).
    pub const CALLER_IDX: u64 = 3;
    /// Caller's stack pointer at call time.
    pub const CALLER_SP: u64 = 4;
    /// Number of saved registers in this record.
    pub const NSAVE: u64 = 5;
    /// Number of argument words in this record.
    pub const NARGS: u64 = 6;
    /// Return-value slot.
    pub const RETVAL: u64 = 7;
    /// First saved-register slot; arguments follow the saves.
    pub const SAVES: u64 = 8;
    /// Sentinel marking "no caller" (entry frame).
    pub const NO_CALLER: u64 = u64::MAX;

    /// Total frame size in words for `nsave` saves and `nargs` args.
    pub const fn size_words(nsave: u64, nargs: u64) -> u64 {
        SAVES + nsave + nargs
    }
}

/// Where execution (re)starts: a dynamic region entry point.
///
/// Persisted (packed) to the recovery-metadata area by the simulated hardware
/// each time the region boundary table retires its head entry, so that after a
/// power failure the runtime knows the oldest unpersisted region (§V-B, §VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumePoint {
    /// Function containing the region entry.
    pub func: FuncId,
    /// Block containing the region entry.
    pub block: BlockId,
    /// Instruction index of the region's first instruction (for
    /// [`ResumeKind::PostCall`], the index of the `Call` itself).
    pub idx: InstIdx,
    /// Base address of the active frame's record.
    pub frame_base: Word,
    /// Stack pointer at region entry.
    pub sp: Word,
    /// What implicit restore work region entry performs.
    pub kind: ResumeKind,
}

/// The implicit restore semantics of a region entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeKind {
    /// Plain region entry: live-in registers are restored by the region's
    /// recovery slice (compiler-generated, §IV-C).
    Normal,
    /// Function entry: parameters are reloaded from the frame record.
    FuncEntry,
    /// Post-call region entry: `save_regs` and the return value are reloaded
    /// from the frame record, then execution continues after the `Call`.
    PostCall,
}

/// Information attached to a step that begins a new dynamic region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryInfo {
    /// The compiler-assigned static region id, if this boundary came from an
    /// explicit [`Inst::Boundary`]; `None` for implicit call/return
    /// boundaries, whose restore work is builtin (see [`ResumeKind`]).
    pub static_region: Option<RegionId>,
    /// Entry point of the region that begins after this step.
    pub resume: ResumePoint,
}

/// Classification of a step for the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// Register-only computation (ALU, moves, branches).
    Alu,
    /// A word load.
    Load,
    /// A word store.
    Store,
    /// An atomic read-modify-write (synchronization point).
    Atomic,
    /// A memory fence (synchronization point).
    Fence,
    /// A call: frame spill stores, then control enters the callee.
    Call,
    /// A return: return-value store + register restore loads.
    Ret,
    /// An explicit region boundary instruction.
    Boundary,
    /// A checkpoint store of a live-out register (§IV-B).
    Ckpt,
    /// An output word was emitted.
    Out,
    /// The program halted (via `Halt` or return from the entry function).
    Halt,
    /// A cache-line writeback toward NVM (`FlushLine`). Architecturally a
    /// no-op; `reads[0]` names the flushed address.
    Flush,
    /// A persist-ordering fence (`PFence`). Architecturally a no-op; not a
    /// synchronization point.
    PFence,
}

/// Everything externally observable about one interpreter step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepEffect {
    /// Step classification for the timing model.
    pub kind: EffectKind,
    /// Addresses read from memory, in order.
    pub reads: Vec<Word>,
    /// `(address, value)` pairs written to memory, in order.
    pub writes: Vec<(Word, Word)>,
    /// Set when a new dynamic region begins at the end of this step.
    pub boundary: Option<BoundaryInfo>,
    /// Output word emitted by this step.
    pub out: Option<Word>,
}

impl StepEffect {
    pub(crate) fn new(kind: EffectKind) -> Self {
        StepEffect {
            kind,
            reads: Vec::new(),
            writes: Vec::new(),
            boundary: None,
            out: None,
        }
    }
}

/// An empty ALU effect — the scratch buffer callers pass to
/// [`Interp::step_into`].
impl Default for StepEffect {
    fn default() -> Self {
        StepEffect::new(EffectKind::Alu)
    }
}

/// Errors raised by interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The module has no entry function.
    NoEntry,
    /// A runtime trap with a description (unaligned access, bad call, …).
    Trap(String),
    /// [`run`] exceeded its step budget.
    StepLimit(u64),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::NoEntry => write!(f, "module has no entry function"),
            InterpError::Trap(msg) => write!(f, "trap: {msg}"),
            InterpError::StepLimit(n) => write!(f, "step limit of {n} exceeded"),
        }
    }
}

impl std::error::Error for InterpError {}

/// One activation record (the volatile register file; the persistent twin
/// lives in stack memory).
///
/// `pc`/`limit` cache the flat decoded range of the current block: `pc` is
/// the next micro-op, `limit` the block's end (reaching it without a
/// terminator is the "fell off block" trap). `block`/`idx` are kept in sync
/// for resume points and diagnostics.
#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    block: BlockId,
    idx: InstIdx,
    pc: u32,
    limit: u32,
    regs: Vec<Word>,
    frame_base: Word,
    sp: Word,
}

/// Result of a completed oracle run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Final architectural memory.
    pub memory: Memory,
    /// Emitted output words, in program order.
    pub output: Vec<Word>,
    /// Entry function's return value (if it returned one).
    pub return_value: Option<Word>,
    /// Number of dynamic instructions executed.
    pub steps: u64,
}

/// The stepping interpreter.
pub struct Interp<'m> {
    module: &'m Module,
    dec: Arc<DecodedModule>,
    frames: Vec<Frame>,
    /// Register files of popped frames, recycled by the next `Call` so the
    /// steady-state call path allocates nothing.
    free_regs: Vec<Vec<Word>>,
    /// Reused buffer for evaluated call arguments.
    arg_scratch: Vec<Word>,
    core: usize,
    halted: bool,
    return_value: Option<Word>,
    steps: u64,
    /// Executed-instruction counts per opcode (see
    /// [`crate::decoded::OPCODE_NAMES`]).
    op_counts: [u64; OPCODE_COUNT],
}

impl<'m> Interp<'m> {
    /// Create an interpreter for `module` on `core`, with global initializers
    /// applied to a fresh memory.
    ///
    /// # Errors
    /// [`InterpError::NoEntry`] if the module has no entry function.
    pub fn new(module: &'m Module, core: usize, mem: &mut Memory) -> Result<Self, InterpError> {
        Self::new_shared(module, Arc::new(DecodedModule::new(module)), core, mem)
    }

    /// Like [`Interp::new`], but executing from an existing decode of
    /// `module` (a multicore simulation decodes once and shares).
    ///
    /// # Errors
    /// [`InterpError::NoEntry`] if the module has no entry function.
    pub fn new_shared(
        module: &'m Module,
        dec: Arc<DecodedModule>,
        core: usize,
        mem: &mut Memory,
    ) -> Result<Self, InterpError> {
        for g in module.globals() {
            for (i, &v) in g.init.iter().enumerate() {
                mem.store(g.addr + i as Word * 8, v);
            }
        }
        Self::with_args_shared(module, dec, core, mem, &[])
    }

    /// Create an interpreter over an existing memory (global initializers are
    /// *not* re-applied — the memory is assumed to already hold the image).
    ///
    /// # Errors
    /// [`InterpError::NoEntry`] if the module has no entry function.
    pub fn with_memory(
        module: &'m Module,
        core: usize,
        mem: &mut Memory,
    ) -> Result<Self, InterpError> {
        Self::with_args(module, core, mem, &[])
    }

    /// Like [`Interp::with_memory`], but passes `args` to the entry function
    /// (e.g. a thread id for multicore workloads). Arguments beyond the entry
    /// function's parameter count are ignored; missing ones default to zero.
    ///
    /// # Errors
    /// [`InterpError::NoEntry`] if the module has no entry function.
    pub fn with_args(
        module: &'m Module,
        core: usize,
        mem: &mut Memory,
        args: &[Word],
    ) -> Result<Self, InterpError> {
        Self::with_args_shared(
            module,
            Arc::new(DecodedModule::new(module)),
            core,
            mem,
            args,
        )
    }

    /// Like [`Interp::with_args`], but executing from an existing decode.
    ///
    /// # Errors
    /// [`InterpError::NoEntry`] if the module has no entry function.
    pub fn with_args_shared(
        module: &'m Module,
        dec: Arc<DecodedModule>,
        core: usize,
        mem: &mut Memory,
        args: &[Word],
    ) -> Result<Self, InterpError> {
        debug_assert_eq!(
            dec.op_count(),
            module.inst_count(),
            "decode does not match module"
        );
        let entry = module.entry().ok_or(InterpError::NoEntry)?;
        let f = module.function(entry);
        let nargs = args.len().min(f.param_count as usize) as u64;
        let top = layout::stack_top(core);
        let size = frame::size_words(0, nargs) * 8;
        let base = top - size;
        let mut interp = Interp {
            module,
            dec,
            frames: Vec::new(),
            free_regs: Vec::new(),
            arg_scratch: Vec::new(),
            core,
            halted: false,
            return_value: None,
            steps: 0,
            op_counts: [0; OPCODE_COUNT],
        };
        // Entry frame record (so recovery inside `main` can walk the stack).
        mem.store(base + frame::PREV_BASE * 8, 0);
        mem.store(base + frame::CALLER_FUNC * 8, frame::NO_CALLER);
        mem.store(base + frame::NSAVE * 8, 0);
        mem.store(base + frame::NARGS * 8, nargs);
        let mut regs = vec![0; f.reg_count as usize];
        for (i, &a) in args.iter().enumerate().take(nargs as usize) {
            mem.store(base + (frame::SAVES + i as u64) * 8, a);
            regs[i] = a;
        }
        let (pc, limit) = interp.dec.block_range(entry, f.entry());
        interp.frames.push(Frame {
            func: entry,
            block: f.entry(),
            idx: 0,
            pc,
            limit,
            regs,
            frame_base: base,
            sp: base,
        });
        Ok(interp)
    }

    /// Rebuild an interpreter from persistent memory after a power failure,
    /// positioned at `resume` — the entry of the oldest unpersisted region
    /// (§VII). Walks the frame records in `mem` to reconstruct the call stack
    /// and performs the [`ResumeKind`] builtin restore. For
    /// [`ResumeKind::Normal`] entries the caller must additionally execute the
    /// region's recovery slice to restore live-in registers before stepping.
    ///
    /// # Errors
    /// Traps if the frame chain in memory is malformed.
    pub fn resume(
        module: &'m Module,
        core: usize,
        mem: &Memory,
        resume: ResumePoint,
    ) -> Result<Self, InterpError> {
        let mut interp = Interp {
            module,
            dec: Arc::new(DecodedModule::new(module)),
            frames: Vec::new(),
            free_regs: Vec::new(),
            arg_scratch: Vec::new(),
            core,
            halted: false,
            return_value: None,
            steps: 0,
            op_counts: [0; OPCODE_COUNT],
        };
        // Walk frame records from innermost to outermost, then reverse.
        let mut chain = Vec::new();
        let mut base = resume.frame_base;
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 1_000_000 {
                return Err(InterpError::Trap("frame chain too deep or cyclic".into()));
            }
            let caller_func = mem.load(base + frame::CALLER_FUNC * 8);
            chain.push(base);
            if caller_func == frame::NO_CALLER {
                break;
            }
            base = mem.load(base + frame::PREV_BASE * 8);
        }
        chain.reverse();
        // Reconstruct outer frames paused at their Call instructions. Their
        // dead registers are zero; live-across-call registers are reloaded
        // from frame memory when the callee returns.
        for w in chain.windows(2) {
            let (outer_base, inner_base) = (w[0], w[1]);
            let func = FuncId(mem.load(inner_base + frame::CALLER_FUNC * 8) as u32);
            if func.index() >= module.function_count() {
                return Err(InterpError::Trap(format!(
                    "bad caller func in frame {inner_base:#x}"
                )));
            }
            let block = BlockId(mem.load(inner_base + frame::CALLER_BLOCK * 8) as u32);
            let idx = mem.load(inner_base + frame::CALLER_IDX * 8) as InstIdx;
            let sp = mem.load(inner_base + frame::CALLER_SP * 8);
            let reg_count = module.function(func).reg_count as usize;
            let mut f = Frame {
                func,
                block,
                idx,
                pc: 0,
                limit: 0,
                regs: vec![0; reg_count],
                frame_base: outer_base,
                sp,
            };
            interp.locate_frame(&mut f)?;
            interp.frames.push(f);
        }
        // Innermost frame: the resumed region's frame.
        let func = module.function(resume.func);
        let mut frame = Frame {
            func: resume.func,
            block: resume.block,
            idx: resume.idx,
            pc: 0,
            limit: 0,
            regs: vec![0; func.reg_count as usize],
            frame_base: resume.frame_base,
            sp: resume.sp,
        };
        match resume.kind {
            ResumeKind::Normal => {}
            ResumeKind::FuncEntry => {
                // Reload parameters from the frame record.
                let nsave = mem.load(resume.frame_base + frame::NSAVE * 8);
                let nargs = mem.load(resume.frame_base + frame::NARGS * 8);
                for i in 0..nargs.min(func.param_count as u64) {
                    let a = resume.frame_base + (frame::SAVES + nsave + i) * 8;
                    frame.regs[i as usize] = mem.load(a);
                }
            }
            ResumeKind::PostCall => {
                // Reload save_regs + return value, then step past the Call.
                let call = &module.function(resume.func).block(resume.block).insts[resume.idx];
                let Inst::Call { ret, save_regs, .. } = call else {
                    return Err(InterpError::Trap(format!(
                        "PostCall resume does not point at a Call: {call:?}"
                    )));
                };
                // The callee frame sat directly below ours; recompute its base
                // from the static save/arg lists, mirroring the call-time
                // layout.
                let nsave = save_regs.len() as u64;
                let Inst::Call { args, .. } = call else {
                    unreachable!()
                };
                let nargs = args.len() as u64;
                let size = frame::size_words(nsave, nargs) * 8;
                let cal_base = resume.sp - size;
                for (i, r) in save_regs.iter().enumerate() {
                    frame.regs[r.index()] = mem.load(cal_base + (frame::SAVES + i as u64) * 8);
                }
                if let Some(r) = ret {
                    frame.regs[r.index()] = mem.load(cal_base + frame::RETVAL * 8);
                }
                frame.idx += 1;
            }
        }
        interp.locate_frame(&mut frame)?;
        interp.frames.push(frame);
        Ok(interp)
    }

    /// Fill in a reconstructed frame's decoded `pc`/`limit` from its
    /// `(func, block, idx)` position. An `idx` beyond the block end clamps to
    /// `limit`, so the next step reports the same "fell off block" trap the
    /// tree-walking interpreter raised.
    fn locate_frame(&self, frame: &mut Frame) -> Result<(), InterpError> {
        let f = self.module.function(frame.func);
        if frame.block.index() >= f.blocks.len() {
            return Err(InterpError::Trap(format!(
                "bad block {} in resumed frame of {}",
                frame.block, f.name
            )));
        }
        let (start, end) = self.dec.block_range(frame.func, frame.block);
        frame.pc = (start as u64 + frame.idx as u64).min(end as u64) as u32;
        frame.limit = end;
        Ok(())
    }

    /// Write register `r` of the innermost frame (used by the recovery runtime
    /// while executing a recovery slice).
    ///
    /// # Panics
    /// Panics if halted or `r` out of range.
    pub fn set_reg(&mut self, r: Reg, v: Word) {
        self.frames.last_mut().expect("no frame").regs[r.index()] = v;
    }

    /// Read register `r` of the innermost frame.
    ///
    /// # Panics
    /// Panics if halted or `r` out of range.
    pub fn reg(&self, r: Reg) -> Word {
        self.frames.last().expect("no frame").regs[r.index()]
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The entry function's return value, once halted via `Ret`.
    pub fn return_value(&self) -> Option<Word> {
        self.return_value
    }

    /// Dynamic instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executed-instruction counts per opcode, indexed like
    /// [`crate::decoded::OPCODE_NAMES`].
    pub fn op_counts(&self) -> &[u64; OPCODE_COUNT] {
        &self.op_counts
    }

    /// Current call depth (1 = inside the entry function).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The core this interpreter runs on.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The current execution position as a [`ResumePoint`] (with
    /// [`ResumeKind::Normal`] semantics). Used by the simulator to advance
    /// the recovery point past committed synchronization instructions.
    pub fn position(&self) -> Option<ResumePoint> {
        let f = self.frames.last()?;
        Some(ResumePoint {
            func: f.func,
            block: f.block,
            idx: f.idx,
            frame_base: f.frame_base,
            sp: f.sp,
            kind: ResumeKind::Normal,
        })
    }

    /// The resume point for the current position (used when a dynamic region
    /// begins at an explicit boundary).
    fn here(&self, kind: ResumeKind) -> ResumePoint {
        let f = self.frames.last().expect("no frame");
        ResumePoint {
            func: f.func,
            block: f.block,
            idx: f.idx,
            frame_base: f.frame_base,
            sp: f.sp,
            kind,
        }
    }

    #[inline]
    fn eval(&self, op: Operand) -> Word {
        match op {
            Operand::Reg(r) => self.frames.last().expect("no frame").regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    #[inline]
    fn addr_of(&self, a: DecAddr) -> Result<Word, InterpError> {
        let addr = match a {
            DecAddr::Abs(w) => w,
            DecAddr::Reg { base, offset } => {
                let v = self.frames.last().expect("no frame").regs[base.index()];
                self.dec.resolve_addr(v).wrapping_add(offset as Word)
            }
        };
        if !addr.is_multiple_of(8) {
            return Err(InterpError::Trap(format!("unaligned access at {addr:#x}")));
        }
        Ok(addr)
    }

    #[inline]
    fn set(&mut self, r: Reg, v: Word) {
        self.frames.last_mut().expect("no frame").regs[r.index()] = v;
    }

    /// Redirect the innermost frame to the start of `target`.
    #[inline]
    fn branch(&mut self, target: BlockId) {
        let func = self.frames.last().expect("no frame").func;
        let (start, end) = self.dec.block_range(func, target);
        let fr = self.frames.last_mut().expect("no frame");
        fr.block = target;
        fr.idx = 0;
        fr.pc = start;
        fr.limit = end;
    }

    /// Flat decoded index of the next instruction, if any.
    pub fn pc(&self) -> Option<u32> {
        self.frames.last().map(|f| f.pc)
    }

    /// Opcode index (see [`crate::decoded::OPCODE_NAMES`]) of the next
    /// instruction, or `None` when halted or at a block end (where the next
    /// step traps).
    pub fn next_opcode(&self) -> Option<usize> {
        if self.halted {
            return None;
        }
        let f = self.frames.last()?;
        if f.pc >= f.limit {
            return None;
        }
        Some(self.dec.op(f.pc).opcode())
    }

    /// Index of the superblock (see [`crate::decoded::SuperOp`]) holding the
    /// next instruction — the profiler's attribution granule under fusion.
    pub fn current_super_op(&self) -> Option<u32> {
        if self.halted {
            return None;
        }
        let f = self.frames.last()?;
        if f.pc >= f.limit {
            return None;
        }
        Some(self.dec.super_op_of(f.pc))
    }

    /// Execute up to `max` register-only micro-ops (`Binary`, `Mov`, `Br`,
    /// `CondBr`) as one fused burst, stopping early at any op that touches
    /// memory, I/O, regions, or frames.
    ///
    /// A burst is architecturally identical to the same number of individual
    /// [`Interp::step_into`] calls: every op it accepts produces an empty ALU
    /// effect (no memory access, no boundary, no output, never halts), so
    /// only the per-step dispatch overhead is elided. `steps` and the
    /// per-opcode counters advance exactly as under single-stepping.
    ///
    /// Returns the number of ops executed — 0 when the next op is not
    /// fusible, the block limit was reached, or the program is halted; the
    /// caller falls back to `step_into`, which also surfaces any pending
    /// trap.
    pub fn step_run(&mut self, max: u32) -> u32 {
        if self.halted || self.frames.is_empty() {
            return 0;
        }
        let mut n = 0u32;
        let mut counts = [0u64; 6]; // binary, mov, _, _, br, cond_br
        let frame = self.frames.last_mut().expect("no frame");
        while n < max && frame.pc < frame.limit {
            match self.dec.op(frame.pc) {
                DecodedInst::Binary { op, dst, lhs, rhs } => {
                    let a = match lhs {
                        Operand::Reg(r) => frame.regs[r.index()],
                        Operand::Imm(v) => v,
                    };
                    let b = match rhs {
                        Operand::Reg(r) => frame.regs[r.index()],
                        Operand::Imm(v) => v,
                    };
                    frame.regs[dst.index()] = op.eval(a, b);
                    frame.idx += 1;
                    frame.pc += 1;
                    counts[0] += 1;
                }
                DecodedInst::Mov { dst, src } => {
                    let v = match src {
                        Operand::Reg(r) => frame.regs[r.index()],
                        Operand::Imm(v) => v,
                    };
                    frame.regs[dst.index()] = v;
                    frame.idx += 1;
                    frame.pc += 1;
                    counts[1] += 1;
                }
                DecodedInst::Br { target } => {
                    let (start, end) = self.dec.block_range(frame.func, target);
                    frame.block = target;
                    frame.idx = 0;
                    frame.pc = start;
                    frame.limit = end;
                    counts[4] += 1;
                }
                DecodedInst::CondBr {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let t = match cond {
                        Operand::Reg(r) => frame.regs[r.index()],
                        Operand::Imm(v) => v,
                    } != 0;
                    let target = if t { if_true } else { if_false };
                    let (start, end) = self.dec.block_range(frame.func, target);
                    frame.block = target;
                    frame.idx = 0;
                    frame.pc = start;
                    frame.limit = end;
                    counts[5] += 1;
                }
                _ => break,
            }
            n += 1;
        }
        self.steps += n as u64;
        for (slot, &c) in self.op_counts.iter_mut().zip(&counts) {
            *slot += c;
        }
        n
    }

    /// Fused oracle burst: execute up to `max` micro-ops of any kind that
    /// needs no per-step effect record — register ops via [`Interp::step_run`]
    /// plus loads, stores, checkpoints, atomics, fences, and boundaries
    /// applied to `mem` directly, with output words pushed onto `out` —
    /// stopping before calls, returns, and halts. This is the single-dispatch
    /// path for [`crate::decoded::SuperOpKind::LoadOpStore`] triples: the
    /// load, ALU op, and store execute back-to-back with no effect buffer in
    /// between.
    ///
    /// Identical to the same sequence of `step_into` calls in architectural
    /// state, `steps`, per-opcode counts, emitted output, and trap behavior.
    /// Returns the number of ops executed.
    ///
    /// # Errors
    /// Traps exactly where single-stepping would (unaligned access).
    pub fn step_simple_run(
        &mut self,
        mem: &mut Memory,
        max: u64,
        out: &mut Vec<Word>,
    ) -> Result<u64, InterpError> {
        let mut n = 0u64;
        while n < max {
            let chunk = (max - n).min(u32::MAX as u64) as u32;
            n += self.step_run(chunk) as u64;
            if n >= max || self.halted {
                break;
            }
            let frame = self.frames.last().expect("no frame");
            if frame.pc >= frame.limit {
                break; // let step_into raise the fell-off-block trap
            }
            // One non-ALU op, when it needs no effect record. Counters are
            // bumped before address checks, mirroring step_into's trap order.
            match self.dec.op(frame.pc) {
                DecodedInst::Load { dst, addr } => {
                    self.steps += 1;
                    self.op_counts[2] += 1;
                    let a = self.addr_of(addr)?;
                    let v = mem.load(a);
                    self.set(dst, v);
                    self.bump();
                }
                DecodedInst::Store { src, addr } => {
                    self.steps += 1;
                    self.op_counts[3] += 1;
                    let a = self.addr_of(addr)?;
                    let v = self.eval(src);
                    mem.store(a, v);
                    self.bump();
                }
                DecodedInst::AtomicRmw {
                    op,
                    dst,
                    addr,
                    src,
                    expected,
                } => {
                    self.steps += 1;
                    self.op_counts[8] += 1;
                    let a = self.addr_of(addr)?;
                    let old = mem.load(a);
                    let s = self.eval(src);
                    let e = self.eval(expected);
                    let new = match op {
                        AtomicOp::FetchAdd => Some(old.wrapping_add(s)),
                        AtomicOp::Swap => Some(s),
                        AtomicOp::Cas => (old == e).then_some(s),
                    };
                    if let Some(nv) = new {
                        mem.store(a, nv);
                    }
                    self.set(dst, old);
                    self.bump();
                }
                DecodedInst::Fence => {
                    self.steps += 1;
                    self.op_counts[9] += 1;
                    self.bump();
                }
                DecodedInst::Boundary { .. } => {
                    self.steps += 1;
                    self.op_counts[10] += 1;
                    self.bump();
                }
                DecodedInst::Ckpt { reg } => {
                    self.steps += 1;
                    self.op_counts[11] += 1;
                    let a = layout::ckpt_slot_addr(self.core, reg);
                    let v = self.reg(reg);
                    mem.store(a, v);
                    self.bump();
                }
                DecodedInst::Out { val } => {
                    self.steps += 1;
                    self.op_counts[12] += 1;
                    out.push(self.eval(val));
                    self.bump();
                }
                DecodedInst::FlushLine { addr } => {
                    self.steps += 1;
                    self.op_counts[14] += 1;
                    let _ = self.addr_of(addr)?;
                    self.bump();
                }
                DecodedInst::PFence => {
                    self.steps += 1;
                    self.op_counts[15] += 1;
                    self.bump();
                }
                _ => break, // Call / Ret / Halt take the full step path
            }
            n += 1;
        }
        Ok(n)
    }

    /// Advance the innermost frame past a non-branching instruction.
    #[inline]
    fn bump(&mut self) {
        let fr = self.frames.last_mut().expect("no frame");
        fr.idx += 1;
        fr.pc += 1;
    }

    /// Execute one instruction, returning a freshly allocated effect.
    ///
    /// Convenience wrapper over [`Interp::step_into`]; stepping loops should
    /// prefer `step_into` with a reused buffer.
    ///
    /// # Errors
    /// Traps on unaligned accesses, malformed control flow, or stepping a
    /// halted program.
    pub fn step(&mut self, mem: &mut Memory) -> Result<StepEffect, InterpError> {
        let mut eff = StepEffect::default();
        self.step_into(mem, &mut eff)?;
        Ok(eff)
    }

    /// Execute one instruction, writing its observable effect into `eff`
    /// (cleared first; its buffers keep their capacity, so a reused effect
    /// makes the steady-state step path allocation-free).
    ///
    /// # Errors
    /// Traps on unaligned accesses, malformed control flow, or stepping a
    /// halted program.
    pub fn step_into(&mut self, mem: &mut Memory, eff: &mut StepEffect) -> Result<(), InterpError> {
        eff.kind = EffectKind::Alu;
        eff.reads.clear();
        eff.writes.clear();
        eff.boundary = None;
        eff.out = None;
        if self.halted {
            return Err(InterpError::Trap("step after halt".into()));
        }
        let frame = self.frames.last().expect("no frame");
        if frame.pc >= frame.limit {
            return Err(InterpError::Trap(format!(
                "fell off block {} in {}",
                frame.block,
                self.module.function(frame.func).name
            )));
        }
        let inst = self.dec.op(frame.pc);
        self.steps += 1;
        self.op_counts[inst.opcode()] += 1;

        let mut advanced = false;
        match inst {
            DecodedInst::Binary { op, dst, lhs, rhs } => {
                let v = op.eval(self.eval(lhs), self.eval(rhs));
                self.set(dst, v);
            }
            DecodedInst::Mov { dst, src } => {
                let v = self.eval(src);
                self.set(dst, v);
            }
            DecodedInst::Load { dst, addr } => {
                eff.kind = EffectKind::Load;
                let a = self.addr_of(addr)?;
                let v = mem.load(a);
                eff.reads.push(a);
                self.set(dst, v);
            }
            DecodedInst::Store { src, addr } => {
                eff.kind = EffectKind::Store;
                let a = self.addr_of(addr)?;
                let v = self.eval(src);
                mem.store(a, v);
                eff.writes.push((a, v));
            }
            DecodedInst::Br { target } => {
                self.branch(target);
                advanced = true;
            }
            DecodedInst::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                let t = self.eval(cond) != 0;
                self.branch(if t { if_true } else { if_false });
                advanced = true;
            }
            DecodedInst::Call {
                func: callee,
                args,
                ret: _,
                saves,
            } => {
                eff.kind = EffectKind::Call;
                self.exec_call(mem, eff, callee, args, saves)?;
                advanced = true;
                eff.boundary = Some(BoundaryInfo {
                    static_region: None,
                    resume: self.here(ResumeKind::FuncEntry),
                });
            }
            DecodedInst::Ret { val } => {
                eff.kind = EffectKind::Ret;
                let v = val.map(|v| self.eval(v)).unwrap_or(0);
                let callee = self.frames.pop().expect("no frame");
                if self.frames.is_empty() {
                    self.halted = true;
                    self.return_value = Some(v);
                    self.free_regs.push(callee.regs);
                    eff.kind = EffectKind::Halt;
                    return Ok(());
                }
                // Store the return value into the callee's frame record so a
                // post-call crash can recover it.
                let rv_addr = callee.frame_base + frame::RETVAL * 8;
                mem.store(rv_addr, v);
                eff.writes.push((rv_addr, v));
                // Restore phase: reload save_regs from memory (ensures
                // recovered and normal execution behave identically), then the
                // return value register.
                let caller_pc = self.frames.last().expect("no frame").pc;
                let DecodedInst::Call { ret, saves, .. } = self.dec.op(caller_pc) else {
                    return Err(InterpError::Trap("return to a non-call site".into()));
                };
                for i in 0..saves.len as usize {
                    let r = self.dec.saves(saves)[i];
                    let a = callee.frame_base + (frame::SAVES + i as u64) * 8;
                    let sv = mem.load(a);
                    eff.reads.push(a);
                    self.set(r, sv);
                }
                if let Some(r) = ret {
                    eff.reads.push(rv_addr);
                    self.set(r, v);
                }
                self.free_regs.push(callee.regs);
                let fr = self.frames.last_mut().expect("no frame");
                fr.idx += 1; // step past the Call
                fr.pc += 1;
                advanced = true;
                // The post-call region begins here; its resume point records
                // the Call instruction's position.
                let mut rp = self.here(ResumeKind::PostCall);
                rp.idx -= 1;
                eff.boundary = Some(BoundaryInfo {
                    static_region: None,
                    resume: rp,
                });
            }
            DecodedInst::AtomicRmw {
                op,
                dst,
                addr,
                src,
                expected,
            } => {
                eff.kind = EffectKind::Atomic;
                let a = self.addr_of(addr)?;
                let old = mem.load(a);
                eff.reads.push(a);
                let s = self.eval(src);
                let e = self.eval(expected);
                let new = match op {
                    AtomicOp::FetchAdd => Some(old.wrapping_add(s)),
                    AtomicOp::Swap => Some(s),
                    AtomicOp::Cas => (old == e).then_some(s),
                };
                if let Some(n) = new {
                    mem.store(a, n);
                    eff.writes.push((a, n));
                }
                self.set(dst, old);
            }
            DecodedInst::Fence => {
                eff.kind = EffectKind::Fence;
            }
            DecodedInst::Boundary { id } => {
                eff.kind = EffectKind::Boundary;
                let fr = self.frames.last_mut().expect("no frame");
                fr.idx += 1;
                fr.pc += 1;
                advanced = true;
                eff.boundary = Some(BoundaryInfo {
                    static_region: Some(id),
                    resume: self.here(ResumeKind::Normal),
                });
            }
            DecodedInst::Ckpt { reg } => {
                eff.kind = EffectKind::Ckpt;
                let a = layout::ckpt_slot_addr(self.core, reg);
                let v = self.reg(reg);
                mem.store(a, v);
                eff.writes.push((a, v));
            }
            DecodedInst::Out { val } => {
                eff.kind = EffectKind::Out;
                eff.out = Some(self.eval(val));
            }
            DecodedInst::FlushLine { addr } => {
                eff.kind = EffectKind::Flush;
                let a = self.addr_of(addr)?;
                eff.reads.push(a);
            }
            DecodedInst::PFence => {
                eff.kind = EffectKind::PFence;
            }
            DecodedInst::Halt => {
                eff.kind = EffectKind::Halt;
                self.halted = true;
                return Ok(());
            }
        }
        if !advanced {
            let fr = self.frames.last_mut().expect("no frame");
            fr.idx += 1;
            fr.pc += 1;
        }
        Ok(())
    }

    /// The spill-and-enter half of a `Call` (the boundary is attached by the
    /// caller, after the new frame exists).
    fn exec_call(
        &mut self,
        mem: &mut Memory,
        eff: &mut StepEffect,
        callee: FuncId,
        args: PoolRange,
        saves: PoolRange,
    ) -> Result<(), InterpError> {
        if callee.index() >= self.dec.func_count() {
            return Err(InterpError::Trap(format!("call to unknown {callee}")));
        }
        if self.frames.len() >= 4096 {
            return Err(InterpError::Trap("call stack overflow".into()));
        }
        let meta = self.dec.func(callee);
        let mut arg_vals = std::mem::take(&mut self.arg_scratch);
        arg_vals.clear();
        for &a in self.dec.args(args) {
            arg_vals.push(self.eval(a));
        }
        if arg_vals.len() < meta.param_count as usize {
            let msg = format!(
                "call to {} with {} args, needs {}",
                self.module.function(callee).name,
                arg_vals.len(),
                meta.param_count
            );
            self.arg_scratch = arg_vals;
            return Err(InterpError::Trap(msg));
        }
        let fr = self.frames.last().expect("no frame");
        let (cur_func, cur_block, cur_idx, cur_base, cur_sp) =
            (fr.func, fr.block, fr.idx, fr.frame_base, fr.sp);
        let nsave = saves.len as u64;
        let nargs = arg_vals.len() as u64;
        let size = frame::size_words(nsave, nargs) * 8;
        let base = cur_sp - size;
        // Spill phase: frame record + saves + args, all real stores.
        let w = |mem: &mut Memory, eff: &mut StepEffect, off: u64, v: Word| {
            mem.store(base + off * 8, v);
            eff.writes.push((base + off * 8, v));
        };
        w(mem, eff, frame::PREV_BASE, cur_base);
        w(mem, eff, frame::CALLER_FUNC, cur_func.0 as Word);
        w(mem, eff, frame::CALLER_BLOCK, cur_block.0 as Word);
        w(mem, eff, frame::CALLER_IDX, cur_idx as Word);
        w(mem, eff, frame::CALLER_SP, cur_sp);
        w(mem, eff, frame::NSAVE, nsave);
        w(mem, eff, frame::NARGS, nargs);
        {
            let fr = self.frames.last().expect("no frame");
            for (i, r) in self.dec.saves(saves).iter().enumerate() {
                w(mem, eff, frame::SAVES + i as u64, fr.regs[r.index()]);
            }
        }
        for (i, &v) in arg_vals.iter().enumerate() {
            w(mem, eff, frame::SAVES + nsave + i as u64, v);
        }
        // Enter the callee; parameters arrive in registers (the memory
        // copy above exists for recovery).
        let mut regs = self.free_regs.pop().unwrap_or_default();
        regs.clear();
        regs.resize(meta.reg_count as usize, 0);
        for (i, &v) in arg_vals.iter().enumerate().take(meta.param_count as usize) {
            regs[i] = v;
        }
        self.arg_scratch = arg_vals;
        let (pc, limit) = self.dec.block_range(callee, BlockId(0));
        self.frames.push(Frame {
            func: callee,
            block: BlockId(0),
            idx: 0,
            pc,
            limit,
            regs,
            frame_base: base,
            sp: base,
        });
        Ok(())
    }
}

/// Run `module` to completion as the failure-free oracle.
///
/// # Errors
/// Propagates traps; returns [`InterpError::StepLimit`] if the program does
/// not halt within `max_steps`.
///
/// # Example
/// ```
/// # use cwsp_ir::prelude::*;
/// let mut m = Module::new("m");
/// let mut b = FunctionBuilder::new("main", 0);
/// let e = b.entry();
/// b.push(e, Inst::Out { val: Operand::imm(7) });
/// b.push(e, Inst::Halt);
/// let f = m.add_function(b.build());
/// m.set_entry(f);
/// let out = cwsp_ir::interp::run(&m, 100)?;
/// assert_eq!(out.output, vec![7]);
/// # Ok::<(), cwsp_ir::interp::InterpError>(())
/// ```
pub fn run(module: &Module, max_steps: u64) -> Result<Outcome, InterpError> {
    let mut mem = Memory::new();
    let mut interp = Interp::new(module, 0, &mut mem)?;
    let mut output = Vec::new();
    let mut eff = StepEffect::default();
    let fused = crate::decoded::fuse_enabled();
    while !interp.is_halted() {
        if interp.steps() >= max_steps {
            return Err(InterpError::StepLimit(max_steps));
        }
        if fused {
            let left = max_steps - interp.steps();
            if interp.step_simple_run(&mut mem, left, &mut output)? > 0 {
                continue;
            }
        }
        interp.step_into(&mut mem, &mut eff)?;
        if let Some(v) = eff.out {
            output.push(v);
        }
    }
    Ok(Outcome {
        return_value: interp.return_value(),
        steps: interp.steps(),
        memory: mem,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_counted_loop, FunctionBuilder};
    use crate::inst::{BinOp, MemRef};
    use crate::module::Module;

    fn module_with_main(build: impl FnOnce(&mut Module, &mut FunctionBuilder)) -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        build(&mut m, &mut b);
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }

    #[test]
    fn arithmetic_and_memory() {
        let m = module_with_main(|m, b| {
            let g = m.add_global("g", 2);
            let e = b.entry();
            let x = b.mov(e, Operand::imm(10));
            let y = b.bin(e, BinOp::Mul, x.into(), Operand::imm(3));
            b.store(e, y.into(), MemRef::global(g, 1));
            let z = b.load(e, MemRef::global(g, 1));
            b.push(e, Inst::Out { val: z.into() });
            b.push(
                e,
                Inst::Ret {
                    val: Some(z.into()),
                },
            );
        });
        let out = run(&m, 100).unwrap();
        assert_eq!(out.return_value, Some(30));
        assert_eq!(out.output, vec![30]);
    }

    #[test]
    fn loop_sums() {
        let m = module_with_main(|m, b| {
            let g = m.add_global("sum", 1);
            let e = b.entry();
            let (_, exit) = build_counted_loop(b, e, Operand::imm(100), |b, bb, i| {
                let old = b.load(bb, MemRef::global(g, 0));
                let new = b.bin(bb, BinOp::Add, old.into(), i.into());
                b.store(bb, new.into(), MemRef::global(g, 0));
            });
            let s = b.load(exit, MemRef::global(g, 0));
            b.push(
                exit,
                Inst::Ret {
                    val: Some(s.into()),
                },
            );
        });
        assert_eq!(run(&m, 10_000).unwrap().return_value, Some(4950));
    }

    #[test]
    fn global_initializers_applied() {
        let m = module_with_main(|m, b| {
            let g = m.add_global_init("g", 3, vec![5, 6, 7]);
            let e = b.entry();
            let a = b.load(e, MemRef::global(g, 2));
            b.push(
                e,
                Inst::Ret {
                    val: Some(a.into()),
                },
            );
        });
        assert_eq!(run(&m, 100).unwrap().return_value, Some(7));
    }

    #[test]
    fn calls_pass_args_and_return() {
        let mut m = Module::new("t");
        // fn double(x) = x + x
        let mut fb = FunctionBuilder::new("double", 1);
        let e = fb.entry();
        let x = fb.param(0);
        let r = fb.bin(e, BinOp::Add, x.into(), x.into());
        fb.push(
            e,
            Inst::Ret {
                val: Some(r.into()),
            },
        );
        let double = m.add_function(fb.build());

        let mut mb = FunctionBuilder::new("main", 0);
        let e = mb.entry();
        let live = mb.mov(e, Operand::imm(99));
        let mut call = Inst::Call {
            func: double,
            args: vec![Operand::imm(21)],
            ret: Some(mb.vreg()),
            save_regs: vec![live],
        };
        let ret_reg = match &call {
            Inst::Call { ret: Some(r), .. } => *r,
            _ => unreachable!(),
        };
        if let Inst::Call { ret, .. } = &mut call {
            *ret = Some(ret_reg);
        }
        mb.push(e, call);
        let total = mb.bin(e, BinOp::Add, ret_reg.into(), live.into());
        mb.push(
            e,
            Inst::Ret {
                val: Some(total.into()),
            },
        );
        let main = m.add_function(mb.build());
        m.set_entry(main);

        let out = run(&m, 1000).unwrap();
        assert_eq!(
            out.return_value,
            Some(42 + 99),
            "saved reg survives the call"
        );
    }

    #[test]
    fn recursion_fib() {
        let mut m = Module::new("t");
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let mut fb = FunctionBuilder::new("fib", 1);
        let e = fb.entry();
        let base = fb.block();
        let rec = fb.block();
        let n = fb.param(0);
        let c = fb.bin(e, BinOp::CmpLtU, n.into(), Operand::imm(2));
        fb.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: base,
                if_false: rec,
            },
        );
        fb.push(
            base,
            Inst::Ret {
                val: Some(n.into()),
            },
        );
        let n1 = fb.bin(rec, BinOp::Sub, n.into(), Operand::imm(1));
        let n2 = fb.bin(rec, BinOp::Sub, n.into(), Operand::imm(2));
        let r1 = fb.vreg();
        // n2 is live across the first call; r1 across the second.
        fb.push(
            rec,
            Inst::Call {
                func: FuncId(0),
                args: vec![n1.into()],
                ret: Some(r1),
                save_regs: vec![n2],
            },
        );
        let r2 = fb.vreg();
        fb.push(
            rec,
            Inst::Call {
                func: FuncId(0),
                args: vec![n2.into()],
                ret: Some(r2),
                save_regs: vec![r1],
            },
        );
        let s = fb.bin(rec, BinOp::Add, r1.into(), r2.into());
        fb.push(
            rec,
            Inst::Ret {
                val: Some(s.into()),
            },
        );
        let fib = m.add_function(fb.build());
        assert_eq!(fib, FuncId(0));

        let mut mb = FunctionBuilder::new("main", 0);
        let e = mb.entry();
        let r = mb.vreg();
        mb.push(
            e,
            Inst::Call {
                func: fib,
                args: vec![Operand::imm(10)],
                ret: Some(r),
                save_regs: vec![],
            },
        );
        mb.push(
            e,
            Inst::Ret {
                val: Some(r.into()),
            },
        );
        let main = m.add_function(mb.build());
        m.set_entry(main);

        assert_eq!(run(&m, 100_000).unwrap().return_value, Some(55));
    }

    #[test]
    fn atomics_fetch_add_swap_cas() {
        let m = module_with_main(|m, b| {
            let g = m.add_global("g", 1);
            let e = b.entry();
            let a = MemRef::global(g, 0);
            let old1 = b.vreg();
            b.push(
                e,
                Inst::AtomicRmw {
                    op: AtomicOp::FetchAdd,
                    dst: old1,
                    addr: a,
                    src: Operand::imm(5),
                    expected: Operand::imm(0),
                },
            );
            let old2 = b.vreg();
            b.push(
                e,
                Inst::AtomicRmw {
                    op: AtomicOp::Cas,
                    dst: old2,
                    addr: a,
                    src: Operand::imm(100),
                    expected: Operand::imm(5),
                },
            );
            let old3 = b.vreg();
            b.push(
                e,
                Inst::AtomicRmw {
                    op: AtomicOp::Cas,
                    dst: old3,
                    addr: a,
                    src: Operand::imm(999),
                    expected: Operand::imm(5),
                },
            );
            let old4 = b.vreg();
            b.push(
                e,
                Inst::AtomicRmw {
                    op: AtomicOp::Swap,
                    dst: old4,
                    addr: a,
                    src: Operand::imm(1),
                    expected: Operand::imm(0),
                },
            );
            // old1=0, old2=5 (cas hits), old3=100 (cas misses), old4=100
            let s1 = b.bin(e, BinOp::Add, old1.into(), old2.into());
            let s2 = b.bin(e, BinOp::Add, s1.into(), old3.into());
            let s3 = b.bin(e, BinOp::Add, s2.into(), old4.into());
            b.push(
                e,
                Inst::Ret {
                    val: Some(s3.into()),
                },
            );
        });
        assert_eq!(run(&m, 100).unwrap().return_value, Some(205));
    }

    #[test]
    fn boundary_reports_resume_point() {
        let m = module_with_main(|_, b| {
            let e = b.entry();
            b.push(e, Inst::Boundary { id: RegionId(3) });
            b.push(e, Inst::Halt);
        });
        let mut mem = Memory::new();
        let mut i = Interp::new(&m, 0, &mut mem).unwrap();
        let eff = i.step(&mut mem).unwrap();
        assert_eq!(eff.kind, EffectKind::Boundary);
        let b = eff.boundary.unwrap();
        assert_eq!(b.static_region, Some(RegionId(3)));
        assert_eq!(b.resume.idx, 1);
        assert_eq!(b.resume.kind, ResumeKind::Normal);
    }

    #[test]
    fn ckpt_writes_slot() {
        let m = module_with_main(|_, b| {
            let e = b.entry();
            let r = b.mov(e, Operand::imm(77));
            b.push(e, Inst::Ckpt { reg: r });
            b.push(e, Inst::Halt);
        });
        let mut mem = Memory::new();
        let mut i = Interp::new(&m, 2, &mut mem).unwrap();
        i.step(&mut mem).unwrap();
        let eff = i.step(&mut mem).unwrap();
        assert_eq!(eff.kind, EffectKind::Ckpt);
        let (addr, v) = eff.writes[0];
        assert_eq!(v, 77);
        assert_eq!(addr, layout::ckpt_slot_addr(2, Reg(0)));
        assert_eq!(mem.load(addr), 77);
    }

    #[test]
    fn resume_from_normal_boundary_replays_correctly() {
        // main: g0 = 11; boundary; g1 = g0 + r (r set before boundary, live-in)
        let mut m = Module::new("t");
        let g = m.add_global("g", 2);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(5));
        b.store(e, Operand::imm(11), MemRef::global(g, 0));
        b.push(e, Inst::Boundary { id: RegionId(0) });
        let x = b.load(e, MemRef::global(g, 0));
        let y = b.bin(e, BinOp::Add, x.into(), r.into());
        b.store(e, y.into(), MemRef::global(g, 1));
        b.push(
            e,
            Inst::Ret {
                val: Some(y.into()),
            },
        );
        let main = m.add_function(b.build());
        m.set_entry(main);

        // Oracle.
        let oracle = run(&m, 100).unwrap();
        assert_eq!(oracle.return_value, Some(16));

        // Execute until the boundary, capture the resume point, then "crash":
        // rebuild from memory alone and manually restore live-in r (the
        // recovery slice's job), and finish.
        let mut mem = Memory::new();
        let mut i = Interp::new(&m, 0, &mut mem).unwrap();
        let mut resume = None;
        for _ in 0..3 {
            let eff = i.step(&mut mem).unwrap();
            if let Some(bd) = eff.boundary {
                resume = Some(bd.resume);
            }
        }
        let resume = resume.expect("hit boundary");
        let mut r2 = Interp::resume(&m, 0, &mem, resume).unwrap();
        r2.set_reg(r, 5); // recovery slice restores the live-in
        while !r2.is_halted() {
            r2.step(&mut mem).unwrap();
        }
        assert_eq!(r2.return_value(), Some(16));
        assert_eq!(mem.load(m.global_addr(g) + 8), 16);
    }

    #[test]
    fn resume_from_post_call_boundary() {
        // main: live=9; r = id(33); out = r + live
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("id", 1);
        let fe = fb.entry();
        let p = fb.param(0);
        fb.push(
            fe,
            Inst::Ret {
                val: Some(p.into()),
            },
        );
        let id = m.add_function(fb.build());

        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let live = b.mov(e, Operand::imm(9));
        let r = b.vreg();
        b.push(
            e,
            Inst::Call {
                func: id,
                args: vec![Operand::imm(33)],
                ret: Some(r),
                save_regs: vec![live],
            },
        );
        let s = b.bin(e, BinOp::Add, r.into(), live.into());
        b.push(
            e,
            Inst::Ret {
                val: Some(s.into()),
            },
        );
        let main = m.add_function(b.build());
        m.set_entry(main);

        let mut mem = Memory::new();
        let mut i = Interp::new(&m, 0, &mut mem).unwrap();
        let mut post_call = None;
        while post_call.is_none() {
            let eff = i.step(&mut mem).unwrap();
            if let Some(bd) = eff.boundary {
                if bd.resume.kind == ResumeKind::PostCall {
                    post_call = Some(bd.resume);
                }
            }
        }
        let mut r2 = Interp::resume(&m, 0, &mem, post_call.unwrap()).unwrap();
        while !r2.is_halted() {
            r2.step(&mut mem).unwrap();
        }
        assert_eq!(r2.return_value(), Some(42));
    }

    #[test]
    fn resume_inside_callee_walks_frames() {
        // f(x): boundary; store x -> g; ret x     main: r=f(4); ret r+1
        let mut m = Module::new("t");
        let g = m.add_global("g", 1);
        let mut fb = FunctionBuilder::new("f", 1);
        let fe = fb.entry();
        fb.push(fe, Inst::Boundary { id: RegionId(0) });
        let p = fb.param(0);
        fb.store(fe, p.into(), MemRef::global(g, 0));
        fb.push(
            fe,
            Inst::Ret {
                val: Some(p.into()),
            },
        );
        let f = m.add_function(fb.build());

        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.vreg();
        b.push(
            e,
            Inst::Call {
                func: f,
                args: vec![Operand::imm(4)],
                ret: Some(r),
                save_regs: vec![],
            },
        );
        let s = b.bin(e, BinOp::Add, r.into(), Operand::imm(1));
        b.push(
            e,
            Inst::Ret {
                val: Some(s.into()),
            },
        );
        let main = m.add_function(b.build());
        m.set_entry(main);

        let mut mem = Memory::new();
        let mut i = Interp::new(&m, 0, &mut mem).unwrap();
        let mut inner = None;
        while inner.is_none() {
            let eff = i.step(&mut mem).unwrap();
            if let Some(bd) = eff.boundary {
                if bd.static_region == Some(RegionId(0)) {
                    inner = Some(bd.resume);
                }
            }
        }
        let resume = inner.unwrap();
        let mut r2 = Interp::resume(&m, 0, &mem, resume).unwrap();
        // p (live-in of the resumed region) is a parameter; restore it the way
        // the recovery slice would — from the frame's argument slot. Here we
        // emulate with set_reg.
        r2.set_reg(p, 4);
        while !r2.is_halted() {
            r2.step(&mut mem).unwrap();
        }
        assert_eq!(r2.return_value(), Some(5));
        assert_eq!(mem.load(m.global_addr(g)), 4);
    }

    #[test]
    fn func_entry_resume_reloads_params() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("f", 2);
        let fe = fb.entry();
        let s = fb.bin(fe, BinOp::Add, fb.param(0).into(), fb.param(1).into());
        fb.push(
            fe,
            Inst::Ret {
                val: Some(s.into()),
            },
        );
        let f = m.add_function(fb.build());
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.vreg();
        b.push(
            e,
            Inst::Call {
                func: f,
                args: vec![Operand::imm(30), Operand::imm(12)],
                ret: Some(r),
                save_regs: vec![],
            },
        );
        b.push(
            e,
            Inst::Ret {
                val: Some(r.into()),
            },
        );
        let main = m.add_function(b.build());
        m.set_entry(main);

        let mut mem = Memory::new();
        let mut i = Interp::new(&m, 0, &mut mem).unwrap();
        let eff = i.step(&mut mem).unwrap(); // the Call
        let bd = eff.boundary.unwrap();
        assert_eq!(bd.resume.kind, ResumeKind::FuncEntry);
        let mut r2 = Interp::resume(&m, 0, &mem, bd.resume).unwrap();
        while !r2.is_halted() {
            r2.step(&mut mem).unwrap();
        }
        assert_eq!(r2.return_value(), Some(42));
    }

    #[test]
    fn step_after_halt_traps() {
        let m = module_with_main(|_, b| {
            let e = b.entry();
            b.push(e, Inst::Halt);
        });
        let mut mem = Memory::new();
        let mut i = Interp::new(&m, 0, &mut mem).unwrap();
        i.step(&mut mem).unwrap();
        assert!(i.is_halted());
        assert!(matches!(i.step(&mut mem), Err(InterpError::Trap(_))));
    }

    #[test]
    fn step_limit_reported() {
        let m = module_with_main(|_, b| {
            let e = b.entry();
            let l = b.block();
            b.push(e, Inst::Br { target: l });
            b.push(l, Inst::Br { target: l });
        });
        assert!(matches!(run(&m, 50), Err(InterpError::StepLimit(50))));
    }

    #[test]
    fn unaligned_access_traps() {
        let m = module_with_main(|_, b| {
            let e = b.entry();
            let _ = b.load(e, MemRef::abs(3));
            b.push(e, Inst::Halt);
        });
        assert!(matches!(run(&m, 50), Err(InterpError::Trap(_))));
    }

    #[test]
    fn step_into_reuses_buffers_and_clears_state() {
        let m = module_with_main(|m, b| {
            let g = m.add_global("g", 1);
            let e = b.entry();
            b.store(e, Operand::imm(1), MemRef::global(g, 0));
            b.push(e, Inst::Boundary { id: RegionId(0) });
            let v = b.load(e, MemRef::global(g, 0));
            b.push(e, Inst::Out { val: v.into() });
            b.push(e, Inst::Halt);
        });
        let mut mem = Memory::new();
        let mut i = Interp::new(&m, 0, &mut mem).unwrap();
        let mut eff = StepEffect::default();
        i.step_into(&mut mem, &mut eff).unwrap(); // store
        assert_eq!(eff.writes.len(), 1);
        i.step_into(&mut mem, &mut eff).unwrap(); // boundary
        assert!(eff.writes.is_empty(), "buffer cleared between steps");
        assert!(eff.boundary.is_some());
        i.step_into(&mut mem, &mut eff).unwrap(); // load
        assert_eq!(eff.kind, EffectKind::Load);
        assert!(eff.boundary.is_none(), "boundary cleared between steps");
        i.step_into(&mut mem, &mut eff).unwrap(); // out
        assert_eq!(eff.out, Some(1));
        i.step_into(&mut mem, &mut eff).unwrap(); // halt
        assert_eq!(eff.out, None, "out cleared between steps");
        assert!(i.is_halted());
    }

    #[test]
    fn op_counts_track_instruction_mix() {
        use crate::decoded::OPCODE_NAMES;
        let m = module_with_main(|m, b| {
            let g = m.add_global("g", 1);
            let e = b.entry();
            let v = b.load(e, MemRef::global(g, 0));
            b.store(e, v.into(), MemRef::global(g, 0));
            b.push(e, Inst::Halt);
        });
        let mut mem = Memory::new();
        let mut i = Interp::new(&m, 0, &mut mem).unwrap();
        while !i.is_halted() {
            i.step(&mut mem).unwrap();
        }
        let counts = i.op_counts();
        let by_name = |n: &str| counts[OPCODE_NAMES.iter().position(|x| *x == n).unwrap()];
        assert_eq!(by_name("load"), 1);
        assert_eq!(by_name("store"), 1);
        assert_eq!(by_name("halt"), 1);
        assert_eq!(counts.iter().sum::<u64>(), i.steps());
    }
}
