//! The tree-walking reference interpreter (executable specification).
//!
//! This is the original `Interp` implementation, preserved verbatim when the
//! execution core moved to the pre-decoded micro-op stream in
//! [`crate::interp`]. It walks the `Module` tree directly — cloning each
//! [`Inst`] at fetch and collecting call arguments into fresh `Vec`s — which
//! makes it slow but obviously faithful to the instruction semantics
//! documented on [`Inst`].
//!
//! Its sole consumer is the differential test suite, which runs
//! [`RefInterp`] and [`crate::interp::Interp`] in lockstep and asserts that
//! every [`StepEffect`], trap message, resume point, and final memory is
//! identical. Production code (the simulator, the oracle [`crate::interp::run`])
//! always uses the decoded core.

use crate::function::{BlockId, InstIdx};
use crate::inst::{AtomicOp, Inst, MemRef, Operand};
use crate::interp::{
    frame, BoundaryInfo, EffectKind, InterpError, Outcome, ResumeKind, ResumePoint, StepEffect,
};
use crate::layout;
use crate::memory::Memory;
use crate::module::{FuncId, Module};
use crate::types::{Reg, Word};

/// One activation record (the volatile register file; the persistent twin
/// lives in stack memory).
#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    block: BlockId,
    idx: InstIdx,
    regs: Vec<Word>,
    frame_base: Word,
    sp: Word,
}

/// The tree-walking stepping interpreter (specification twin of
/// [`crate::interp::Interp`]).
pub struct RefInterp<'m> {
    module: &'m Module,
    frames: Vec<Frame>,
    core: usize,
    halted: bool,
    return_value: Option<Word>,
    steps: u64,
}
impl<'m> RefInterp<'m> {
    /// Create an interpreter for `module` on `core`, with global initializers
    /// applied to a fresh memory.
    ///
    /// # Errors
    /// [`InterpError::NoEntry`] if the module has no entry function.
    pub fn new(module: &'m Module, core: usize, mem: &mut Memory) -> Result<Self, InterpError> {
        for g in module.globals() {
            for (i, &v) in g.init.iter().enumerate() {
                mem.store(g.addr + i as Word * 8, v);
            }
        }
        Self::with_memory(module, core, mem)
    }

    /// Create an interpreter over an existing memory (global initializers are
    /// *not* re-applied — the memory is assumed to already hold the image).
    ///
    /// # Errors
    /// [`InterpError::NoEntry`] if the module has no entry function.
    pub fn with_memory(
        module: &'m Module,
        core: usize,
        mem: &mut Memory,
    ) -> Result<Self, InterpError> {
        Self::with_args(module, core, mem, &[])
    }

    /// Like [`RefInterp::with_memory`], but passes `args` to the entry function
    /// (e.g. a thread id for multicore workloads). Arguments beyond the entry
    /// function's parameter count are ignored; missing ones default to zero.
    ///
    /// # Errors
    /// [`InterpError::NoEntry`] if the module has no entry function.
    pub fn with_args(
        module: &'m Module,
        core: usize,
        mem: &mut Memory,
        args: &[Word],
    ) -> Result<Self, InterpError> {
        let entry = module.entry().ok_or(InterpError::NoEntry)?;
        let f = module.function(entry);
        let nargs = args.len().min(f.param_count as usize) as u64;
        let top = layout::stack_top(core);
        let size = frame::size_words(0, nargs) * 8;
        let base = top - size;
        let mut interp = RefInterp {
            module,
            frames: Vec::new(),
            core,
            halted: false,
            return_value: None,
            steps: 0,
        };
        // Entry frame record (so recovery inside `main` can walk the stack).
        mem.store(base + frame::PREV_BASE * 8, 0);
        mem.store(base + frame::CALLER_FUNC * 8, frame::NO_CALLER);
        mem.store(base + frame::NSAVE * 8, 0);
        mem.store(base + frame::NARGS * 8, nargs);
        let mut regs = vec![0; f.reg_count as usize];
        for (i, &a) in args.iter().enumerate().take(nargs as usize) {
            mem.store(base + (frame::SAVES + i as u64) * 8, a);
            regs[i] = a;
        }
        interp.frames.push(Frame {
            func: entry,
            block: f.entry(),
            idx: 0,
            regs,
            frame_base: base,
            sp: base,
        });
        Ok(interp)
    }

    /// Rebuild an interpreter from persistent memory after a power failure,
    /// positioned at `resume` — the entry of the oldest unpersisted region
    /// (§VII). Walks the frame records in `mem` to reconstruct the call stack
    /// and performs the [`ResumeKind`] builtin restore. For
    /// [`ResumeKind::Normal`] entries the caller must additionally execute the
    /// region's recovery slice to restore live-in registers before stepping.
    ///
    /// # Errors
    /// Traps if the frame chain in memory is malformed.
    pub fn resume(
        module: &'m Module,
        core: usize,
        mem: &Memory,
        resume: ResumePoint,
    ) -> Result<Self, InterpError> {
        let mut interp = RefInterp {
            module,
            frames: Vec::new(),
            core,
            halted: false,
            return_value: None,
            steps: 0,
        };
        // Walk frame records from innermost to outermost, then reverse.
        let mut chain = Vec::new();
        let mut base = resume.frame_base;
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 1_000_000 {
                return Err(InterpError::Trap("frame chain too deep or cyclic".into()));
            }
            let caller_func = mem.load(base + frame::CALLER_FUNC * 8);
            chain.push(base);
            if caller_func == frame::NO_CALLER {
                break;
            }
            base = mem.load(base + frame::PREV_BASE * 8);
        }
        chain.reverse();
        // Reconstruct outer frames paused at their Call instructions. Their
        // dead registers are zero; live-across-call registers are reloaded
        // from frame memory when the callee returns.
        for w in chain.windows(2) {
            let (outer_base, inner_base) = (w[0], w[1]);
            let func = FuncId(mem.load(inner_base + frame::CALLER_FUNC * 8) as u32);
            if func.index() >= module.function_count() {
                return Err(InterpError::Trap(format!(
                    "bad caller func in frame {inner_base:#x}"
                )));
            }
            let block = BlockId(mem.load(inner_base + frame::CALLER_BLOCK * 8) as u32);
            let idx = mem.load(inner_base + frame::CALLER_IDX * 8) as InstIdx;
            let sp = mem.load(inner_base + frame::CALLER_SP * 8);
            let reg_count = module.function(func).reg_count as usize;
            interp.frames.push(Frame {
                func,
                block,
                idx,
                regs: vec![0; reg_count],
                frame_base: outer_base,
                sp,
            });
        }
        // Innermost frame: the resumed region's frame.
        let func = module.function(resume.func);
        let mut frame = Frame {
            func: resume.func,
            block: resume.block,
            idx: resume.idx,
            regs: vec![0; func.reg_count as usize],
            frame_base: resume.frame_base,
            sp: resume.sp,
        };
        match resume.kind {
            ResumeKind::Normal => {}
            ResumeKind::FuncEntry => {
                // Reload parameters from the frame record.
                let nsave = mem.load(resume.frame_base + frame::NSAVE * 8);
                let nargs = mem.load(resume.frame_base + frame::NARGS * 8);
                for i in 0..nargs.min(func.param_count as u64) {
                    let a = resume.frame_base + (frame::SAVES + nsave + i) * 8;
                    frame.regs[i as usize] = mem.load(a);
                }
            }
            ResumeKind::PostCall => {
                // Reload save_regs + return value, then step past the Call.
                let call = &module.function(resume.func).block(resume.block).insts[resume.idx];
                let Inst::Call { ret, save_regs, .. } = call else {
                    return Err(InterpError::Trap(format!(
                        "PostCall resume does not point at a Call: {call:?}"
                    )));
                };
                // The callee frame sat directly below ours; recompute its base
                // from the static save/arg lists, mirroring the call-time
                // layout.
                let nsave = save_regs.len() as u64;
                let Inst::Call { args, .. } = call else {
                    unreachable!()
                };
                let nargs = args.len() as u64;
                let size = frame::size_words(nsave, nargs) * 8;
                let cal_base = resume.sp - size;
                for (i, r) in save_regs.iter().enumerate() {
                    frame.regs[r.index()] = mem.load(cal_base + (frame::SAVES + i as u64) * 8);
                }
                if let Some(r) = ret {
                    frame.regs[r.index()] = mem.load(cal_base + frame::RETVAL * 8);
                }
                frame.idx += 1;
            }
        }
        interp.frames.push(frame);
        Ok(interp)
    }

    /// Write register `r` of the innermost frame (used by the recovery runtime
    /// while executing a recovery slice).
    ///
    /// # Panics
    /// Panics if halted or `r` out of range.
    pub fn set_reg(&mut self, r: Reg, v: Word) {
        self.frames.last_mut().expect("no frame").regs[r.index()] = v;
    }

    /// Read register `r` of the innermost frame.
    ///
    /// # Panics
    /// Panics if halted or `r` out of range.
    pub fn reg(&self, r: Reg) -> Word {
        self.frames.last().expect("no frame").regs[r.index()]
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The entry function's return value, once halted via `Ret`.
    pub fn return_value(&self) -> Option<Word> {
        self.return_value
    }

    /// Dynamic instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current call depth (1 = inside the entry function).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The core this interpreter runs on.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The current execution position as a [`ResumePoint`] (with
    /// [`ResumeKind::Normal`] semantics). Used by the simulator to advance
    /// the recovery point past committed synchronization instructions.
    pub fn position(&self) -> Option<ResumePoint> {
        let f = self.frames.last()?;
        Some(ResumePoint {
            func: f.func,
            block: f.block,
            idx: f.idx,
            frame_base: f.frame_base,
            sp: f.sp,
            kind: ResumeKind::Normal,
        })
    }

    /// The resume point for the current position (used when a dynamic region
    /// begins at an explicit boundary).
    fn here(&self, kind: ResumeKind) -> ResumePoint {
        let f = self.frames.last().expect("no frame");
        ResumePoint {
            func: f.func,
            block: f.block,
            idx: f.idx,
            frame_base: f.frame_base,
            sp: f.sp,
            kind,
        }
    }

    fn eval(&self, op: Operand) -> Word {
        match op {
            Operand::Reg(r) => self.frames.last().expect("no frame").regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    fn addr_of(&self, m: &MemRef) -> Result<Word, InterpError> {
        let base = self.module.resolve_addr(self.eval(m.base));
        let addr = base.wrapping_add(m.offset as Word);
        if !addr.is_multiple_of(8) {
            return Err(InterpError::Trap(format!("unaligned access at {addr:#x}")));
        }
        Ok(addr)
    }

    fn set(&mut self, r: Reg, v: Word) {
        self.frames.last_mut().expect("no frame").regs[r.index()] = v;
    }

    /// Execute one instruction.
    ///
    /// # Errors
    /// Traps on unaligned accesses, malformed control flow, or stepping a
    /// halted program.
    pub fn step(&mut self, mem: &mut Memory) -> Result<StepEffect, InterpError> {
        if self.halted {
            return Err(InterpError::Trap("step after halt".into()));
        }
        let frame = self.frames.last().expect("no frame");
        let func = self.module.function(frame.func);
        let block = func.block(frame.block);
        let Some(inst) = block.insts.get(frame.idx) else {
            return Err(InterpError::Trap(format!(
                "fell off block {} in {}",
                frame.block, func.name
            )));
        };
        let inst = inst.clone();
        self.steps += 1;

        let mut eff;
        let mut advanced = false;
        match &inst {
            Inst::Binary { op, dst, lhs, rhs } => {
                eff = StepEffect::new(EffectKind::Alu);
                let v = op.eval(self.eval(*lhs), self.eval(*rhs));
                self.set(*dst, v);
            }
            Inst::Mov { dst, src } => {
                eff = StepEffect::new(EffectKind::Alu);
                let v = self.eval(*src);
                self.set(*dst, v);
            }
            Inst::Load { dst, addr } => {
                eff = StepEffect::new(EffectKind::Load);
                let a = self.addr_of(addr)?;
                let v = mem.load(a);
                eff.reads.push(a);
                self.set(*dst, v);
            }
            Inst::Store { src, addr } => {
                eff = StepEffect::new(EffectKind::Store);
                let a = self.addr_of(addr)?;
                let v = self.eval(*src);
                mem.store(a, v);
                eff.writes.push((a, v));
            }
            Inst::Br { target } => {
                eff = StepEffect::new(EffectKind::Alu);
                let fr = self.frames.last_mut().expect("no frame");
                fr.block = *target;
                fr.idx = 0;
                advanced = true;
            }
            Inst::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                eff = StepEffect::new(EffectKind::Alu);
                let t = self.eval(*cond) != 0;
                let fr = self.frames.last_mut().expect("no frame");
                fr.block = if t { *if_true } else { *if_false };
                fr.idx = 0;
                advanced = true;
            }
            Inst::Call {
                func: callee,
                args,
                ret: _,
                save_regs,
            } => {
                eff = StepEffect::new(EffectKind::Call);
                if callee.index() >= self.module.function_count() {
                    return Err(InterpError::Trap(format!("call to unknown {callee}")));
                }
                if self.frames.len() >= 4096 {
                    return Err(InterpError::Trap("call stack overflow".into()));
                }
                let callee_fn = self.module.function(*callee);
                let arg_vals: Vec<Word> = args.iter().map(|a| self.eval(*a)).collect();
                if arg_vals.len() < callee_fn.param_count as usize {
                    return Err(InterpError::Trap(format!(
                        "call to {} with {} args, needs {}",
                        callee_fn.name,
                        arg_vals.len(),
                        callee_fn.param_count
                    )));
                }
                let fr = self.frames.last().expect("no frame");
                let (cur_func, cur_block, cur_idx, cur_base, cur_sp) =
                    (fr.func, fr.block, fr.idx, fr.frame_base, fr.sp);
                let nsave = save_regs.len() as u64;
                let nargs = arg_vals.len() as u64;
                let size = frame::size_words(nsave, nargs) * 8;
                let base = cur_sp - size;
                // Spill phase: frame record + saves + args, all real stores.
                let mut w = |mem: &mut Memory, off: u64, v: Word| {
                    mem.store(base + off * 8, v);
                    eff.writes.push((base + off * 8, v));
                };
                w(mem, frame::PREV_BASE, cur_base);
                w(mem, frame::CALLER_FUNC, cur_func.0 as Word);
                w(mem, frame::CALLER_BLOCK, cur_block.0 as Word);
                w(mem, frame::CALLER_IDX, cur_idx as Word);
                w(mem, frame::CALLER_SP, cur_sp);
                w(mem, frame::NSAVE, nsave);
                w(mem, frame::NARGS, nargs);
                let saves: Vec<Word> = {
                    let fr = self.frames.last().expect("no frame");
                    save_regs.iter().map(|r| fr.regs[r.index()]).collect()
                };
                for (i, v) in saves.iter().enumerate() {
                    w(mem, frame::SAVES + i as u64, *v);
                }
                for (i, v) in arg_vals.iter().enumerate() {
                    w(mem, frame::SAVES + nsave + i as u64, *v);
                }
                // Enter the callee; parameters arrive in registers (the memory
                // copy above exists for recovery).
                let mut regs = vec![0; callee_fn.reg_count as usize];
                for (i, v) in arg_vals
                    .iter()
                    .enumerate()
                    .take(callee_fn.param_count as usize)
                {
                    regs[i] = *v;
                }
                self.frames.push(Frame {
                    func: *callee,
                    block: callee_fn.entry(),
                    idx: 0,
                    regs,
                    frame_base: base,
                    sp: base,
                });
                advanced = true;
                eff.boundary = Some(BoundaryInfo {
                    static_region: None,
                    resume: self.here(ResumeKind::FuncEntry),
                });
            }
            Inst::Ret { val } => {
                eff = StepEffect::new(EffectKind::Ret);
                let v = val.map(|v| self.eval(v)).unwrap_or(0);
                let callee = self.frames.pop().expect("no frame");
                if self.frames.is_empty() {
                    self.halted = true;
                    self.return_value = Some(v);
                    eff.kind = EffectKind::Halt;
                    return Ok(eff);
                }
                // Store the return value into the callee's frame record so a
                // post-call crash can recover it.
                let rv_addr = callee.frame_base + frame::RETVAL * 8;
                mem.store(rv_addr, v);
                eff.writes.push((rv_addr, v));
                // Restore phase: reload save_regs from memory (ensures
                // recovered and normal execution behave identically), then the
                // return value register.
                let caller = self.frames.last().expect("no frame");
                let call_inst =
                    self.module.function(caller.func).block(caller.block).insts[caller.idx].clone();
                let Inst::Call { ret, save_regs, .. } = &call_inst else {
                    return Err(InterpError::Trap("return to a non-call site".into()));
                };
                let mut loads = Vec::new();
                for (i, r) in save_regs.iter().enumerate() {
                    let a = callee.frame_base + (frame::SAVES + i as u64) * 8;
                    let sv = mem.load(a);
                    loads.push(a);
                    self.set(*r, sv);
                }
                if let Some(r) = ret {
                    loads.push(rv_addr);
                    self.set(*r, v);
                }
                eff.reads = loads;
                let fr = self.frames.last_mut().expect("no frame");
                fr.idx += 1; // step past the Call
                advanced = true;
                // The post-call region begins here; its resume point records
                // the Call instruction's position.
                let mut rp = self.here(ResumeKind::PostCall);
                rp.idx -= 1;
                eff.boundary = Some(BoundaryInfo {
                    static_region: None,
                    resume: rp,
                });
            }
            Inst::AtomicRmw {
                op,
                dst,
                addr,
                src,
                expected,
            } => {
                eff = StepEffect::new(EffectKind::Atomic);
                let a = self.addr_of(addr)?;
                let old = mem.load(a);
                eff.reads.push(a);
                let s = self.eval(*src);
                let e = self.eval(*expected);
                let new = match op {
                    AtomicOp::FetchAdd => Some(old.wrapping_add(s)),
                    AtomicOp::Swap => Some(s),
                    AtomicOp::Cas => (old == e).then_some(s),
                };
                if let Some(n) = new {
                    mem.store(a, n);
                    eff.writes.push((a, n));
                }
                self.set(*dst, old);
            }
            Inst::Fence => {
                eff = StepEffect::new(EffectKind::Fence);
            }
            Inst::Boundary { id } => {
                eff = StepEffect::new(EffectKind::Boundary);
                let fr = self.frames.last_mut().expect("no frame");
                fr.idx += 1;
                advanced = true;
                eff.boundary = Some(BoundaryInfo {
                    static_region: Some(*id),
                    resume: self.here(ResumeKind::Normal),
                });
            }
            Inst::Ckpt { reg } => {
                eff = StepEffect::new(EffectKind::Ckpt);
                let a = layout::ckpt_slot_addr(self.core, *reg);
                let v = self.reg(*reg);
                mem.store(a, v);
                eff.writes.push((a, v));
            }
            Inst::Out { val } => {
                eff = StepEffect::new(EffectKind::Out);
                eff.out = Some(self.eval(*val));
            }
            Inst::FlushLine { addr } => {
                eff = StepEffect::new(EffectKind::Flush);
                let a = self.addr_of(addr)?;
                eff.reads.push(a);
            }
            Inst::PFence => {
                eff = StepEffect::new(EffectKind::PFence);
            }
            Inst::Halt => {
                eff = StepEffect::new(EffectKind::Halt);
                self.halted = true;
                return Ok(eff);
            }
        }
        if !advanced {
            self.frames.last_mut().expect("no frame").idx += 1;
        }
        Ok(eff)
    }
}

/// Run `module` to completion with the reference interpreter (the
/// tree-walking twin of [`crate::interp::run`]).
///
/// # Errors
/// Propagates traps; returns [`InterpError::StepLimit`] if the program does
/// not halt within `max_steps`.
pub fn run_ref(module: &Module, max_steps: u64) -> Result<Outcome, InterpError> {
    let mut mem = Memory::new();
    let mut interp = RefInterp::new(module, 0, &mut mem)?;
    let mut output = Vec::new();
    while !interp.is_halted() {
        if interp.steps() >= max_steps {
            return Err(InterpError::StepLimit(max_steps));
        }
        let eff = interp.step(&mut mem)?;
        if let Some(v) = eff.out {
            output.push(v);
        }
    }
    Ok(Outcome {
        return_value: interp.return_value(),
        steps: interp.steps(),
        memory: mem,
        output,
    })
}
