//! Design-choice ablation: checkpoint-pruning tiers (§IV-C).
//!
//! * **none** — iDO-style: every region checkpoints all live registers.
//! * **const** — def-site checkpoints + constant rematerialization only.
//! * **full** — plus expression rematerialization over remaining slots
//!   (Penny's Fig-4 case; this repo's default).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("ablation_pruning_tiers", run);
}

fn run() {
    let cfg = SimConfig::default();
    let apps = cwsp_workloads::all();
    let tiers: [(&str, CompileOptions); 3] = [
        (
            "none",
            CompileOptions {
                pruning: false,
                ..Default::default()
            },
        ),
        (
            "const",
            CompileOptions {
                expr_remat: false,
                ..Default::default()
            },
        ),
        ("full", CompileOptions::default()),
    ];
    println!("\n=== Ablation: checkpoint-pruning tiers ===");
    for (label, opts) in tiers {
        let results = measure_all(&apps, |w| slowdown(w, &cfg, Scheme::cwsp(), opts));
        println!("-- {label}");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
