//! Textual IR parser — the inverse of [`crate::pretty`].
//!
//! Lets modules be written, stored, and diffed as text (handy for golden
//! tests, bug reports, and hand-written kernel assembly à la §VI). The
//! grammar is exactly what [`crate::pretty::fmt_module`] prints:
//!
//! ```text
//! module <name>
//! global <name> : <words> words @ <hex-addr>
//! fn <name>(params=<n>) regs=<n> {
//! bb0:
//!     r2 = add r0, 4
//!     r3 = ldr [r2+8]
//!     str r3, [0x1000]
//!     --- boundary Rg0 ---
//!     ckpt r3
//!     br r1 ? bb1 : bb2
//!     ret r3
//! }
//! ```
//!
//! Addresses for globals are re-laid-out on parse (the `@` address is
//! informational), so a pretty→parse→pretty round trip is stable.

use crate::function::{Block, BlockId, Function};
use crate::inst::{AtomicOp, BinOp, Inst, MemRef, Operand};
use crate::module::{FuncId, Module};
use crate::types::{Reg, RegionId, Word};
use std::fmt;

/// A parse error with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parse a module from its textual form.
///
/// # Errors
/// Returns the first syntax error with its line number. The parsed module is
/// additionally structurally validated.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut lines = text.lines().enumerate().peekable();
    let mut module: Option<Module> = None;
    let entry_hint: Option<String> = None;

    while let Some((ln, raw)) = lines.next() {
        let line = raw.trim();
        let n = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("module ") {
            module = Some(Module::new(name.trim()));
        } else if let Some(rest) = line.strip_prefix("global ") {
            let m = module.as_mut().ok_or(ParseError {
                line: n,
                msg: "global before module header".into(),
            })?;
            // `<name> : <words> words @ <addr>` (the address is recomputed)
            let (name, rest) = rest.split_once(':').ok_or(ParseError {
                line: n,
                msg: "expected `name : N words`".into(),
            })?;
            let words: Word = rest
                .split_whitespace()
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or(ParseError {
                    line: n,
                    msg: "bad word count".into(),
                })?;
            m.add_global(name.trim(), words);
        } else if let Some(rest) = line.strip_prefix("fn ") {
            let m = module.as_mut().ok_or(ParseError {
                line: n,
                msg: "fn before module header".into(),
            })?;
            let (name, params, regs) = parse_fn_header(n, rest)?;
            let mut blocks: Vec<Block> = Vec::new();
            loop {
                let Some(&(ln2, raw2)) = lines.peek() else {
                    return err(n, "unterminated function body");
                };
                let l2 = raw2.trim();
                let n2 = ln2 + 1;
                lines.next();
                if l2 == "}" {
                    break;
                }
                if l2.is_empty() {
                    continue;
                }
                if let Some(bb) = l2.strip_prefix("bb") {
                    let id: usize =
                        bb.strip_suffix(':')
                            .and_then(|x| x.parse().ok())
                            .ok_or(ParseError {
                                line: n2,
                                msg: "bad block label".into(),
                            })?;
                    if id != blocks.len() {
                        return err(n2, format!("blocks must be dense: got bb{id}"));
                    }
                    blocks.push(Block::default());
                } else {
                    let block = blocks.last_mut().ok_or(ParseError {
                        line: n2,
                        msg: "instruction before block".into(),
                    })?;
                    block.insts.push(parse_inst(n2, l2)?);
                }
            }
            let f = Function {
                name: name.clone(),
                param_count: params,
                reg_count: regs,
                blocks,
            };
            let id = m.add_function(f);
            if name == "main" || entry_hint.as_deref() == Some(&name) {
                m.set_entry(id);
            }
            let _ = id;
        } else {
            return err(n, format!("unrecognized line: {line}"));
        }
    }

    let m = module.ok_or(ParseError {
        line: 1,
        msg: "missing module header".into(),
    })?;
    Ok(m)
}

fn parse_fn_header(line: usize, rest: &str) -> Result<(String, u32, u32), ParseError> {
    // `<name>(params=<n>) regs=<n> {`
    let (name, rest) = rest.split_once('(').ok_or(ParseError {
        line,
        msg: "expected `(` in fn header".into(),
    })?;
    let (params, rest) = rest
        .strip_prefix("params=")
        .and_then(|r| r.split_once(')'))
        .ok_or(ParseError {
            line,
            msg: "expected `params=N)`".into(),
        })?;
    let params: u32 = params.parse().map_err(|_| ParseError {
        line,
        msg: "bad param count".into(),
    })?;
    let regs: u32 = rest
        .trim()
        .strip_prefix("regs=")
        .and_then(|r| r.strip_suffix('{'))
        .map(str::trim)
        .and_then(|r| r.parse().ok())
        .ok_or(ParseError {
            line,
            msg: "expected `regs=N {`".into(),
        })?;
    Ok((name.trim().to_string(), params, regs))
}

fn parse_reg(line: usize, tok: &str) -> Result<Reg, ParseError> {
    tok.strip_prefix('r')
        .and_then(|x| x.parse().ok())
        .map(Reg)
        .ok_or(ParseError {
            line,
            msg: format!("expected register, got `{tok}`"),
        })
}

fn parse_imm(line: usize, tok: &str) -> Result<Word, ParseError> {
    let v = if let Some(hex) = tok.strip_prefix("0x") {
        Word::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    };
    v.ok_or(ParseError {
        line,
        msg: format!("expected immediate, got `{tok}`"),
    })
}

fn parse_operand(line: usize, tok: &str) -> Result<Operand, ParseError> {
    if tok.starts_with('r') && tok[1..].chars().all(|c| c.is_ascii_digit()) {
        Ok(Operand::Reg(parse_reg(line, tok)?))
    } else {
        Ok(Operand::Imm(parse_imm(line, tok)?))
    }
}

fn parse_memref(line: usize, tok: &str) -> Result<MemRef, ParseError> {
    // `[base]`, `[base+off]`, `[base-off]`
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or(ParseError {
            line,
            msg: format!("expected [mem], got `{tok}`"),
        })?;
    // Find a +/- separating base from offset (skip the 0x prefix region).
    let mut split = None;
    for (i, c) in inner.char_indices().skip(1) {
        if c == '+' || c == '-' {
            split = Some(i);
            break;
        }
    }
    match split {
        None => Ok(MemRef {
            base: parse_operand(line, inner)?,
            offset: 0,
        }),
        Some(i) => {
            let base = parse_operand(line, &inner[..i])?;
            let sign = if inner.as_bytes()[i] == b'-' { -1 } else { 1 };
            let off: i64 = inner[i + 1..].parse().map_err(|_| ParseError {
                line,
                msg: "bad offset".into(),
            })?;
            Ok(MemRef {
                base,
                offset: sign * off,
            })
        }
    }
}

fn parse_block_id(line: usize, tok: &str) -> Result<BlockId, ParseError> {
    tok.strip_prefix("bb")
        .and_then(|x| x.parse().ok())
        .map(BlockId)
        .ok_or(ParseError {
            line,
            msg: format!("expected block, got `{tok}`"),
        })
}

fn binop_of(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "divu" => BinOp::DivU,
        "remu" => BinOp::RemU,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shrl" => BinOp::ShrL,
        "shra" => BinOp::ShrA,
        "cmpeq" => BinOp::CmpEq,
        "cmpne" => BinOp::CmpNe,
        "cmpltu" => BinOp::CmpLtU,
        "cmplts" => BinOp::CmpLtS,
        "minu" => BinOp::MinU,
        "maxu" => BinOp::MaxU,
        _ => return None,
    })
}

/// Parse one instruction line (the [`crate::pretty::fmt_inst`] format).
pub fn parse_inst(line: usize, text: &str) -> Result<Inst, ParseError> {
    let text = text.trim();
    // boundary / ckpt / fence / halt / ret / out / str / br
    if let Some(rest) = text.strip_prefix("--- boundary Rg") {
        let id: u32 = rest
            .strip_suffix(" ---")
            .and_then(|x| x.parse().ok())
            .ok_or(ParseError {
                line,
                msg: "bad boundary".into(),
            })?;
        return Ok(Inst::Boundary { id: RegionId(id) });
    }
    if let Some(r) = text.strip_prefix("ckpt ") {
        return Ok(Inst::Ckpt {
            reg: parse_reg(line, r.trim())?,
        });
    }
    if text == "fence" {
        return Ok(Inst::Fence);
    }
    if text == "pfence" {
        return Ok(Inst::PFence);
    }
    if let Some(m) = text.strip_prefix("flush ") {
        return Ok(Inst::FlushLine {
            addr: parse_memref(line, m.trim())?,
        });
    }
    if text == "halt" {
        return Ok(Inst::Halt);
    }
    if text == "ret" {
        return Ok(Inst::Ret { val: None });
    }
    if let Some(v) = text.strip_prefix("ret ") {
        return Ok(Inst::Ret {
            val: Some(parse_operand(line, v.trim())?),
        });
    }
    if let Some(v) = text.strip_prefix("out ") {
        return Ok(Inst::Out {
            val: parse_operand(line, v.trim())?,
        });
    }
    if let Some(rest) = text.strip_prefix("str ") {
        let (src, mem) = rest.split_once(',').ok_or(ParseError {
            line,
            msg: "str needs `src, [mem]`".into(),
        })?;
        return Ok(Inst::Store {
            src: parse_operand(line, src.trim())?,
            addr: parse_memref(line, mem.trim())?,
        });
    }
    if text.contains("call fn") {
        return parse_call(line, text);
    }
    if let Some(rest) = text.strip_prefix("br ") {
        let rest = rest.trim();
        if let Some((cond, arms)) = rest.split_once('?') {
            let (t, f) = arms.split_once(':').ok_or(ParseError {
                line,
                msg: "condbr needs `? bbT : bbF`".into(),
            })?;
            return Ok(Inst::CondBr {
                cond: parse_operand(line, cond.trim())?,
                if_true: parse_block_id(line, t.trim())?,
                if_false: parse_block_id(line, f.trim())?,
            });
        }
        return Ok(Inst::Br {
            target: parse_block_id(line, rest)?,
        });
    }
    // `rd = ...` forms
    let (dst, rhs) = text.split_once('=').ok_or(ParseError {
        line,
        msg: format!("unrecognized instruction `{text}`"),
    })?;
    let dst = parse_reg(line, dst.trim())?;
    let rhs = rhs.trim();
    if let Some(m) = rhs.strip_prefix("ldr ") {
        return Ok(Inst::Load {
            dst,
            addr: parse_memref(line, m.trim())?,
        });
    }
    if let Some(v) = rhs.strip_prefix("mov ") {
        return Ok(Inst::Mov {
            dst,
            src: parse_operand(line, v.trim())?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("xadd ") {
        let (mem, src) = rest.split_once(',').ok_or(ParseError {
            line,
            msg: "xadd needs `[mem], src`".into(),
        })?;
        return Ok(Inst::AtomicRmw {
            op: AtomicOp::FetchAdd,
            dst,
            addr: parse_memref(line, mem.trim())?,
            src: parse_operand(line, src.trim())?,
            expected: Operand::imm(0),
        });
    }
    if let Some(rest) = rhs.strip_prefix("xchg ") {
        let (mem, src) = rest.split_once(',').ok_or(ParseError {
            line,
            msg: "xchg needs `[mem], src`".into(),
        })?;
        return Ok(Inst::AtomicRmw {
            op: AtomicOp::Swap,
            dst,
            addr: parse_memref(line, mem.trim())?,
            src: parse_operand(line, src.trim())?,
            expected: Operand::imm(0),
        });
    }
    if let Some(rest) = rhs.strip_prefix("cas ") {
        // `[mem], [mem] == expected -> new`
        let (mem, rest) = rest.split_once(',').ok_or(ParseError {
            line,
            msg: "cas needs `[mem], …`".into(),
        })?;
        let (_, cond) = rest.split_once("==").ok_or(ParseError {
            line,
            msg: "cas needs `== expected -> new`".into(),
        })?;
        let (expected, new) = cond.split_once("->").ok_or(ParseError {
            line,
            msg: "cas needs `-> new`".into(),
        })?;
        return Ok(Inst::AtomicRmw {
            op: AtomicOp::Cas,
            dst,
            addr: parse_memref(line, mem.trim())?,
            src: parse_operand(line, new.trim())?,
            expected: parse_operand(line, expected.trim())?,
        });
    }
    // `op lhs, rhs`
    let (opname, args) = rhs.split_once(' ').ok_or(ParseError {
        line,
        msg: format!("unrecognized rhs `{rhs}`"),
    })?;
    let op = binop_of(opname).ok_or(ParseError {
        line,
        msg: format!("unknown opcode `{opname}`"),
    })?;
    let (l, r) = args.split_once(',').ok_or(ParseError {
        line,
        msg: "binary op needs two operands".into(),
    })?;
    Ok(Inst::Binary {
        op,
        dst,
        lhs: parse_operand(line, l.trim())?,
        rhs: parse_operand(line, r.trim())?,
    })
}

/// Look up `fn<id>` call targets is unsupported in text form: calls are
/// printed as `call fnN(...)` and parsed back by index.
pub fn parse_call(line: usize, text: &str) -> Result<Inst, ParseError> {
    // `[rd =] call fnN(a, b) [save[rX,rY]]`
    let (dst, rest) = match text.split_once("call ") {
        Some((pre, rest)) => {
            let pre = pre.trim().trim_end_matches('=').trim();
            let dst = if pre.is_empty() {
                None
            } else {
                Some(parse_reg(line, pre)?)
            };
            (dst, rest)
        }
        None => return err(line, "not a call"),
    };
    let (fname, rest) = rest.split_once('(').ok_or(ParseError {
        line,
        msg: "call needs `(`".into(),
    })?;
    let fid: u32 = fname
        .trim()
        .strip_prefix("fn")
        .and_then(|x| x.parse().ok())
        .ok_or(ParseError {
            line,
            msg: "call target must be fnN".into(),
        })?;
    let (args_s, rest) = rest.split_once(')').ok_or(ParseError {
        line,
        msg: "call needs `)`".into(),
    })?;
    let mut args = Vec::new();
    for a in args_s.split(',').map(str::trim).filter(|a| !a.is_empty()) {
        args.push(parse_operand(line, a)?);
    }
    let mut save_regs = Vec::new();
    if let Some(s) = rest.trim().strip_prefix("save[") {
        let s = s.strip_suffix(']').ok_or(ParseError {
            line,
            msg: "save needs `]`".into(),
        })?;
        for r in s.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            save_regs.push(parse_reg(line, r)?);
        }
    }
    Ok(Inst::Call {
        func: FuncId(fid),
        args,
        ret: dst,
        save_regs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::{fmt_inst, fmt_module};

    #[test]
    fn parse_simple_instructions() {
        assert_eq!(
            parse_inst(1, "r2 = add r0, 4").unwrap(),
            Inst::binary(BinOp::Add, Reg(2), Reg(0).into(), Operand::imm(4))
        );
        assert_eq!(
            parse_inst(1, "r1 = ldr [r0+8]").unwrap(),
            Inst::load(Reg(1), MemRef::reg(Reg(0), 8))
        );
        assert_eq!(
            parse_inst(1, "str 1, [64]").unwrap(),
            Inst::store(Operand::imm(1), MemRef::abs(64))
        );
        assert_eq!(
            parse_inst(1, "--- boundary Rg7 ---").unwrap(),
            Inst::Boundary { id: RegionId(7) }
        );
        assert_eq!(
            parse_inst(1, "ckpt r3").unwrap(),
            Inst::Ckpt { reg: Reg(3) }
        );
        assert_eq!(parse_inst(1, "halt").unwrap(), Inst::Halt);
        assert_eq!(
            parse_inst(1, "ret r5").unwrap(),
            Inst::Ret {
                val: Some(Reg(5).into())
            }
        );
        assert_eq!(
            parse_inst(1, "br r1 ? bb2 : bb3").unwrap(),
            Inst::CondBr {
                cond: Reg(1).into(),
                if_true: BlockId(2),
                if_false: BlockId(3)
            }
        );
    }

    #[test]
    fn inst_round_trips_through_pretty() {
        let insts = vec![
            Inst::binary(BinOp::Xor, Reg(9), Reg(1).into(), Operand::imm(0x1234)),
            Inst::load(Reg(3), MemRef::reg(Reg(2), -16)),
            Inst::store(Reg(4).into(), MemRef::abs(0x100000000)),
            Inst::Mov {
                dst: Reg(0),
                src: Operand::imm(7),
            },
            Inst::Br { target: BlockId(4) },
            Inst::CondBr {
                cond: Reg(2).into(),
                if_true: BlockId(1),
                if_false: BlockId(2),
            },
            Inst::Boundary { id: RegionId(12) },
            Inst::Ckpt { reg: Reg(30) },
            Inst::Out {
                val: Operand::imm(9),
            },
            Inst::Fence,
            Inst::FlushLine {
                addr: MemRef::reg(Reg(5), 64),
            },
            Inst::FlushLine {
                addr: MemRef::abs(0x2000),
            },
            Inst::PFence,
            Inst::Halt,
            Inst::Ret { val: None },
            Inst::Ret {
                val: Some(Reg(1).into()),
            },
        ];
        for inst in insts {
            let text = fmt_inst(&inst);
            let back = parse_inst(1, &text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, inst, "{text}");
        }
    }

    #[test]
    fn atomic_round_trips() {
        let rmw = Inst::AtomicRmw {
            op: AtomicOp::FetchAdd,
            dst: Reg(1),
            addr: MemRef::abs(64),
            src: Operand::imm(5),
            expected: Operand::imm(0),
        };
        let back = parse_inst(1, &fmt_inst(&rmw)).unwrap();
        assert_eq!(back, rmw);
        let cas = Inst::AtomicRmw {
            op: AtomicOp::Cas,
            dst: Reg(1),
            addr: MemRef::abs(64),
            src: Operand::imm(5),
            expected: Operand::imm(2),
        };
        let back = parse_inst(1, &fmt_inst(&cas)).unwrap();
        assert_eq!(back, cas);
    }

    #[test]
    fn call_round_trips() {
        let call = Inst::Call {
            func: FuncId(3),
            args: vec![Reg(1).into(), Operand::imm(9)],
            ret: Some(Reg(7)),
            save_regs: vec![Reg(2), Reg(4)],
        };
        let text = fmt_inst(&call);
        assert_eq!(parse_call(1, &text).unwrap(), call);
        let bare = Inst::Call {
            func: FuncId(0),
            args: vec![],
            ret: None,
            save_regs: vec![],
        };
        assert_eq!(parse_call(1, &fmt_inst(&bare)).unwrap(), bare);
    }

    #[test]
    fn module_round_trips() {
        use crate::builder::{build_counted_loop, FunctionBuilder};
        let mut m = Module::new("rt");
        let g = m.add_global("data", 8);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(5), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
        });
        let v = b.load(exit, MemRef::global(g, 0));
        b.push(
            exit,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);

        let text = fmt_module(&m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(parsed.validate().is_ok(), "{:?}", parsed.validate());
        // Same behaviour.
        let a = crate::interp::run(&m, 10_000).unwrap();
        let b2 = crate::interp::run(&parsed, 10_000).unwrap();
        assert_eq!(a.return_value, b2.return_value);
        // Pretty → parse → pretty is a fixpoint.
        assert_eq!(fmt_module(&parsed), text);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_module("module m\nglobal g : x words @ 0x0").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_inst(9, "r1 = frobnicate r2, r3").unwrap_err();
        assert_eq!(e.line, 9);
        assert!(e.to_string().contains("frobnicate"));
        let e = parse_module("global g : 4 words @ 0").unwrap_err();
        assert!(e.msg.contains("before module"));
    }

    #[test]
    fn dense_block_labels_required() {
        let text = "module m\nfn main(params=0) regs=1 {\nbb1:\n    halt\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.msg.contains("dense"), "{e}");
    }
}
