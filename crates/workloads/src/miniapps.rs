//! DOE Mini-apps stand-ins (2 apps): LULESH and XSBench.
//!
//! LULESH is an unstructured-mesh hydrodynamics proxy — big-grid stencil
//! sweeps with substantial writes (the paper highlights it as a pruning
//! winner, §IX-B). XSBench is the Monte Carlo cross-section lookup proxy —
//! overwhelmingly random reads over a giant table.

use crate::footprint::*;
use crate::kernels::*;
use crate::{app, arena, checksum, Suite, Workload};

/// Build both mini-apps.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "lulesh",
            suite: Suite::MiniApps,
            window: 150_000,
            module: app("lulesh", |m, b, mut bb| {
                let mesh = arena(m, "mesh", DRAM);
                let tmp = arena(m, "tmp", DRAM);
                bb = stencil3(b, bb, mesh, tmp, 3_000);
                bb = stencil3(b, bb, tmp, mesh, 3_000);
                bb = rmw_sweep(b, bb, mesh, DRAM, 1, 1_500);
                checksum(b, bb, mesh + 8);
                bb
            }),
        },
        Workload {
            name: "xsbench",
            suite: Suite::MiniApps,
            window: 130_000,
            module: app("xsbench", |m, b, mut bb| {
                let xs = arena(m, "xs_table", NVM);
                let res = arena(m, "results", L1);
                // Random read-dominated lookups over an 8 GB range (cold NVM
                // territory), with rare result writes.
                bb = random_walk(b, bb, xs, NVM, 3_500, 0x5BE, 32);
                bb = rmw_sweep(b, bb, res, L1, 1, 1_200);
                checksum(b, bb, res);
                bb
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_apps_run() {
        let ws = all();
        assert_eq!(ws.len(), 2);
        for w in &ws {
            let out = cwsp_ir::interp::run(&w.module, 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(out.steps > 5_000, "{}", w.name);
        }
    }
}
