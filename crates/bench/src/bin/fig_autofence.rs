//! AutoFence sweep: the certified flush/fence-insertion baseline.
//!
//! Three panels:
//!
//! 1. **Static census** — per workload, how many line flushes the pass
//!    inserted, how many same-line flushes it elided, and how many ordering
//!    pfences it placed (plus the resulting static op counts).
//! 2. **Runtime overhead** — autofenced raw modules under
//!    `Scheme::AutoFence` vs the raw baseline, with the dynamic flush and
//!    pfence instruction counts actually executed.
//! 3. **Head-to-head** — per-suite slowdown gmeans of AutoFence against the
//!    paper's schemes (cWSP, Capri, ReplayCache) at the default persist
//!    path.

use cwsp_bench::{baseline_cycles, cached_stats, gmean, measure_all, slowdown, suite_gmeans};
use cwsp_compiler::autofence;
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_ir::decoded::OPCODE_NAMES;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;
use cwsp_workloads::Workload;

fn main() {
    cwsp_bench::harness_main("fig_autofence", run);
}

fn mix_index(name: &str) -> usize {
    OPCODE_NAMES.iter().position(|n| *n == name).unwrap()
}

fn autofenced(w: &Workload) -> cwsp_ir::module::Module {
    let mut m = w.module.clone();
    autofence::run(&mut m);
    m
}

fn autofence_slowdown(w: &Workload, cfg: &SimConfig) -> f64 {
    let m = autofenced(w);
    let name = format!("{}+autofence", w.name);
    let s = cached_stats(&name, &m, cfg, Scheme::AutoFence);
    s.cycles as f64 / baseline_cycles(w, cfg) as f64
}

fn run() {
    let apps = cwsp_workloads::all();
    let cfg = SimConfig::default();
    let (fl_ix, pf_ix) = (mix_index("flush"), mix_index("pfence"));

    println!("\n=== AutoFence: static instrumentation census ===");
    println!(
        "   {:<12} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "app", "flushes", "elided", "pfences", "op.flush", "op.pfence"
    );
    let mut tot = autofence::AutoFenceStats::default();
    for w in &apps {
        let mut m = w.module.clone();
        let st = autofence::run(&mut m);
        let (flush_ops, pfence_ops) = autofence::op_census(&m);
        println!(
            "   {:<12} {:>8} {:>8} {:>8} {:>10} {:>10}",
            w.name,
            st.flushes_inserted,
            st.flushes_elided,
            st.fences_inserted,
            flush_ops,
            pfence_ops
        );
        tot.flushes_inserted += st.flushes_inserted;
        tot.flushes_elided += st.flushes_elided;
        tot.fences_inserted += st.fences_inserted;
    }
    println!(
        "   {:<12} {:>8} {:>8} {:>8}",
        "TOTAL", tot.flushes_inserted, tot.flushes_elided, tot.fences_inserted
    );

    println!("\n=== AutoFence: runtime overhead vs raw baseline ===");
    println!(
        "   {:<12} {:>9} {:>12} {:>12}",
        "app", "slowdown", "dyn.flush", "dyn.pfence"
    );
    let mut sds = Vec::new();
    for w in &apps {
        let m = autofenced(w);
        let name = format!("{}+autofence", w.name);
        let s = cached_stats(&name, &m, &cfg, Scheme::AutoFence);
        let sd = s.cycles as f64 / baseline_cycles(w, &cfg) as f64;
        println!(
            "   {:<12} {:>8.3}x {:>12} {:>12}",
            w.name, sd, s.op_mix[fl_ix], s.op_mix[pf_ix]
        );
        sds.push(sd);
    }
    println!("   {:<12} {:>8.3}x", "GMEAN", gmean(&sds));

    println!("\n=== AutoFence vs WSP schemes (normalized slowdown gmeans) ===");
    let opts = CompileOptions::default();
    type Metric<'a> = Box<dyn Fn(&Workload) -> f64 + Sync + 'a>;
    let schemes: Vec<(&str, Metric)> = vec![
        (
            "AutoFence",
            Box::new(|w: &Workload| autofence_slowdown(w, &cfg)),
        ),
        (
            "cWSP",
            Box::new(|w: &Workload| slowdown(w, &cfg, Scheme::cwsp(), opts)),
        ),
        (
            "Capri",
            Box::new(|w: &Workload| slowdown(w, &cfg, Scheme::Capri, opts)),
        ),
        (
            "ReplayCache",
            Box::new(|w: &Workload| slowdown(w, &cfg, Scheme::ReplayCache, opts)),
        ),
    ];
    for (label, metric) in schemes {
        let results = measure_all(&apps, metric);
        println!("-- {label}");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
