//! # cwsp-workloads — the paper's 38 benchmark applications
//!
//! The evaluation of *Compiler-Directed Whole-System Persistence* (§IX) runs
//! 38 applications from six suites: SPEC CPU2006 and CPU2017, DOE Mini-apps,
//! SPLASH-3, WHISPER, and STAMP. The binaries themselves are not available
//! offline, so each application here is a synthetic IR program reproducing
//! the *memory behaviour* that drives the paper's figures — footprint class
//! (L1/L2/DRAM-cache/NVM resident), write intensity, access pattern
//! (sequential sweep, stencil, random walk, transactional update, scatter),
//! and synchronization frequency. See DESIGN.md §1 for the substitution
//! rationale.
//!
//! Every workload is deterministic and self-checking (it ends by emitting a
//! checksum), so the same programs double as crash-consistency fixtures.
//!
//! ## Example
//!
//! ```
//! let w = cwsp_workloads::by_name("lbm").unwrap();
//! assert_eq!(w.suite, cwsp_workloads::Suite::Cpu2006);
//! let out = cwsp_ir::interp::run(&w.module, 10_000_000).unwrap();
//! assert!(out.steps > 1_000);
//! ```

pub mod cpu2006;
pub mod cpu2017;
pub mod kernels;
pub mod miniapps;
pub mod multicore;
pub mod probes;
pub mod splash3;
pub mod stamp;
pub mod whisper;

use cwsp_ir::builder::FunctionBuilder;
use cwsp_ir::function::BlockId;
use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
use cwsp_ir::module::Module;
use cwsp_ir::types::Word;
use std::fmt;

/// Benchmark suite labels (the figure x-axis groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// SPEC CPU2006 (10 apps).
    Cpu2006,
    /// SPEC CPU2017 (7 apps).
    Cpu2017,
    /// DOE Mini-apps (2 apps).
    MiniApps,
    /// SPLASH-3 (10 apps).
    Splash3,
    /// WHISPER persistent-memory suite (6 apps).
    Whisper,
    /// STAMP transactional suite (3 apps).
    Stamp,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Cpu2006 => "CPU2006",
            Suite::Cpu2017 => "CPU2017",
            Suite::MiniApps => "Mini-apps",
            Suite::Splash3 => "SPLASH3",
            Suite::Whisper => "WHISPER",
            Suite::Stamp => "STAMP",
        };
        f.write_str(s)
    }
}

/// One benchmark application: a name, its suite, and the IR program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark label as printed in the paper's figures.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// The program.
    pub module: Module,
    /// Suggested dynamic-instruction simulation window.
    pub window: u64,
}

impl Workload {
    /// One-line behavioural sketch of what this stand-in models.
    pub fn description(&self) -> &'static str {
        match (self.suite, self.name) {
            (Suite::Cpu2006, "astar") => {
                "pathfinding: random graph walk + pointer chase over a 32 MB arena"
            }
            (Suite::Cpu2006, "bzip2") => {
                "compression: sequential RMW stream + L1-resident histogram"
            }
            (Suite::Cpu2006, "gobmk") => "game tree: dense ALU search with sparse board probes",
            (Suite::Cpu2006, "h264ref") => {
                "video: frame stencils, strided motion updates, DCT-ish compute"
            }
            (Suite::Cpu2006, "lbm") => {
                "fluid: big-footprint write-heavy stencil sweeps (22% L1D misses in the paper)"
            }
            (Suite::Cpu2006, "libquan") => {
                "quantum sim: streaming gate application over a large state vector"
            }
            (Suite::Cpu2006, "milc") => {
                "lattice QCD: read-bandwidth-bound reduction with rare writes"
            }
            (Suite::Cpu2006, "namd") => {
                "molecular dynamics: compute-dense inner loops, tiny footprint"
            }
            (Suite::Cpu2006, "sjeng") => "chess: ALU search + transposition-table probes",
            (Suite::Cpu2006, "soplex") => "LP solver: sparse random reads, dense sequential writes",
            (Suite::Cpu2017, "dsjeng") => "deep chess search: compute + table probes",
            (Suite::Cpu2017, "imagick") => {
                "image ops: stencil passes bracketing heavy per-pixel compute"
            }
            (Suite::Cpu2017, "lbm") => "fluid (2017 inputs): stencil + dense RMW sweep",
            (Suite::Cpu2017, "leela") => "go engine: MCTS pointer chases + playout compute",
            (Suite::Cpu2017, "nab") => "biosimulation: reductions + force-field compute",
            (Suite::Cpu2017, "namd") => "molecular dynamics (2017 inputs): longer compute phases",
            (Suite::Cpu2017, "xz") => "compression: dictionary probes, histogram, match scatter",
            (Suite::MiniApps, "lulesh") => {
                "hydrodynamics proxy: big-grid stencils + mesh RMW (pruning showcase)"
            }
            (Suite::MiniApps, "xsbench") => "Monte Carlo proxy: random lookups over an 8 GB table",
            (Suite::Whisper, "p") => {
                "kv put (echo): hashed small-record transactions over NVM-range data"
            }
            (Suite::Whisper, "c") => "ctree: path reads then node updates",
            (Suite::Whisper, "rb") => "rbtree: scattered read-modify-write rotations",
            (Suite::Whisper, "sps") => "swaps: random pair exchanges (2 reads + 2 writes each)",
            (Suite::Whisper, "tatp") => "telecom db: read-mostly transactions, small updates",
            (Suite::Whisper, "tpcc") => {
                "new-order: wide records, several dirty fields per tx + log append"
            }
            (Suite::Splash3, "cholesky") => "factorization: strided then dense RMW with a barrier",
            (Suite::Splash3, "fft") => "butterfly stages: strided RMW passes with barriers",
            (Suite::Splash3, "lu-cg") => {
                "LU (contiguous): dense sequential write storm (worst case)"
            }
            (Suite::Splash3, "lu-ncg") => "LU (non-contiguous): strided write storm",
            (Suite::Splash3, "ocg") => "ocean (contiguous): grid stencil sweeps + barrier",
            (Suite::Splash3, "oncg") => "ocean (non-contiguous): strided RMW + stencil",
            (Suite::Splash3, "radix") => "radix sort: counting pass then scatter write storm",
            (Suite::Splash3, "raytrace") => "raytracer: BVH pointer chase + framebuffer writes",
            (Suite::Splash3, "water-ns") => {
                "water n²: compute + dense molecule updates, lock-synced"
            }
            (Suite::Splash3, "water-sp") => "water spatial: compute + strided cell updates",
            (Suite::Stamp, "kmeans") => "clustering: reduction + centroid RMW in critical sections",
            (Suite::Stamp, "ssca2") => "graph kernel: random edge RMW under locks",
            (Suite::Stamp, "vacation") => {
                "reservations: tree lookups + transactional record updates"
            }
            _ => "synthetic benchmark stand-in",
        }
    }
}

/// Footprint classes (words, powers of two) targeting specific hierarchy
/// levels of the default §IX machine.
pub mod footprint {
    /// Fits the 64 KB L1D.
    pub const L1: u64 = 1 << 12;
    /// Fits the 16 MB shared L2 (8 MB).
    pub const L2: u64 = 1 << 20;
    /// Exceeds L2, fits the 4 GB DRAM cache (32 MB).
    pub const DRAM: u64 = 1 << 22;
    /// Exceeds everything: cold NVM accesses (8 GB range).
    pub const NVM: u64 = 1 << 30;
}

/// Helper used by the suite modules: build a module around a single `main`.
pub(crate) fn app(
    name: &str,
    build: impl FnOnce(&mut Module, &mut FunctionBuilder, BlockId) -> BlockId,
) -> Module {
    let mut m = Module::new(name);
    let mut b = FunctionBuilder::new("main", 0);
    let e = b.entry();
    let exit = build(&mut m, &mut b, e);
    b.push(exit, Inst::Halt);
    let main = m.add_function(b.build());
    m.set_entry(main);
    debug_assert!(m.validate().is_ok(), "{name}: {:?}", m.validate());
    m
}

/// Helper: allocate an arena global of `words` and return its base address.
pub(crate) fn arena(m: &mut Module, name: &str, words: u64) -> Word {
    let g = m.add_global(name, words);
    m.global_addr(g)
}

/// Helper: emit a final checksum load + `Out` from `addr`.
pub(crate) fn checksum(b: &mut FunctionBuilder, bb: BlockId, addr: Word) {
    let v = b.load(bb, MemRef::abs(addr));
    let f = b.bin(bb, BinOp::Add, v.into(), Operand::imm(1));
    b.push(bb, Inst::Out { val: f.into() });
}

/// All 38 workloads in figure order.
pub fn all() -> Vec<Workload> {
    let mut v = Vec::with_capacity(38);
    v.extend(cpu2006::all());
    v.extend(cpu2017::all());
    v.extend(miniapps::all());
    v.extend(splash3::all());
    v.extend(whisper::all());
    v.extend(stamp::all());
    v
}

/// The memory-intensive subset used by Figs 1, 17, and 18.
pub fn memory_intensive() -> Vec<Workload> {
    const KEYS: [(Suite, &str); 12] = [
        (Suite::Cpu2006, "astar"),
        (Suite::Cpu2006, "lbm"),
        (Suite::Cpu2006, "libquan"),
        (Suite::Cpu2006, "milc"),
        (Suite::MiniApps, "lulesh"),
        (Suite::MiniApps, "xsbench"),
        (Suite::Whisper, "p"),
        (Suite::Whisper, "c"),
        (Suite::Whisper, "rb"),
        (Suite::Whisper, "sps"),
        (Suite::Whisper, "tatp"),
        (Suite::Whisper, "tpcc"),
    ];
    all()
        .into_iter()
        .filter(|w| KEYS.contains(&(w.suite, w.name)))
        .collect()
}

/// Look up a workload by its figure label.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_38_apps_in_6_suites() {
        let ws = all();
        assert_eq!(ws.len(), 38);
        let per = |s: Suite| ws.iter().filter(|w| w.suite == s).count();
        assert_eq!(per(Suite::Cpu2006), 10);
        assert_eq!(per(Suite::Cpu2017), 7);
        assert_eq!(per(Suite::MiniApps), 2);
        assert_eq!(per(Suite::Splash3), 10);
        assert_eq!(per(Suite::Whisper), 6);
        assert_eq!(per(Suite::Stamp), 3);
        // unique names within a suite
        let mut keys: Vec<_> = ws.iter().map(|w| (w.suite, w.name)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 38);
    }

    #[test]
    fn memory_intensive_subset_matches_fig17() {
        let ws = memory_intensive();
        assert_eq!(ws.len(), 12);
        assert!(ws.iter().any(|w| w.name == "xsbench"));
        assert!(ws.iter().any(|w| w.name == "tpcc"));
    }

    #[test]
    fn every_workload_validates_and_halts() {
        for w in all() {
            assert!(
                w.module.validate().is_ok(),
                "{}: {:?}",
                w.name,
                w.module.validate()
            );
            let out = cwsp_ir::interp::run(&w.module, 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                out.steps > 5_000,
                "{}: too small ({} steps) to be a meaningful window",
                w.name,
                out.steps
            );
            assert!(!out.output.is_empty(), "{}: no checksum emitted", w.name);
        }
    }

    #[test]
    fn every_workload_has_a_description() {
        for w in all() {
            let d = w.description();
            assert!(
                d.len() > 10 && d != "synthetic benchmark stand-in",
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("radix").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = cwsp_ir::interp::run(&by_name("kmeans").unwrap().module, 30_000_000).unwrap();
        let b = cwsp_ir::interp::run(&by_name("kmeans").unwrap().module, 30_000_000).unwrap();
        assert_eq!(a.output, b.output);
    }
}
