//! Figure 21: persist-path bandwidth sweep 1→32 GB/s (paper: overhead falls
//! with bandwidth and flattens beyond 10 GB/s thanks to 8-byte granularity).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig21_bandwidth_sweep", run);
}

fn run() {
    let apps = cwsp_workloads::all();
    println!("\n=== Fig 21: persist path bandwidth sweep ===");
    for bw in [1.0, 2.0, 4.0, 10.0, 20.0, 32.0] {
        let cfg = SimConfig {
            persist_path_gbps: bw,
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| {
            slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
        });
        println!("-- {bw} GB/s");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
