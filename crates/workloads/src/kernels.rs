//! Reusable IR kernel generators.
//!
//! Each benchmark in the paper's six suites is characterized, for the
//! purposes of its figures, by a mix of memory behaviours: sequential
//! read-modify-write sweeps, stencils, random walks, hash/transactional
//! updates, reductions, pointer chases, scatter writes. These generators emit
//! those behaviours as IR loops; the per-app builders in the suite modules
//! compose and parameterize them.
//!
//! The kernels are written the way an optimizing compiler would schedule
//! them: bodies are unrolled (4 elements per iteration), all loads precede
//! all stores (so one region cut covers every read-modify-write pair), and
//! loop-carried updates use the two-phase `t = f(x); x = t` form with the
//! copies grouped at the end (one cut covers all of them, and the temporaries
//! never cross a boundary — no checkpoints for them). This yields dynamic
//! regions in the 15–40-instruction range, matching the paper's Fig 19
//! characteristics.
//!
//! All generators take an *unterminated* block, append code (possibly adding
//! blocks), and return a new unterminated block to continue in.

use cwsp_ir::builder::{build_counted_loop, build_counted_loop_multi, FunctionBuilder};
use cwsp_ir::function::BlockId;
use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};
use cwsp_ir::types::{Reg, Word};

/// Unroll factor of the element-wise kernels.
pub const UNROLL: Word = 4;

/// LCG constants for deterministic pseudo-random address streams.
const LCG_A: Word = 6364136223846793005;
const LCG_C: Word = 1442695040888963407;

/// Emit `value = lcg(value)` and return the register holding the new value.
fn lcg_step(b: &mut FunctionBuilder, bb: BlockId, state: Operand) -> Reg {
    let t = b.bin(bb, BinOp::Mul, state, Operand::imm(LCG_A));
    b.bin(bb, BinOp::Add, t.into(), Operand::imm(LCG_C))
}

/// Compute `addr = base + ((v >> 11) & mask) * 8` (mask = words-1, a power of
/// two) and return the address register.
fn masked_addr(
    b: &mut FunctionBuilder,
    bb: BlockId,
    base: Word,
    words_pow2: Word,
    v: Operand,
) -> Reg {
    debug_assert!(words_pow2.is_power_of_two());
    let h = b.bin(bb, BinOp::ShrL, v, Operand::imm(11));
    let idx = b.bin(bb, BinOp::And, h.into(), Operand::imm(words_pow2 - 1));
    let off = b.bin(bb, BinOp::Shl, idx.into(), Operand::imm(3));
    b.bin(bb, BinOp::Add, off.into(), Operand::imm(base))
}

/// Sequential read-modify-write sweep, 4 elements per iteration:
/// `a[(i*4+k)*stride % words] += f(i)` for `k in 0..4`.
///
/// `stride` is in words; use `>= 8` to touch a fresh cacheline per element
/// (lbm-like miss rates) or `1` for L1-friendly dense writes (SPLASH-3's
/// write storms).
pub fn rmw_sweep(
    b: &mut FunctionBuilder,
    bb: BlockId,
    base: Word,
    words_pow2: Word,
    stride: Word,
    iters: Word,
) -> BlockId {
    rmw_sweep_frac(b, bb, base, words_pow2, stride, iters, UNROLL)
}

/// [`rmw_sweep`] with a configurable number of written-back elements per
/// iteration (`stores` in `1..=UNROLL`): all four elements are loaded and
/// computed on, but only the first `stores` are written back — the knob for
/// an app's store density.
#[allow(clippy::too_many_arguments)]
pub fn rmw_sweep_frac(
    b: &mut FunctionBuilder,
    bb: BlockId,
    base: Word,
    words_pow2: Word,
    stride: Word,
    iters: Word,
    stores: Word,
) -> BlockId {
    let (_, exit) = build_counted_loop(b, bb, Operand::imm(iters), |b, body, i| {
        let ebase = b.bin(body, BinOp::Mul, i.into(), Operand::imm(UNROLL * stride));
        // Address computation for all four elements.
        let addrs: Vec<Reg> = (0..UNROLL)
            .map(|k| {
                let e = b.bin(body, BinOp::Add, ebase.into(), Operand::imm(k * stride));
                let idx = b.bin(body, BinOp::And, e.into(), Operand::imm(words_pow2 - 1));
                let off = b.bin(body, BinOp::Shl, idx.into(), Operand::imm(3));
                b.bin(body, BinOp::Add, off.into(), Operand::imm(base))
            })
            .collect();
        // All loads...
        let vals: Vec<Reg> = addrs
            .iter()
            .map(|a| b.load(body, MemRef::reg(*a, 0)))
            .collect();
        // ...some arithmetic per element...
        let news: Vec<Reg> = vals
            .iter()
            .map(|v| {
                let t1 = b.bin(body, BinOp::Xor, (*v).into(), i.into());
                let t2 = b.bin(body, BinOp::Mul, t1.into(), Operand::imm(0x2545F491));
                let t3 = b.bin(body, BinOp::ShrL, t2.into(), Operand::imm(7));
                b.bin(body, BinOp::Add, t3.into(), Operand::imm(1))
            })
            .collect();
        // ...then the stores (a single region cut covers every RMW pair).
        for (a, n) in addrs
            .iter()
            .zip(&news)
            .take(stores.clamp(1, UNROLL) as usize)
        {
            b.store(body, (*n).into(), MemRef::reg(*a, 0));
        }
    });
    exit
}

/// Three-point stencil over disjoint arrays, 4 elements per iteration:
/// `dst[i] = src[i-1] + src[i] + src[i+1]`. Reads and writes never alias
/// (distinct bases), so iterations need no antidependence cuts at all.
pub fn stencil3(b: &mut FunctionBuilder, bb: BlockId, src: Word, dst: Word, n: Word) -> BlockId {
    let iters = n / UNROLL;
    let (_, exit) = build_counted_loop(b, bb, Operand::imm(iters), |b, body, i| {
        let off = b.bin(body, BinOp::Shl, i.into(), Operand::imm(5)); // 4 words
        let sa = b.bin(body, BinOp::Add, off.into(), Operand::imm(src));
        // 6 loads cover the 4 three-point windows.
        let loads: Vec<Reg> = (0..6)
            .map(|k| b.load(body, MemRef::reg(sa, k * 8)))
            .collect();
        let da = b.bin(body, BinOp::Add, off.into(), Operand::imm(dst));
        for k in 0..UNROLL as usize {
            let s1 = b.bin(body, BinOp::Add, loads[k].into(), loads[k + 1].into());
            let s2 = b.bin(body, BinOp::Add, s1.into(), loads[k + 2].into());
            b.store(body, s2.into(), MemRef::reg(da, (k as i64 + 1) * 8));
        }
    });
    exit
}

/// Random read-modify-write walk over `words_pow2` words (histogram/ssca2/
/// rbtree-style behaviour), two probes per iteration. `write_every = 1`
/// makes every probe a RMW; larger values interleave read-only probes.
pub fn random_walk(
    b: &mut FunctionBuilder,
    bb: BlockId,
    base: Word,
    words_pow2: Word,
    steps: Word,
    seed: Word,
    write_every: Word,
) -> BlockId {
    let state = b.vreg();
    b.push(
        bb,
        Inst::Mov {
            dst: state,
            src: Operand::imm(seed),
        },
    );
    let iters = (steps / 2).max(1);
    let (_, exit) = build_counted_loop_multi(b, bb, Operand::imm(iters), |b, body, i| {
        let n1 = lcg_step(b, body, state.into());
        let n2 = lcg_step(b, body, n1.into());
        let a1 = masked_addr(b, body, base, words_pow2, n1.into());
        let a2 = masked_addr(b, body, base, words_pow2, n2.into());
        let v1 = b.load(body, MemRef::reg(a1, 0));
        let v2 = b.load(body, MemRef::reg(a2, 0));
        let mix = b.bin(body, BinOp::Add, v1.into(), v2.into());
        // conditional write phase: (i % write_every == 0)
        let m = b.bin(body, BinOp::RemU, i.into(), Operand::imm(write_every));
        let is_w = b.bin(body, BinOp::CmpEq, m.into(), Operand::imm(0));
        let wr = b.block();
        let cont = b.block();
        b.push(
            body,
            Inst::CondBr {
                cond: is_w.into(),
                if_true: wr,
                if_false: cont,
            },
        );
        let w1 = b.bin(wr, BinOp::Add, v1.into(), Operand::imm(1));
        let w2 = b.bin(wr, BinOp::Xor, v2.into(), mix.into());
        b.store(wr, w1.into(), MemRef::reg(a1, 0));
        b.store(wr, w2.into(), MemRef::reg(a2, 0));
        b.push(wr, Inst::Br { target: cont });
        // two-phase state update, grouped at the tail
        b.push(
            cont,
            Inst::Mov {
                dst: state,
                src: n2.into(),
            },
        );
        cont
    });
    exit
}

/// Read-only reduction: `sum += a[(i*stride) % words]`, four elements per
/// iteration (milc/nab-style bandwidth-bound reads, almost no NVM stores).
pub fn reduction(
    b: &mut FunctionBuilder,
    bb: BlockId,
    base: Word,
    words_pow2: Word,
    stride: Word,
    iters: Word,
    out_addr: Word,
) -> BlockId {
    let acc = b.vreg();
    b.push(
        bb,
        Inst::Mov {
            dst: acc,
            src: Operand::imm(0),
        },
    );
    let (_, exit) = build_counted_loop(b, bb, Operand::imm(iters), |b, body, i| {
        let ebase = b.bin(body, BinOp::Mul, i.into(), Operand::imm(UNROLL * stride));
        let mut partial: Operand = Operand::imm(0);
        for k in 0..UNROLL {
            let e = b.bin(body, BinOp::Add, ebase.into(), Operand::imm(k * stride));
            let idx = b.bin(body, BinOp::And, e.into(), Operand::imm(words_pow2 - 1));
            let off = b.bin(body, BinOp::Shl, idx.into(), Operand::imm(3));
            let addr = b.bin(body, BinOp::Add, off.into(), Operand::imm(base));
            let v = b.load(body, MemRef::reg(addr, 0));
            let s = b.bin(body, BinOp::Add, partial, v.into());
            partial = s.into();
        }
        // two-phase accumulator update
        let t = b.bin(body, BinOp::Add, acc.into(), partial);
        b.push(
            body,
            Inst::Mov {
                dst: acc,
                src: t.into(),
            },
        );
    });
    b.store(exit, acc.into(), MemRef::abs(out_addr));
    exit
}

/// Compute-heavy inner loop with rare memory traffic (namd/sjeng/leela-style
/// low-miss compute): `alu_per_iter` dependent ALU ops per iteration, one
/// accumulator update, one store at the very end.
pub fn compute_loop(
    b: &mut FunctionBuilder,
    bb: BlockId,
    scratch: Word,
    iters: Word,
    alu_per_iter: u32,
) -> BlockId {
    let acc = b.vreg();
    b.push(
        bb,
        Inst::Mov {
            dst: acc,
            src: Operand::imm(0x9e3779b9),
        },
    );
    let (_, exit) = build_counted_loop(b, bb, Operand::imm(iters), |b, body, i| {
        let mut cur: Operand = acc.into();
        for k in 0..alu_per_iter {
            let op = match k % 4 {
                0 => BinOp::Mul,
                1 => BinOp::Xor,
                2 => BinOp::Add,
                _ => BinOp::ShrL,
            };
            let imm = Operand::imm(((k as Word) << 3) | 5);
            let r = b.bin(body, op, cur, imm);
            cur = r.into();
        }
        let folded = b.bin(body, BinOp::Xor, cur, i.into());
        // two-phase accumulator update
        let t = b.bin(body, BinOp::Add, acc.into(), folded.into());
        b.push(
            body,
            Inst::Mov {
                dst: acc,
                src: t.into(),
            },
        );
    });
    b.store(exit, acc.into(), MemRef::abs(scratch));
    exit
}

/// Transactional record update (WHISPER tatp/tpcc-style): pick a random
/// record of `rec_words` words, read every field, then write `dirty_words`
/// of them back modified.
#[allow(clippy::too_many_arguments)]
pub fn tx_update(
    b: &mut FunctionBuilder,
    bb: BlockId,
    base: Word,
    records_pow2: Word,
    rec_words: Word,
    dirty_words: Word,
    txs: Word,
    seed: Word,
) -> BlockId {
    let state = b.vreg();
    b.push(
        bb,
        Inst::Mov {
            dst: state,
            src: Operand::imm(seed),
        },
    );
    let (_, exit) = build_counted_loop(b, bb, Operand::imm(txs), |b, body, _i| {
        let nxt = lcg_step(b, body, state.into());
        let h = b.bin(body, BinOp::ShrL, nxt.into(), Operand::imm(11));
        let rec = b.bin(body, BinOp::And, h.into(), Operand::imm(records_pow2 - 1));
        let roff = b.bin(body, BinOp::Mul, rec.into(), Operand::imm(rec_words * 8));
        let rbase = b.bin(body, BinOp::Add, roff.into(), Operand::imm(base));
        // read all fields
        let mut sum: Operand = Operand::imm(0);
        for w in 0..rec_words {
            let v = b.load(body, MemRef::reg(rbase, (w * 8) as i64));
            let s = b.bin(body, BinOp::Add, sum, v.into());
            sum = s.into();
        }
        // write back dirty fields
        for w in 0..dirty_words.min(rec_words) {
            let nv = b.bin(body, BinOp::Add, sum, Operand::imm(w + 1));
            b.store(body, nv.into(), MemRef::reg(rbase, (w * 8) as i64));
        }
        // two-phase LCG state commit
        b.push(
            body,
            Inst::Mov {
                dst: state,
                src: nxt.into(),
            },
        );
    });
    exit
}

/// Scatter pass (radix/sps-style write storm): sequential reads from `src`,
/// pseudo-random writes into `dst`, two elements per iteration.
pub fn scatter(
    b: &mut FunctionBuilder,
    bb: BlockId,
    src: Word,
    dst: Word,
    words_pow2: Word,
    n: Word,
) -> BlockId {
    let iters = (n / 2).max(1);
    let (_, exit) = build_counted_loop(b, bb, Operand::imm(iters), |b, body, i| {
        let i2 = b.bin(body, BinOp::Shl, i.into(), Operand::imm(1));
        let idx1 = b.bin(body, BinOp::And, i2.into(), Operand::imm(words_pow2 - 1));
        let i2b = b.bin(body, BinOp::Add, i2.into(), Operand::imm(1));
        let idx2 = b.bin(body, BinOp::And, i2b.into(), Operand::imm(words_pow2 - 1));
        let off1 = b.bin(body, BinOp::Shl, idx1.into(), Operand::imm(3));
        let off2 = b.bin(body, BinOp::Shl, idx2.into(), Operand::imm(3));
        let sa1 = b.bin(body, BinOp::Add, off1.into(), Operand::imm(src));
        let sa2 = b.bin(body, BinOp::Add, off2.into(), Operand::imm(src));
        let v1 = b.load(body, MemRef::reg(sa1, 0));
        let v2 = b.load(body, MemRef::reg(sa2, 0));
        let h1 = lcg_step(b, body, v1.into());
        let h2 = lcg_step(b, body, v2.into());
        let da1 = masked_addr(b, body, dst, words_pow2, h1.into());
        let da2 = masked_addr(b, body, dst, words_pow2, h2.into());
        b.store(body, v1.into(), MemRef::reg(da1, 0));
        b.store(body, v2.into(), MemRef::reg(da2, 0));
    });
    exit
}

/// Pointer-chase style dependent loads (raytrace/leela/vacation): the next
/// address derives from the loaded value.
pub fn pointer_chase(
    b: &mut FunctionBuilder,
    bb: BlockId,
    base: Word,
    words_pow2: Word,
    steps: Word,
    seed: Word,
) -> BlockId {
    let cur = b.vreg();
    b.push(
        bb,
        Inst::Mov {
            dst: cur,
            src: Operand::imm(seed),
        },
    );
    let (_, exit) = build_counted_loop(b, bb, Operand::imm(steps), |b, body, i| {
        let addr = masked_addr(b, body, base, words_pow2, cur.into());
        let v = b.load(body, MemRef::reg(addr, 0));
        let mixed = b.bin(body, BinOp::Xor, v.into(), i.into());
        let nxt = lcg_step(b, body, mixed.into());
        b.push(
            body,
            Inst::Mov {
                dst: cur,
                src: nxt.into(),
            },
        );
    });
    exit
}

/// Occasional synchronization point (SPLASH3/STAMP lock/barrier behaviour):
/// an atomic fetch-add on a lock word.
pub fn sync_point(b: &mut FunctionBuilder, bb: BlockId, lock_addr: Word) {
    let dst = b.vreg();
    b.push(
        bb,
        Inst::AtomicRmw {
            op: cwsp_ir::inst::AtomicOp::FetchAdd,
            dst,
            addr: MemRef::abs(lock_addr),
            src: Operand::imm(1),
            expected: Operand::imm(0),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::module::Module;

    fn run_kernel(
        build: impl FnOnce(&mut Module, &mut FunctionBuilder, BlockId) -> BlockId,
    ) -> cwsp_ir::interp::Outcome {
        let mut m = Module::new("t");
        let _g = m.add_global("arena", 1 << 20);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let exit = build(&mut m, &mut b, e);
        b.push(exit, Inst::Halt);
        let main = m.add_function(b.build());
        m.set_entry(main);
        m.validate().unwrap();
        cwsp_ir::interp::run(&m, 2_000_000).unwrap()
    }

    #[test]
    fn rmw_sweep_touches_unrolled_elements() {
        let out = run_kernel(|m, b, e| {
            let base = m.global_addr(cwsp_ir::module::GlobalId(0));
            rmw_sweep(b, e, base, 64, 1, 4) // 4 iters × 4 elements
        });
        // every element 0..16 got (0 ^ i) + 1-ish written; at least nonzero
        for k in 0..16u64 {
            assert_ne!(
                out.memory.load(cwsp_ir::layout::GLOBAL_BASE + k * 8),
                0,
                "element {k}"
            );
        }
    }

    #[test]
    fn stencil_writes_sums() {
        let out = run_kernel(|m, b, e| {
            let base = m.global_addr(cwsp_ir::module::GlobalId(0));
            for i in 0..10 {
                b.store(e, Operand::imm(i + 1), MemRef::abs(base + i * 8));
            }
            stencil3(b, e, base, base + 4096, 8)
        });
        let dst = cwsp_ir::layout::GLOBAL_BASE + 4096;
        assert_eq!(out.memory.load(dst + 8), 1 + 2 + 3);
        assert_eq!(out.memory.load(dst + 16), 2 + 3 + 4);
        assert_eq!(out.memory.load(dst + 32), 4 + 5 + 6);
    }

    #[test]
    fn random_walk_terminates_and_writes() {
        let out = run_kernel(|m, b, e| {
            let base = m.global_addr(cwsp_ir::module::GlobalId(0));
            random_walk(b, e, base, 1 << 10, 64, 42, 2)
        });
        assert!(out.steps > 64 * 5);
        assert!(out.memory.nonzero_words() > 4, "writes landed");
    }

    #[test]
    fn reduction_computes_sum() {
        let out = run_kernel(|m, b, e| {
            let base = m.global_addr(cwsp_ir::module::GlobalId(0));
            for i in 0..8 {
                b.store(e, Operand::imm(10), MemRef::abs(base + i * 8));
            }
            // 2 iters × 4 elements × stride 1 = elements 0..8
            reduction(b, e, base, 8, 1, 2, base + 4096)
        });
        assert_eq!(out.memory.load(cwsp_ir::layout::GLOBAL_BASE + 4096), 80);
    }

    #[test]
    fn compute_loop_stores_checksum() {
        let out = run_kernel(|m, b, e| {
            let base = m.global_addr(cwsp_ir::module::GlobalId(0));
            compute_loop(b, e, base + 2048, 20, 8)
        });
        assert_ne!(out.memory.load(cwsp_ir::layout::GLOBAL_BASE + 2048), 0);
    }

    #[test]
    fn tx_update_touches_records() {
        let out = run_kernel(|m, b, e| {
            let base = m.global_addr(cwsp_ir::module::GlobalId(0));
            tx_update(b, e, base, 64, 8, 2, 20, 7)
        });
        assert!(out.memory.nonzero_words() > 10, "dirty fields written");
    }

    #[test]
    fn scatter_moves_data() {
        let out = run_kernel(|m, b, e| {
            let base = m.global_addr(cwsp_ir::module::GlobalId(0));
            for i in 0..16 {
                b.store(e, Operand::imm(100 + i), MemRef::abs(base + i * 8));
            }
            scatter(b, e, base, base + (1 << 15), 16, 16)
        });
        assert!(out.memory.nonzero_words() >= 17);
    }

    #[test]
    fn pointer_chase_terminates() {
        let out = run_kernel(|m, b, e| {
            let base = m.global_addr(cwsp_ir::module::GlobalId(0));
            pointer_chase(b, e, base, 1 << 12, 50, 99)
        });
        assert!(out.steps > 50 * 4);
    }

    #[test]
    fn sync_point_is_atomic() {
        let out = run_kernel(|m, b, e| {
            let base = m.global_addr(cwsp_ir::module::GlobalId(0));
            sync_point(b, e, base);
            sync_point(b, e, base);
            e
        });
        assert_eq!(out.memory.load(cwsp_ir::layout::GLOBAL_BASE), 2);
    }

    #[test]
    fn kernels_compile_with_long_regions() {
        use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
        let mut m = Module::new("t");
        let g = m.add_global("arena", 1 << 16);
        let base = m.global_addr(g);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let x = rmw_sweep(&mut b, e, base, 1 << 10, 8, 50);
        b.push(x, Inst::Halt);
        let main = m.add_function(b.build());
        m.set_entry(main);
        let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
        cwsp_compiler::verify::check_all(&m, &c.module, &c.slices, 500_000).unwrap();
        // ~2 regions per unrolled iteration → ≥ 10 insts per region on avg.
        let total: usize = c.module.inst_count();
        let boundaries = c.stats.boundaries_inserted;
        assert!(
            total / boundaries.max(1) >= 10,
            "regions too short: {total} insts / {boundaries} boundaries"
        );
    }
}
