//! The textual IR round trip holds for every workload and compiled binary:
//! pretty → parse → pretty is a fixpoint, and parsed modules behave
//! identically.

use cwsp::ir::parse::parse_module;
use cwsp::ir::pretty::fmt_module;

#[test]
fn all_workloads_roundtrip_through_text() {
    for w in cwsp::workloads::all() {
        let text = fmt_module(&w.module);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(
            parsed.validate().is_ok(),
            "{}: {:?}",
            w.name,
            parsed.validate()
        );
        assert_eq!(fmt_module(&parsed), text, "{}: not a fixpoint", w.name);
    }
}

#[test]
fn parsed_workload_behaves_identically() {
    for name in ["fft", "tatp", "namd"] {
        let w = cwsp::workloads::by_name(name).unwrap();
        let parsed = parse_module(&fmt_module(&w.module)).unwrap();
        let a = cwsp::ir::interp::run(&w.module, 30_000_000).unwrap();
        let b = cwsp::ir::interp::run(&parsed, 30_000_000).unwrap();
        assert_eq!(a.output, b.output, "{name}");
        assert_eq!(a.return_value, b.return_value, "{name}");
    }
}

#[test]
fn autofenced_binaries_roundtrip_including_flushes_and_pfences() {
    use cwsp::compiler::autofence;
    for name in ["lulesh", "tatp", "kmeans"] {
        let w = cwsp::workloads::by_name(name).unwrap();
        let mut m = w.module.clone();
        autofence::run(&mut m);
        let text = fmt_module(&m);
        assert!(text.contains("flush "), "{name}: text shows flushes");
        assert!(text.contains("pfence"), "{name}: text shows pfences");
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(fmt_module(&parsed), text, "{name}: not a fixpoint");
        let a = cwsp::ir::interp::run(&m, 30_000_000).unwrap();
        let b = cwsp::ir::interp::run(&parsed, 30_000_000).unwrap();
        assert_eq!(a.output, b.output, "{name}");
        assert_eq!(a.return_value, b.return_value, "{name}");
    }
}

#[test]
fn compiled_binaries_roundtrip_including_boundaries_and_ckpts() {
    use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
    let w = cwsp::workloads::by_name("kmeans").unwrap();
    let c = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
    let text = fmt_module(&c.module);
    assert!(text.contains("boundary Rg"), "compiled text shows regions");
    assert!(text.contains("ckpt r"), "compiled text shows checkpoints");
    let parsed = parse_module(&text).unwrap();
    assert_eq!(fmt_module(&parsed), text);
    let a = cwsp::ir::interp::run(&c.module, 30_000_000).unwrap();
    let b = cwsp::ir::interp::run(&parsed, 30_000_000).unwrap();
    assert_eq!(a.output, b.output);
}
