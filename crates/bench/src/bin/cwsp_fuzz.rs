//! `cwsp-fuzz` — the resumable sharded differential-fuzzing farm CLI.
//!
//! ```text
//! cwsp-fuzz [--shards N] [--budget M] [--seed-base S] [--conc-every K]
//!           [--inject-every K] [--schedules N] [--dir PATH] [--resume]
//!           [--check] [--json]
//! ```
//!
//! Runs the campaign described by the flags against the corpus spine under
//! `--dir` (default `results/fuzz`). The run is always crash-durable:
//! corpus, shard progress, and coverage land in one atomic spine batch per
//! module, so a `kill -9` loses at most the module in flight and a second
//! invocation with the same flags completes exactly the missing seeds.
//! `--resume` only changes intent reporting — without it a fresh campaign
//! is expected and any pre-existing progress is called out.
//!
//! `--check` skips fuzzing and audits the existing corpus against its
//! manifest (lost or duplicated entries fail the exit code).
//!
//! Exit codes: 0 — clean; 1 — divergences found (or audit failure);
//! 2 — usage error.

use cwsp_bench::engine::repo_results_dir;
use cwsp_bench::fuzz::{self, FuzzConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    cfg: FuzzConfig,
    dir: PathBuf,
    resume: bool,
    check_only: bool,
    json: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cwsp-fuzz [--shards N] [--budget M] [--seed-base S] [--conc-every K]\n\
         \x20                [--inject-every K] [--schedules N] [--dir PATH] [--resume]\n\
         \x20                [--check] [--json]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        cfg: FuzzConfig::default(),
        dir: repo_results_dir().join("fuzz"),
        resume: false,
        check_only: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> Result<u64, ExitCode> {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(usage)
        };
        match arg.as_str() {
            "--shards" => opts.cfg.shards = num(&mut args)?.max(1),
            "--budget" => opts.cfg.budget = num(&mut args)?,
            "--seed-base" => opts.cfg.seed_base = num(&mut args)?,
            "--conc-every" => opts.cfg.conc_every = num(&mut args)?,
            "--inject-every" => opts.cfg.inject_every = num(&mut args)?,
            "--schedules" => opts.cfg.schedules = num(&mut args)?.max(1) as usize,
            "--max-steps" => opts.cfg.max_steps = num(&mut args)?.max(1),
            "--dir" => opts.dir = PathBuf::from(args.next().ok_or_else(usage)?),
            "--resume" => opts.resume = true,
            "--check" => opts.check_only = true,
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("cwsp-fuzz: unknown flag {other:?}");
                return Err(usage());
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    if opts.check_only {
        let check = match fuzz::manifest_check(&opts.dir, &opts.cfg) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cwsp-fuzz: audit failed: {e}");
                return ExitCode::from(2);
            }
        };
        if opts.json {
            print!(
                "{}",
                fuzz::report_json(&fuzz::FuzzReport::default(), &check)
            );
        } else {
            println!(
                "corpus audit: {}/{} present, {} duplicated, {} missing, {} divergences",
                check.present,
                check.expected,
                check.duplicated,
                check.missing.len(),
                check.divergences
            );
        }
        return if check.is_complete() && check.divergences == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let report = match fuzz::run(&opts.dir, &opts.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cwsp-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    if report.resumed > 0 && !opts.resume {
        eprintln!(
            "cwsp-fuzz: note: {} seeds already in the corpus were skipped (resumed campaign; \
             pass --resume to silence this)",
            report.resumed
        );
    }
    let check = match fuzz::manifest_check(&opts.dir, &opts.cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cwsp-fuzz: audit failed: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print!("{}", fuzz::report_json(&report, &check));
    } else {
        print!("{}", fuzz::render_report(&report));
        println!(
            "corpus audit: {}/{} present, {} duplicated, {} missing",
            check.present,
            check.expected,
            check.duplicated,
            check.missing.len()
        );
    }
    if report.divergences.is_empty() && check.is_complete() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
