//! Control-flow graph utilities: successors/predecessors, reverse post-order,
//! and natural-loop-header detection (the region-formation pass places a
//! boundary at each loop header, §IV-A).

use crate::function::{BlockId, Function};
use crate::inst::Inst;

/// Successor blocks of `block` in `f`.
pub fn successors(f: &Function, block: BlockId) -> Vec<BlockId> {
    match f.block(block).insts.last() {
        Some(Inst::Br { target }) => vec![*target],
        Some(Inst::CondBr {
            if_true, if_false, ..
        }) => {
            if if_true == if_false {
                vec![*if_true]
            } else {
                vec![*if_true, *if_false]
            }
        }
        _ => Vec::new(),
    }
}

/// Predecessor lists for every block, indexed by block id.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for (bid, _) in f.iter_blocks() {
        for s in successors(f, bid) {
            preds[s.index()].push(bid);
        }
    }
    preds
}

/// Blocks reachable from entry, in reverse post-order (defs before uses of
/// control flow; suitable for forward dataflow).
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit state: (block, next successor index).
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    visited[f.entry().index()] = true;
    while let Some((b, i)) = stack.pop() {
        let succs = successors(f, b);
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// Detect loop headers via DFS back edges: a block is a loop header if some
/// reachable edge `u -> h` has `h` on the DFS stack ("retreating" edge on a
/// reducible CFG).
///
/// This is the standard natural-loop approximation; our builder-produced CFGs
/// are reducible, where back edge == retreating edge.
///
/// # Example
/// ```
/// use cwsp_ir::prelude::*;
/// use cwsp_ir::builder::build_counted_loop;
/// use cwsp_ir::cfg::loop_headers;
///
/// let mut b = FunctionBuilder::new("f", 0);
/// let e = b.entry();
/// let (header, exit) = build_counted_loop(&mut b, e, Operand::imm(4), |_, _, _| {});
/// b.push(exit, Inst::Halt);
/// let f = b.build();
/// assert!(loop_headers(&f).contains(&header));
/// ```
pub fn loop_headers(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut color = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
    let mut headers = vec![false; n];
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    color[f.entry().index()] = 1;
    while let Some((b, i)) = stack.pop() {
        let succs = successors(f, b);
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            match color[s.index()] {
                0 => {
                    color[s.index()] = 1;
                    stack.push((s, 0));
                }
                1 => headers[s.index()] = true, // back edge
                _ => {}
            }
        } else {
            color[b.index()] = 2;
        }
    }
    headers
        .iter()
        .enumerate()
        .filter(|(_, &h)| h)
        .map(|(i, _)| BlockId(i as u32))
        .collect()
}

/// Immediate dominators via the Cooper–Harvey–Kennedy iterative algorithm.
///
/// Returns `idom[b]` for every reachable block (`idom[entry] == entry`);
/// unreachable blocks map to `None`.
pub fn immediate_dominators(f: &Function) -> Vec<Option<BlockId>> {
    let rpo = reverse_post_order(f);
    let n = f.blocks.len();
    let mut order_of = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        order_of[b.index()] = i;
    }
    let preds = predecessors(f);
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[f.entry().index()] = Some(f.entry());

    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| {
        while a != b {
            while order_of[a.index()] > order_of[b.index()] {
                a = idom[a.index()].expect("processed");
            }
            while order_of[b.index()] > order_of[a.index()] {
                b = idom[b.index()].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue; // unreachable or not yet processed
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// A precomputed dominator tree plus reverse post-order, bundling the
/// reachability/ordering queries forward analyses keep re-deriving.
///
/// # Example
/// ```
/// use cwsp_ir::prelude::*;
/// use cwsp_ir::cfg::DomTree;
///
/// let mut b = FunctionBuilder::new("f", 0);
/// let e = b.entry();
/// b.push(e, Inst::Halt);
/// let f = b.build();
/// let dom = DomTree::compute(&f);
/// assert!(dom.dominates(e, e));
/// assert_eq!(dom.rpo(), &[e]);
/// ```
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
    children: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_pos: Vec<Option<usize>>,
}

impl DomTree {
    /// Build the tree for `f` (see [`immediate_dominators`]).
    pub fn compute(f: &Function) -> Self {
        let idom = immediate_dominators(f);
        let rpo = reverse_post_order(f);
        let mut rpo_pos = vec![None; f.blocks.len()];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = Some(i);
        }
        let mut children = vec![Vec::new(); f.blocks.len()];
        for (i, d) in idom.iter().enumerate() {
            if let Some(d) = d {
                let b = BlockId(i as u32);
                if *d != b {
                    children[d.index()].push(b);
                }
            }
        }
        DomTree {
            idom,
            children,
            rpo,
            rpo_pos,
        }
    }

    /// Immediate dominator of `b` (`idom(entry) == entry`); `None` for
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive). Unreachable blocks dominate
    /// nothing and are dominated only by themselves.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        dominates(&self.idom, a, b)
    }

    /// Blocks whose immediate dominator is `b` (the tree's children).
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// Reachable blocks in reverse post-order.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse post-order; `None` when unreachable.
    pub fn rpo_position(&self, b: BlockId) -> Option<usize> {
        self.rpo_pos[b.index()]
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()].is_some()
    }
}

/// A post-dominator tree over the reversed CFG, mirroring [`DomTree`].
///
/// Functions may have several exits (`Halt`, `Ret`, or malformed blocks with
/// no successor), so the reversed graph is rooted at a *virtual exit* that
/// every exit block edges to. `ipdom` maps each block to its immediate
/// post-dominator; exit blocks (whose only post-dominator is the virtual
/// exit) and unreachable blocks map to `None`, distinguished by
/// [`PostDomTree::is_exit_reaching`].
///
/// Shared by the race detector's release-side ordering proof (an access is
/// guaranteed to be followed by a release sync iff the sync's block
/// post-dominates it) and by witness pruning.
///
/// # Example
/// ```
/// use cwsp_ir::prelude::*;
/// use cwsp_ir::cfg::PostDomTree;
///
/// let mut b = FunctionBuilder::new("f", 0);
/// let e = b.entry();
/// b.push(e, Inst::Halt);
/// let f = b.build();
/// let pdom = PostDomTree::compute(&f);
/// assert!(pdom.postdominates(e, e));
/// ```
#[derive(Debug, Clone)]
pub struct PostDomTree {
    ipdom: Vec<Option<BlockId>>,
    /// Blocks from which some exit is reachable (the virtual root's domain).
    exit_reaching: Vec<bool>,
}

impl PostDomTree {
    /// Build the post-dominator tree for `f` via Cooper–Harvey–Kennedy on
    /// the reversed CFG with a virtual exit node.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        // Exits: blocks with no successors (Halt/Ret terminators, or
        // malformed blocks that fall off the end).
        let exits: Vec<BlockId> = (0..n)
            .map(|i| BlockId(i as u32))
            .filter(|&b| successors(f, b).is_empty())
            .collect();

        // Reverse post-order of the *reversed* graph from the virtual exit,
        // i.e. a post-order-derived ordering where a block's successors (its
        // reverse-graph predecessors' sources) come first. We index the
        // virtual exit as `n`.
        let preds_fwd = predecessors(f); // reverse-graph successors
        let mut visited = vec![false; n + 1];
        let mut post: Vec<usize> = Vec::with_capacity(n + 1);
        let mut stack: Vec<(usize, usize)> = vec![(n, 0)];
        visited[n] = true;
        let rev_succs = |b: usize| -> Vec<usize> {
            if b == n {
                exits.iter().map(|e| e.index()).collect()
            } else {
                preds_fwd[b].iter().map(|p| p.index()).collect()
            }
        };
        while let Some((b, i)) = stack.pop() {
            let succs = rev_succs(b);
            if i < succs.len() {
                stack.push((b, i + 1));
                let s = succs[i];
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse(); // RPO of the reversed graph, virtual exit first

        let mut order_of = vec![usize::MAX; n + 1];
        for (i, &b) in post.iter().enumerate() {
            order_of[b] = i;
        }

        // succs_fwd are the reversed graph's predecessors.
        let succs_fwd: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut s: Vec<usize> = successors(f, BlockId(i as u32))
                    .iter()
                    .map(|b| b.index())
                    .collect();
                if exits.iter().any(|e| e.index() == i) {
                    s.push(n); // exit blocks edge to the virtual exit
                }
                s
            })
            .collect();

        let mut ipdom: Vec<Option<usize>> = vec![None; n + 1];
        ipdom[n] = Some(n);
        let intersect = |ipdom: &[Option<usize>], mut a: usize, mut b: usize| {
            while a != b {
                while order_of[a] > order_of[b] {
                    a = ipdom[a].expect("processed");
                }
                while order_of[b] > order_of[a] {
                    b = ipdom[b].expect("processed");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in post.iter().skip(1) {
                let mut new_ipdom: Option<usize> = None;
                for &s in &succs_fwd[b] {
                    if ipdom[s].is_none() {
                        continue;
                    }
                    new_ipdom = Some(match new_ipdom {
                        None => s,
                        Some(cur) => intersect(&ipdom, cur, s),
                    });
                }
                if let Some(ni) = new_ipdom {
                    if ipdom[b] != Some(ni) {
                        ipdom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        PostDomTree {
            exit_reaching: (0..n).map(|i| ipdom[i].is_some()).collect(),
            ipdom: (0..n)
                .map(|i| match ipdom[i] {
                    Some(p) if p < n => Some(BlockId(p as u32)),
                    _ => None, // virtual exit or exit-unreachable
                })
                .collect(),
        }
    }

    /// Immediate post-dominator of `b`; `None` when `b` is an exit block
    /// (its ipdom is the virtual exit) or cannot reach an exit.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }

    /// Whether some exit block is reachable from `b` (equivalently, whether
    /// `b` participates in the tree at all).
    pub fn is_exit_reaching(&self, b: BlockId) -> bool {
        self.exit_reaching[b.index()]
    }

    /// Whether `a` post-dominates `b` (reflexive): every path from `b` to
    /// any exit passes through `a`. Blocks that cannot reach an exit are
    /// post-dominated only by themselves.
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom[cur.index()] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

/// Whether `a` dominates `b` (per [`immediate_dominators`]).
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.index()] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_counted_loop, FunctionBuilder};
    use crate::inst::Operand;

    fn loop_fn() -> (Function, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let (h, x) = build_counted_loop(&mut b, e, Operand::imm(4), |_, _, _| {});
        b.push(x, Inst::Halt);
        (b.build(), h, x)
    }

    #[test]
    fn successors_and_preds() {
        let (f, header, exit) = loop_fn();
        let succs = successors(&f, header);
        assert_eq!(succs.len(), 2);
        assert!(succs.contains(&exit));
        let preds = predecessors(&f);
        // header has 2 preds: entry and latch
        assert_eq!(preds[header.index()].len(), 2);
        assert!(successors(&f, exit).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let (f, _, _) = loop_fn();
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), f.blocks.len(), "all blocks reachable here");
        // each block appears once
        let mut sorted: Vec<_> = rpo.iter().map(|b| b.index()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), rpo.len());
    }

    #[test]
    fn loop_header_detected() {
        let (f, header, _) = loop_fn();
        assert_eq!(loop_headers(&f), vec![header]);
    }

    #[test]
    fn straight_line_has_no_headers() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        b.push(e, Inst::Halt);
        let f = b.build();
        assert!(loop_headers(&f).is_empty());
    }

    #[test]
    fn dominators_of_diamond() {
        // entry -> a | b -> join
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let join = bld.block();
        let c = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: a,
                if_false: b2,
            },
        );
        bld.push(a, Inst::Br { target: join });
        bld.push(b2, Inst::Br { target: join });
        bld.push(join, Inst::Halt);
        let f = bld.build();
        let idom = immediate_dominators(&f);
        assert_eq!(idom[e.index()], Some(e));
        assert_eq!(idom[a.index()], Some(e));
        assert_eq!(idom[b2.index()], Some(e));
        assert_eq!(
            idom[join.index()],
            Some(e),
            "join's idom is the branch, not an arm"
        );
        assert!(dominates(&idom, e, join));
        assert!(!dominates(&idom, a, join));
        assert!(dominates(&idom, join, join));
    }

    #[test]
    fn dominators_of_loop() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let (header, exit) = build_counted_loop(&mut bld, e, Operand::imm(3), |_, _, _| {});
        bld.push(exit, Inst::Halt);
        let f = bld.build();
        let idom = immediate_dominators(&f);
        assert_eq!(idom[header.index()], Some(e));
        assert!(dominates(&idom, header, exit));
        assert!(dominates(&idom, e, header));
        // the body is dominated by the header
        let body = cfg_body_of(&f, header);
        assert!(dominates(&idom, header, body));
    }

    fn cfg_body_of(f: &Function, header: BlockId) -> BlockId {
        successors(f, header)[0]
    }

    #[test]
    fn dom_tree_on_diamond_exposes_children_and_rpo() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let join = bld.block();
        let c = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: a,
                if_false: b2,
            },
        );
        bld.push(a, Inst::Br { target: join });
        bld.push(b2, Inst::Br { target: join });
        bld.push(join, Inst::Halt);
        let f = bld.build();
        let dom = DomTree::compute(&f);
        // Entry immediately dominates all three other blocks.
        let mut kids = dom.children(e).to_vec();
        kids.sort();
        assert_eq!(kids, vec![a, b2, join]);
        assert!(dom.children(a).is_empty());
        assert_eq!(dom.idom(join), Some(e));
        assert!(dom.dominates(e, join));
        assert!(!dom.dominates(a, join));
        // RPO: entry first, join after both arms.
        assert_eq!(dom.rpo_position(e), Some(0));
        assert!(dom.rpo_position(join) > dom.rpo_position(a).max(dom.rpo_position(b2)));
        assert!(dom.is_reachable(join));
    }

    #[test]
    fn dom_tree_on_irreducible_cfg() {
        // entry -> {a, b}; a -> b; b -> a. The cycle has two entry points,
        // so neither a nor b dominates the other; both have idom == entry.
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let c = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: a,
                if_false: b2,
            },
        );
        bld.push(a, Inst::Br { target: b2 });
        bld.push(b2, Inst::Br { target: a });
        let f = bld.build();
        assert!(f.validate().is_ok());
        let dom = DomTree::compute(&f);
        assert_eq!(dom.idom(a), Some(e));
        assert_eq!(dom.idom(b2), Some(e));
        assert!(!dom.dominates(a, b2));
        assert!(!dom.dominates(b2, a));
        assert!(dom.dominates(e, a) && dom.dominates(e, b2));
        let mut kids = dom.children(e).to_vec();
        kids.sort();
        assert_eq!(kids, vec![a, b2]);
    }

    #[test]
    fn dom_tree_marks_unreachable_blocks() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let dead = bld.block();
        bld.push(e, Inst::Halt);
        bld.push(dead, Inst::Halt);
        let f = bld.build();
        let dom = DomTree::compute(&f);
        assert!(!dom.is_reachable(dead));
        assert_eq!(dom.idom(dead), None);
        assert_eq!(dom.rpo_position(dead), None);
        assert_eq!(dom.rpo(), &[e]);
        assert!(
            !dom.dominates(e, dead),
            "unreachable blocks are dominated only by themselves"
        );
    }

    #[test]
    fn postdominators_of_diamond() {
        // entry -> a | b -> join: the join post-dominates everything; the
        // arms post-dominate nothing but themselves.
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let join = bld.block();
        let c = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: a,
                if_false: b2,
            },
        );
        bld.push(a, Inst::Br { target: join });
        bld.push(b2, Inst::Br { target: join });
        bld.push(join, Inst::Halt);
        let f = bld.build();
        let pdom = PostDomTree::compute(&f);
        assert_eq!(pdom.ipdom(e), Some(join), "join, not an arm, is e's ipdom");
        assert_eq!(pdom.ipdom(a), Some(join));
        assert_eq!(pdom.ipdom(b2), Some(join));
        assert_eq!(pdom.ipdom(join), None, "exit block's ipdom is virtual");
        assert!(pdom.postdominates(join, e));
        assert!(pdom.postdominates(join, a));
        assert!(!pdom.postdominates(a, e));
        assert!(pdom.postdominates(e, e));
        assert!(pdom.is_exit_reaching(e));
    }

    #[test]
    fn postdominators_of_loop() {
        let (f, header, exit) = loop_fn();
        let pdom = PostDomTree::compute(&f);
        // Every path out of the body goes back through the header and then
        // the exit: both post-dominate the body.
        let body = cfg_body_of(&f, header);
        assert!(pdom.postdominates(header, body));
        assert!(pdom.postdominates(exit, body));
        assert!(pdom.postdominates(exit, f.entry()));
        assert!(!pdom.postdominates(body, header), "body may be skipped");
    }

    #[test]
    fn postdominators_with_two_exits() {
        // entry -> halt_a | halt_b: neither exit post-dominates the other,
        // and nothing but entry itself post-dominates entry.
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let xa = bld.block();
        let xb = bld.block();
        let c = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: xa,
                if_false: xb,
            },
        );
        bld.push(xa, Inst::Halt);
        bld.push(xb, Inst::Halt);
        let f = bld.build();
        let pdom = PostDomTree::compute(&f);
        assert_eq!(pdom.ipdom(e), None, "e's ipdom is the virtual exit");
        assert!(!pdom.postdominates(xa, e));
        assert!(!pdom.postdominates(xb, e));
        assert!(pdom.postdominates(e, e));
        assert!(pdom.is_exit_reaching(e));
    }

    #[test]
    fn postdom_tree_on_irreducible_cfg() {
        // entry -> {a, b}; a -> b; b -> a | exit. The a<->b cycle has two
        // entries; only the exit-side block post-dominates the other.
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let exit = bld.block();
        let c = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: a,
                if_false: b2,
            },
        );
        bld.push(a, Inst::Br { target: b2 });
        bld.push(
            b2,
            Inst::CondBr {
                cond: c.into(),
                if_true: a,
                if_false: exit,
            },
        );
        bld.push(exit, Inst::Halt);
        let f = bld.build();
        assert!(f.validate().is_ok());
        let pdom = PostDomTree::compute(&f);
        assert!(pdom.postdominates(b2, a), "a's only way out is through b2");
        assert!(pdom.postdominates(b2, e));
        assert!(!pdom.postdominates(a, b2), "b2 can exit without a");
        assert!(pdom.postdominates(exit, e));
        assert_eq!(pdom.ipdom(exit), None);
    }

    #[test]
    fn postdom_marks_exit_unreachable_blocks() {
        // entry -> spin; spin -> spin: the infinite loop never reaches an
        // exit, so it is post-dominated only by itself.
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let spin = bld.block();
        bld.push(e, Inst::Br { target: spin });
        bld.push(spin, Inst::Br { target: spin });
        let f = bld.build();
        let pdom = PostDomTree::compute(&f);
        assert!(!pdom.is_exit_reaching(spin));
        assert!(!pdom.is_exit_reaching(e), "entry only leads into the loop");
        assert_eq!(pdom.ipdom(spin), None);
        assert!(pdom.postdominates(spin, spin));
        assert!(!pdom.postdominates(spin, e));
    }

    #[test]
    fn nested_loops_both_detected() {
        // Hand-built CFG:
        //   entry -> outer_h; outer_h -> inner_h | exit;
        //   inner_h -> inner_body | outer_latch; inner_body -> inner_h;
        //   outer_latch -> outer_h; exit: halt
        use crate::inst::BinOp;
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let outer_h = b.block();
        let inner_h = b.block();
        let inner_body = b.block();
        let outer_latch = b.block();
        let exit = b.block();
        let i = b.vreg();
        let j = b.vreg();
        b.push(
            e,
            Inst::Mov {
                dst: i,
                src: Operand::imm(0),
            },
        );
        b.push(e, Inst::Br { target: outer_h });
        let c1 = b.bin(outer_h, BinOp::CmpLtU, i.into(), Operand::imm(3));
        b.push(
            outer_h,
            Inst::CondBr {
                cond: c1.into(),
                if_true: inner_h,
                if_false: exit,
            },
        );
        let c2 = b.bin(inner_h, BinOp::CmpLtU, j.into(), Operand::imm(2));
        b.push(
            inner_h,
            Inst::CondBr {
                cond: c2.into(),
                if_true: inner_body,
                if_false: outer_latch,
            },
        );
        b.push(
            inner_body,
            Inst::Binary {
                op: BinOp::Add,
                dst: j,
                lhs: j.into(),
                rhs: Operand::imm(1),
            },
        );
        b.push(inner_body, Inst::Br { target: inner_h });
        b.push(
            outer_latch,
            Inst::Binary {
                op: BinOp::Add,
                dst: i,
                lhs: i.into(),
                rhs: Operand::imm(1),
            },
        );
        b.push(outer_latch, Inst::Br { target: outer_h });
        b.push(exit, Inst::Halt);
        let f = b.build();
        assert!(f.validate().is_ok(), "{:?}", f.validate());
        let headers = loop_headers(&f);
        assert!(headers.contains(&outer_h));
        assert!(headers.contains(&inner_h));
        assert_eq!(headers.len(), 2);
    }
}
