//! Figure 27: NVM technology sensitivity (paper: ≤ 8% for PMEM, STT-MRAM,
//! and ReRAM; marginally higher overhead on faster media).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::{MainMemory, NvmTech, SimConfig};
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig27_nvm_tech", run);
}

fn run() {
    let apps = cwsp_workloads::all();
    println!("\n=== Fig 27: NVM technology sweep ===");
    for (label, tech) in [
        ("PMEM", NvmTech::Pmem),
        ("STTRAM", NvmTech::SttMram),
        ("ReRAM", NvmTech::ReRam),
    ] {
        let cfg = SimConfig {
            main_memory: MainMemory::Nvm(tech),
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| {
            slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
        });
        println!("-- {label}");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
