//! Chrome trace-event JSON output.
//!
//! Builds the JSON-object trace format consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of phase
//! events. We emit:
//!
//! * `ph:"X"` **complete** spans (a name, a start timestamp, a duration) —
//!   region lifetimes, stall intervals, compiler passes;
//! * `ph:"i"` **instant** events — persist arrivals, undo-log appends,
//!   power failure;
//! * `ph:"C"` **counter** events — occupancy series;
//! * `ph:"M"` **metadata** — process/thread names, which is how cores and
//!   memory controllers become named tracks.
//!
//! Timestamps are in trace "microseconds" but carry **simulated cycles**
//! (1 µs = 1 cycle); the viewer's absolute numbers then read directly as
//! cycles. Events are kept in insertion order; the format does not require
//! sorting.

use std::fmt::Write as _;

/// An argument value attached to an event (`args` object in the JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Integer payload.
    Int(u64),
    /// Float payload.
    Float(f64),
    /// String payload.
    Str(String),
    /// Boolean payload.
    Bool(bool),
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Display name.
    pub name: String,
    /// Category (comma-separated tags; used by viewer filters).
    pub cat: String,
    /// Phase: `'X'` complete, `'i'` instant, `'C'` counter, `'M'` metadata.
    pub ph: char,
    /// Timestamp (simulated cycles).
    pub ts: u64,
    /// Duration in cycles (`ph:'X'` only).
    pub dur: Option<u64>,
    /// Process id (track group).
    pub pid: u64,
    /// Thread id (track within the group).
    pub tid: u64,
    /// Event arguments.
    pub args: Vec<(String, Arg)>,
}

/// A trace under construction.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
}

/// The single simulated process all tracks live under.
pub const PID: u64 = 1;

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Name the process (shown as the track-group header).
    pub fn process_name(&mut self, name: &str) {
        self.events.push(ChromeEvent {
            name: "process_name".into(),
            cat: "__metadata".into(),
            ph: 'M',
            ts: 0,
            dur: None,
            pid: PID,
            tid: 0,
            args: vec![("name".into(), Arg::Str(name.into()))],
        });
    }

    /// Name a track (e.g. `core 0`, `mc 1`).
    pub fn thread_name(&mut self, tid: u64, name: &str) {
        self.events.push(ChromeEvent {
            name: "thread_name".into(),
            cat: "__metadata".into(),
            ph: 'M',
            ts: 0,
            dur: None,
            pid: PID,
            tid,
            args: vec![("name".into(), Arg::Str(name.into()))],
        });
    }

    /// A complete span of `dur` cycles starting at `ts` on track `tid`.
    pub fn complete(
        &mut self,
        tid: u64,
        cat: &str,
        name: &str,
        ts: u64,
        dur: u64,
        args: Vec<(String, Arg)>,
    ) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat: cat.into(),
            ph: 'X',
            ts,
            dur: Some(dur.max(1)),
            pid: PID,
            tid,
            args,
        });
    }

    /// An instant event at `ts` on track `tid`.
    pub fn instant(&mut self, tid: u64, cat: &str, name: &str, ts: u64, args: Vec<(String, Arg)>) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat: cat.into(),
            ph: 'i',
            ts,
            dur: None,
            pid: PID,
            tid,
            args,
        });
    }

    /// A counter sample at `ts` (each arg becomes one series).
    pub fn counter(&mut self, tid: u64, name: &str, ts: u64, series: Vec<(String, Arg)>) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat: "counter".into(),
            ph: 'C',
            ts,
            dur: None,
            pid: PID,
            tid,
            args: series,
        });
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[ChromeEvent] {
        &self.events
    }

    /// Number of complete (`ph:'X'`) spans on track `tid`.
    pub fn complete_spans_on(&self, tid: u64) -> usize {
        self.events
            .iter()
            .filter(|e| e.ph == 'X' && e.tid == tid)
            .count()
    }

    /// Track ids that carry at least one non-metadata event.
    pub fn tracks(&self) -> Vec<u64> {
        let mut tids: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.ph != 'M')
            .map(|e| e.tid)
            .collect();
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// Serialize as the JSON-object trace format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  {\"name\": ");
            crate::json_escape(&mut out, &e.name);
            out.push_str(", \"cat\": ");
            crate::json_escape(&mut out, &e.cat);
            let _ = write!(
                out,
                ", \"ph\": \"{}\", \"ts\": {}, \"pid\": {}, \"tid\": {}",
                e.ph, e.ts, e.pid, e.tid
            );
            if let Some(d) = e.dur {
                let _ = write!(out, ", \"dur\": {d}");
            }
            if e.ph == 'i' {
                // Instant scope: thread.
                out.push_str(", \"s\": \"t\"");
            }
            if !e.args.is_empty() {
                out.push_str(", \"args\": {");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    crate::json_escape(&mut out, k);
                    out.push_str(": ");
                    match v {
                        Arg::Int(n) => {
                            let _ = write!(out, "{n}");
                        }
                        Arg::Float(f) => crate::json_f64(&mut out, *f),
                        Arg::Str(s) => crate::json_escape(&mut out, s),
                        Arg::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_tracks_spans_and_instants() {
        let mut t = ChromeTrace::new();
        t.process_name("cwsp-sim");
        t.thread_name(0, "core 0");
        t.thread_name(1000, "mc 0");
        t.complete(
            0,
            "region",
            "dyn3",
            100,
            50,
            vec![("insts".into(), Arg::Int(12))],
        );
        t.instant(1000, "persist", "arrive", 120, vec![]);
        assert_eq!(t.complete_spans_on(0), 1);
        assert_eq!(t.complete_spans_on(1000), 0);
        assert_eq!(t.tracks(), vec![0, 1000]);
    }

    #[test]
    fn json_shape_is_chrome_compatible() {
        let mut t = ChromeTrace::new();
        t.thread_name(0, "core 0");
        t.complete(
            0,
            "stall",
            "stall:pb",
            7,
            3,
            vec![("region".into(), Arg::Str("dyn1".into()))],
        );
        t.instant(
            0,
            "power",
            "POWER FAILURE",
            11,
            vec![("bool".into(), Arg::Bool(true))],
        );
        t.counter(0, "occupancy", 5, vec![("wb".into(), Arg::Int(4))]);
        let j = t.to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("\"dur\": 3"));
        assert!(j.contains("\"ph\": \"i\""));
        assert!(j.contains("\"s\": \"t\""));
        assert!(j.contains("\"ph\": \"C\""));
        assert!(j.contains("\"ph\": \"M\""));
        // Balanced braces/brackets (cheap structural sanity; the full parse
        // check lives in the bench crate, which has the JSON parser).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn zero_duration_spans_are_widened_to_render() {
        let mut t = ChromeTrace::new();
        t.complete(0, "c", "x", 5, 0, vec![]);
        assert_eq!(t.events()[0].dur, Some(1));
    }
}
