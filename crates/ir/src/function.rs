//! Functions and basic blocks.

use crate::inst::Inst;
use std::fmt;

/// Identifier of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Dense index for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of an instruction within a basic block.
pub type InstIdx = usize;

/// A basic block: a straight-line instruction sequence ending in a terminator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// The instructions of this block; the last one is the terminator.
    pub insts: Vec<Inst>,
}

impl Block {
    /// The block's terminator, if the block is complete.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }
}

/// An IR function: a CFG of basic blocks plus parameter/register counts.
///
/// Registers `r0..r{param_count}` hold the arguments on entry (loaded from the
/// caller's stack frame, see [`crate::inst::Inst::Call`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Human-readable name (diagnostics and pretty-printing only).
    pub name: String,
    /// Number of parameters; parameters occupy registers `r0..r{param_count}`.
    pub param_count: u32,
    /// Total number of virtual registers used (dense `0..reg_count`).
    pub reg_count: u32,
    /// Basic blocks, indexed by [`BlockId`]. Block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The block with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterate over `(BlockId, &Block)` pairs in id order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total number of instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Validate structural invariants: every block non-empty and terminated,
    /// terminators only at block ends, branch targets in range, register ids
    /// within `reg_count`.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err(format!("function {}: no blocks", self.name));
        }
        for (bid, block) in self.iter_blocks() {
            if block.insts.is_empty() {
                return Err(format!("{}/{bid}: empty block", self.name));
            }
            for (i, inst) in block.insts.iter().enumerate() {
                let last = i + 1 == block.insts.len();
                if inst.is_terminator() != last {
                    return Err(format!(
                        "{}/{bid}[{i}]: terminator placement invalid: {inst:?}",
                        self.name
                    ));
                }
                let mut regs = inst.uses();
                regs.extend(inst.def());
                for r in regs {
                    if r.0 >= self.reg_count {
                        return Err(format!(
                            "{}/{bid}[{i}]: register {r} out of range (reg_count={})",
                            self.name, self.reg_count
                        ));
                    }
                }
                let check_target = |t: BlockId| {
                    if t.index() >= self.blocks.len() {
                        Err(format!(
                            "{}/{bid}[{i}]: branch target {t} out of range",
                            self.name
                        ))
                    } else {
                        Ok(())
                    }
                };
                match inst {
                    Inst::Br { target } => check_target(*target)?,
                    Inst::CondBr {
                        if_true, if_false, ..
                    } => {
                        check_target(*if_true)?;
                        check_target(*if_false)?;
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Operand};
    use crate::types::Reg;

    fn ret_fn() -> Function {
        Function {
            name: "f".into(),
            param_count: 0,
            reg_count: 2,
            blocks: vec![Block {
                insts: vec![
                    Inst::Mov {
                        dst: Reg(0),
                        src: Operand::imm(1),
                    },
                    Inst::Ret {
                        val: Some(Reg(0).into()),
                    },
                ],
            }],
        }
    }

    #[test]
    fn validate_ok() {
        assert!(ret_fn().validate().is_ok());
    }

    #[test]
    fn validate_catches_missing_terminator() {
        let mut f = ret_fn();
        f.blocks[0].insts.pop();
        let err = f.validate().unwrap_err();
        assert!(err.contains("terminator"), "{err}");
    }

    #[test]
    fn validate_catches_mid_block_terminator() {
        let mut f = ret_fn();
        f.blocks[0].insts.insert(0, Inst::Ret { val: None });
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_catches_reg_out_of_range() {
        let mut f = ret_fn();
        f.blocks[0].insts[0] = Inst::binary(BinOp::Add, Reg(9), Reg(0).into(), Reg(1).into());
        let err = f.validate().unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn validate_catches_bad_branch_target() {
        let mut f = ret_fn();
        f.blocks[0].insts[1] = Inst::Br { target: BlockId(5) };
        assert!(f.validate().is_err());
    }

    #[test]
    fn inst_count_and_iter() {
        let f = ret_fn();
        assert_eq!(f.inst_count(), 2);
        assert_eq!(f.iter_blocks().count(), 1);
        assert_eq!(f.entry(), BlockId(0));
        assert!(f.block(BlockId(0)).terminator().is_some());
    }
}
