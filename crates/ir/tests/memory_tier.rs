//! Differential and property tests for the tiered page store behind
//! `ir::Memory`: under any resident budget the tier must be semantically
//! invisible — unwritten words read zero, zero stores never materialize
//! state, `iter`/`nonzero_words`/`eq` agree with an unbounded memory — while
//! the budget invariant (resident pages ≤ budget) holds throughout.

use cwsp_ir::{with_budget_override, Memory};
use cwsp_store::PAGE_WORDS;

/// SplitMix64 — deterministic op-stream generator, no external crates.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Word-aligned address inside an `npages`-page window (sparse bases mixed in
/// so the page map, not contiguity, is what's exercised).
fn addr(r: &mut Rng, npages: u64) -> u64 {
    let bases = [0u64, 1 << 20, 1 << 33, (u64::MAX - npages * 4096) & !4095];
    let base = bases[(r.next() % 4) as usize];
    let page = r.next() % npages;
    let word = r.next() % PAGE_WORDS as u64;
    base + page * 4096 + word * 8
}

fn assert_same(tiered: &Memory, flat: &Memory, probe: &[u64], ctx: &str) {
    assert_eq!(
        tiered.nonzero_words(),
        flat.nonzero_words(),
        "{ctx}: nonzero_words"
    );
    assert!(tiered.eq(flat), "{ctx}: eq(tiered, flat)");
    assert!(flat.eq(tiered), "{ctx}: eq(flat, tiered)");
    let mut t: Vec<(u64, u64)> = tiered.iter().collect();
    let mut f: Vec<(u64, u64)> = flat.iter().collect();
    t.sort_unstable();
    f.sort_unstable();
    assert_eq!(t, f, "{ctx}: iter contents");
    for &a in probe {
        assert_eq!(tiered.load(a), flat.load(a), "{ctx}: load {a:#x}");
    }
}

/// The core differential property: a random load/store stream (zero stores
/// included, so spill-then-zero and zero-to-spilled paths fire) behaves
/// identically under budgets from 1 page up, and the budget is never
/// exceeded.
#[test]
fn differential_random_streams_across_budgets() {
    for (seed, budget) in [(1u64, 1usize), (2, 2), (3, 3), (4, 8), (5, 1)] {
        let mut tiered = with_budget_override(Some(budget), Memory::new);
        assert!(tiered.tier_enabled(), "tier must engage for this test");
        let mut flat = Memory::with_budget(None);
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let npages = 32;
        let mut touched = Vec::new();
        for op in 0..6_000 {
            let a = addr(&mut rng, npages);
            touched.push(a);
            if rng.next().is_multiple_of(3) {
                assert_eq!(
                    tiered.load(a),
                    flat.load(a),
                    "seed {seed} budget {budget} op {op}: load {a:#x}"
                );
            } else {
                // 1-in-4 stores write zero, exercising un-materialization.
                let v = if rng.next().is_multiple_of(4) {
                    0
                } else {
                    rng.next()
                };
                assert_eq!(
                    tiered.store(a, v),
                    flat.store(a, v),
                    "seed {seed} budget {budget} op {op}: store {a:#x}"
                );
            }
            assert!(
                tiered.resident_pages() <= budget,
                "seed {seed} op {op}: {} resident > budget {budget}",
                tiered.resident_pages()
            );
        }
        assert_same(
            &tiered,
            &flat,
            &touched,
            &format!("seed {seed} budget {budget}"),
        );
    }
}

/// Cloning a tiered memory mid-stream forks an independent copy: divergent
/// writes after the fork stay private, and the clone still matches a flat
/// replay of the pre-fork prefix.
#[test]
fn clone_forks_tiered_state_exactly() {
    let mut rng = Rng(42);
    with_budget_override(Some(2), || {
        let mut m = Memory::new();
        let mut flat = Memory::with_budget(None);
        let mut touched = Vec::new();
        for _ in 0..2_000 {
            let a = addr(&mut rng, 16);
            let v = rng.next();
            touched.push(a);
            m.store(a, v);
            flat.store(a, v);
        }
        let snap = m.clone();
        // Diverge the original heavily (evicting + rewriting).
        for _ in 0..2_000 {
            let a = addr(&mut rng, 16);
            m.store(a, rng.next() % 2);
        }
        assert_same(&snap, &flat, &touched, "snapshot after divergence");
        assert!(!m.eq(&snap) || m.nonzero_words() == snap.nonzero_words());
    });
}

/// Zero is never state: spill a page, overwrite every word with zero, and
/// the memory must be indistinguishable from one that never wrote at all.
#[test]
fn spilled_pages_fully_zeroed_vanish() {
    with_budget_override(Some(1), || {
        let mut m = Memory::new();
        let empty = Memory::with_budget(None);
        // Write two full pages (budget 1 → the first spills), then zero both.
        for page in 0..2u64 {
            for w in 0..PAGE_WORDS as u64 {
                m.store(page * 4096 + w * 8, w + 1);
            }
        }
        assert!(m.spilled_pages() > 0, "test must exercise the spill path");
        for page in 0..2u64 {
            for w in 0..PAGE_WORDS as u64 {
                m.store(page * 4096 + w * 8, 0);
            }
        }
        assert_eq!(m.nonzero_words(), 0);
        assert!(m.eq(&empty) && empty.eq(&m));
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.load(0), 0);
        assert_eq!(m.load(4096 + 8), 0);
    });
}

/// `diff_where` sees through the tier in both directions.
#[test]
fn diff_where_is_tier_blind() {
    with_budget_override(Some(1), || {
        let mut a = Memory::new();
        let mut b = Memory::with_budget(None);
        for page in 0..4u64 {
            a.store(page * 4096, page + 1);
            b.store(page * 4096, page + 1);
        }
        assert_eq!(a.diff_where(&b, |_| true, 8), vec![]);
        assert_eq!(b.diff_where(&a, |_| true, 8), vec![]);
        b.store(2 * 4096, 99);
        assert_eq!(a.diff_where(&b, |_| true, 8), vec![(2 * 4096, 3, 99)]);
        assert_eq!(b.diff_where(&a, |_| true, 8), vec![(2 * 4096, 99, 3)]);
    });
}
