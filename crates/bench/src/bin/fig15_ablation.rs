//! Figure 15: performance impact of each cWSP optimization (paper:
//! +RegionFormation 1.04 → +PersistPath 1.10 → +MCSpec ≈ same → +WBDelay ≈
//! same → +WPQDelay ≈ same → +Pruning 1.06).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::{CwspFeatures, Scheme};

fn main() {
    cwsp_bench::harness_main("fig15_ablation", run);
}

fn run() {
    let cfg = SimConfig::default();
    let apps = cwsp_workloads::all();
    let unpruned = CompileOptions {
        pruning: false,
        ..Default::default()
    };
    let pruned = CompileOptions {
        pruning: true,
        ..Default::default()
    };
    let f = |pp, mc, wb, wpq| {
        Scheme::Cwsp(CwspFeatures {
            persist_path: pp,
            mc_speculation: mc,
            wb_delay: wb,
            wpq_delay: wpq,
        })
    };
    let steps: Vec<(&str, Scheme, CompileOptions)> = vec![
        ("+Region Formation", f(false, false, false, false), unpruned),
        ("+Persist Path", f(true, false, false, false), unpruned),
        ("+MC Speculation", f(true, true, false, false), unpruned),
        ("+WB Delaying", f(true, true, true, false), unpruned),
        ("+WPQ Delaying", f(true, true, true, true), unpruned),
        ("+Pruning (cWSP)", f(true, true, true, true), pruned),
    ];
    println!("\n=== Fig 15: per-optimization slowdown gmeans ===");
    for (label, scheme, opts) in steps {
        let results = measure_all(&apps, |w| slowdown(w, &cfg, scheme, opts));
        println!("-- {label}");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
