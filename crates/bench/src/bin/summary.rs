//! Two-minute reproduction summary: headline numbers from a representative
//! subset (one app per suite), plus the hardware-cost table — a quick sanity
//! pass before running the full figure set.

use cwsp_bench::{gmean, slowdown};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_core::system::CwspSystem;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("summary", run);
}

fn run() {
    let cfg = SimConfig::default();
    let names = ["lbm", "xz", "lulesh", "radix", "tpcc", "kmeans"];
    println!("=== cWSP reproduction summary (subset: one app per suite) ===\n");

    println!(
        "{:<10} {:>8} {:>8} {:>10}",
        "app", "cWSP", "Capri", "Replay"
    );
    // Fan the 6 apps × 3 schemes out over the engine pool; results return
    // in input order, so the printed rows are unchanged.
    let jobs: Vec<(&str, Scheme)> = names
        .iter()
        .flat_map(|&n| {
            [
                (n, Scheme::cwsp()),
                (n, Scheme::Capri),
                (n, Scheme::ReplayCache),
            ]
        })
        .collect();
    let vals = cwsp_bench::par_map(&jobs, |&(name, scheme)| {
        let w = cwsp_workloads::by_name(name).unwrap();
        slowdown(&w, &cfg, scheme, CompileOptions::default())
    });
    let mut cwsp_all = Vec::new();
    for (name, row) in names.iter().zip(vals.chunks(3)) {
        let (c, cap, rep) = (row[0], row[1], row[2]);
        println!("{name:<10} {c:>7.3}x {cap:>7.3}x {rep:>9.3}x");
        cwsp_all.push(c);
    }
    println!(
        "\nsubset gmean: cWSP {:.3}x  (paper all-apps: 1.06x; Capri 1.27x; ReplayCache 4.3x)",
        gmean(&cwsp_all)
    );

    // One crash/recovery demonstration.
    let w = cwsp_workloads::by_name("tatp").unwrap();
    let system = CwspSystem::compile(&w.module);
    let rec = system.run_with_crash(25_000, u64::MAX).expect("recovery");
    println!(
        "\ncrash@25k cycles on tatp: reverted {} undo records, replayed {} insts, \
         output matches oracle: {}",
        rec.reverted_records,
        rec.replayed_steps,
        rec.output == system.oracle(u64::MAX / 2).unwrap().output
    );

    println!(
        "\nhardware: RBT {} B/core (paper 176 B); PB reuses the 1 KB WCB",
        cfg.rbt_storage_bytes()
    );
}
