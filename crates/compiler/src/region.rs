//! Idempotent region formation (§IV-A).
//!
//! A region is re-executable (idempotent) if it contains no *antidependence*:
//! it must never overwrite a register or memory word it previously read from
//! pre-region state. The pass proceeds in two layers:
//!
//! 1. **Structural boundaries** are inserted at loop headers (one region per
//!    iteration), join blocks, immediately before every call site, and around
//!    every synchronization point (atomics/fences) — mirroring the paper's
//!    "initial region boundaries".
//! 2. **Antidependence cuts**: with structural boundaries in place, each
//!    remaining region is a *tree* of straight-line code. Every root-to-leaf
//!    path is scanned with the symbolic alias analysis ([`crate::alias`]) to
//!    collect memory WAR pairs `(load@i, store@j)` and register WAR pairs
//!    `(use@i, def@j)`. Each pair yields an interval of valid cut points, and
//!    a greedy minimum hitting set (interval stabbing — optimal for
//!    intervals) chooses the boundaries.
//!
//! Unlike De Kruijf et al., who *rename* registers to remove register
//! antidependences, we cut them. That choice makes the checkpoint-slot WAR
//! hazard structurally impossible: no register is ever both live-in to and
//!   checkpointed inside the same region (see DESIGN.md §3.1).

use crate::alias::{may_alias, PathState};
use cwsp_ir::cfg;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::Inst;
use cwsp_ir::module::Module;
use cwsp_ir::types::{Reg, RegionId};
use std::collections::{BTreeSet, HashMap};

/// Limits for path enumeration inside a region tree. If exceeded, the
/// offending fork targets receive structural boundaries and enumeration is
/// retried (guaranteeing termination: in the limit every block entry is a
/// boundary).
const MAX_PATHS_PER_ROOT: usize = 128;
const MAX_PATH_LEN: usize = 4096;

/// Outcome of region formation for a module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionInfo {
    /// Total explicit boundaries inserted (structural + cuts).
    pub boundaries: usize,
    /// How many came from antidependence cuts.
    pub antidep_cuts: usize,
    /// How many came from structural seeds (headers, joins, calls, syncs).
    pub structural: usize,
    /// Number of static regions (== boundaries; each boundary starts one).
    pub region_count: usize,
}

/// Partition every function of `module` into idempotent regions by inserting
/// [`Inst::Boundary`] instructions, and assign dense [`RegionId`]s.
///
/// Returns formation statistics. Functions already containing hand-written
/// boundaries (e.g. the simulated kernel entry path, §VI) keep them; ids are
/// (re)assigned globally.
pub fn form_regions(module: &mut Module) -> RegionInfo {
    let mut info = RegionInfo::default();
    for fid in 0..module.function_count() {
        let fid = cwsp_ir::module::FuncId(fid as u32);
        // Work on a clone so the alias analysis can consult the module's
        // global table while the function is being rewritten.
        let mut f = module.function(fid).clone();
        let (structural, cuts) = form_function(&mut f, module);
        *module.function_mut(fid) = f;
        info.structural += structural;
        info.antidep_cuts += cuts;
    }
    // Assign dense region ids across the module, in (function, block, idx)
    // order so ids are deterministic.
    let mut next = 0u32;
    for fid in 0..module.function_count() {
        let f = module.function_mut(cwsp_ir::module::FuncId(fid as u32));
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                if let Inst::Boundary { id } = inst {
                    *id = RegionId(next);
                    next += 1;
                }
            }
        }
    }
    info.boundaries = next as usize;
    info.region_count = next as usize;
    info
}

fn form_function(f: &mut Function, module: &Module) -> (usize, usize) {
    // Phase 1: structural boundaries.
    let mut positions: BTreeSet<(u32, usize)> = BTreeSet::new();
    let preds = cfg::predecessors(f);
    for h in cfg::loop_headers(f) {
        positions.insert((h.0, 0));
    }
    for (bid, _) in f.iter_blocks() {
        if preds[bid.index()].len() >= 2 {
            positions.insert((bid.0, 0));
        }
    }
    for (bid, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            match inst {
                Inst::Call { .. } => {
                    positions.insert((bid.0, i));
                }
                Inst::AtomicRmw { .. } | Inst::Fence => {
                    positions.insert((bid.0, i));
                    positions.insert((bid.0, i + 1));
                }
                _ => {}
            }
        }
    }
    // Drop structural boundaries that would duplicate an existing explicit
    // boundary already at that position (hand-written regions, §VI).
    positions.retain(|&(b, i)| {
        !matches!(
            f.blocks[b as usize].insts.get(i.saturating_sub(1)),
            Some(Inst::Boundary { .. }) if i > 0
        ) && !matches!(
            f.blocks[b as usize].insts.get(i),
            Some(Inst::Boundary { .. })
        )
    });
    let structural = positions.len();
    insert_boundaries(f, &positions);

    // Phase 2: antidependence cuts, iterating in case path enumeration needs
    // extra structural boundaries to stay bounded.
    let mut cuts_total = 0;
    for _round in 0..8 {
        match antidep_cuts(f, module) {
            Ok(cuts) => {
                cuts_total += cuts.len();
                if cuts.is_empty() {
                    break;
                }
                insert_boundaries(f, &cuts);
                // Re-analyze: inserted cuts shift positions; a second pass
                // confirms no pair remains (and normally finds none).
            }
            Err(overflow_blocks) => {
                let extra: BTreeSet<(u32, usize)> =
                    overflow_blocks.into_iter().map(|b| (b.0, 0)).collect();
                cuts_total += extra.len();
                insert_boundaries(f, &extra);
            }
        }
    }
    (structural, cuts_total)
}

/// Insert `Boundary` placeholders before each `(block, idx)` position.
fn insert_boundaries(f: &mut Function, positions: &BTreeSet<(u32, usize)>) {
    let mut by_block: HashMap<u32, Vec<usize>> = HashMap::new();
    for &(b, i) in positions {
        by_block.entry(b).or_default().push(i);
    }
    for (b, mut idxs) in by_block {
        idxs.sort_unstable();
        idxs.dedup();
        let insts = &mut f.blocks[b as usize].insts;
        for &i in idxs.iter().rev() {
            // Never insert after the terminator (positions always point at an
            // existing non-terminator instruction).
            debug_assert!(i < insts.len(), "boundary position past block end");
            let i = i.min(insts.len() - 1);
            if matches!(insts.get(i), Some(Inst::Boundary { .. })) {
                continue; // already a boundary here
            }
            insts.insert(
                i,
                Inst::Boundary {
                    id: RegionId(u32::MAX),
                },
            );
        }
    }
}

/// Count the antidependence cut positions still required by `f` — zero for
/// any correctly formed function. The static counterpart of
/// [`crate::verify::check_antidependence`].
pub fn residual_antidependences(f: &Function, module: &Module) -> usize {
    match antidep_cuts(f, module) {
        Ok(cuts) => cuts.len(),
        Err(overflow) => overflow.len().max(1),
    }
}

/// A position along an enumerated path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PathPos {
    block: BlockId,
    idx: usize,
}

/// Compute the set of antidependence cut positions for `f`, or the set of
/// fork-target blocks that overflowed enumeration limits.
fn antidep_cuts(f: &Function, module: &Module) -> Result<BTreeSet<(u32, usize)>, Vec<BlockId>> {
    // Region roots: function entry plus the position after every break
    // (boundary or call).
    let mut roots: Vec<PathPos> = vec![PathPos {
        block: f.entry(),
        idx: 0,
    }];
    for (bid, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if matches!(inst, Inst::Boundary { .. } | Inst::Call { .. }) {
                roots.push(PathPos {
                    block: bid,
                    idx: i + 1,
                });
            }
        }
    }

    let mut cuts: BTreeSet<(u32, usize)> = BTreeSet::new();
    let mut overflow: Vec<BlockId> = Vec::new();

    for root in roots {
        // Enumerate root-to-leaf paths of this region tree (bounded DFS).
        let mut paths: Vec<Vec<PathPos>> = Vec::new();
        let mut stack: Vec<(PathPos, Vec<PathPos>)> = vec![(root, Vec::new())];
        'dfs: while let Some((mut pos, mut trace)) = stack.pop() {
            loop {
                if trace.len() >= MAX_PATH_LEN || paths.len() >= MAX_PATHS_PER_ROOT {
                    overflow.push(pos.block);
                    break 'dfs;
                }
                let insts = &f.block(pos.block).insts;
                let Some(inst) = insts.get(pos.idx) else {
                    paths.push(trace);
                    break;
                };
                match inst {
                    Inst::Boundary { .. } | Inst::Call { .. } => {
                        // Region ends just before/at the break; a Call's spill
                        // stores belong to the tiny pre-call region rooted at
                        // the structural boundary, which is its own root.
                        trace.push(pos);
                        paths.push(trace);
                        break;
                    }
                    Inst::Br { target } => {
                        trace.push(pos);
                        if at_boundary_entry(f, *target) {
                            paths.push(trace);
                            break;
                        }
                        pos = PathPos {
                            block: *target,
                            idx: 0,
                        };
                    }
                    Inst::CondBr {
                        if_true, if_false, ..
                    } => {
                        trace.push(pos);
                        if !at_boundary_entry(f, *if_false) {
                            stack.push((
                                PathPos {
                                    block: *if_false,
                                    idx: 0,
                                },
                                trace.clone(),
                            ));
                        }
                        if !at_boundary_entry(f, *if_true) {
                            pos = PathPos {
                                block: *if_true,
                                idx: 0,
                            };
                            continue;
                        }
                        // The true arm ends the region here; record the path
                        // (the false arm, if it continues, was forked above).
                        paths.push(trace);
                        break;
                    }
                    Inst::Ret { .. } | Inst::Halt => {
                        trace.push(pos);
                        paths.push(trace);
                        break;
                    }
                    _ => {
                        trace.push(pos);
                        pos.idx += 1;
                    }
                }
            }
        }
        if !overflow.is_empty() {
            continue;
        }

        // Analyze each path: collect WAR intervals, then stab greedily.
        for path in &paths {
            let mut st = PathState::new(module);
            // loads: (path position index, abstract address)
            let mut loads: Vec<(usize, crate::alias::AbstractAddr)> = Vec::new();
            // last prior use position of each register on this path
            let mut last_use: HashMap<Reg, usize> = HashMap::new();
            // intervals (lo, hi]: a cut strictly after path position lo and at
            // or before hi breaks the pair. Cut at path position p means
            // "insert before the instruction at path[p]".
            let mut intervals: Vec<(usize, usize)> = Vec::new();

            for (p, pos) in path.iter().enumerate() {
                let inst = &f.block(pos.block).insts[pos.idx];
                // Memory WAR.
                match inst {
                    Inst::Load { addr, .. } => {
                        let a = st.addr_of(addr);
                        loads.push((p, a));
                    }
                    Inst::Store { addr, .. } => {
                        let a = st.addr_of(addr);
                        for &(lp, la) in &loads {
                            if may_alias(la, a) {
                                intervals.push((lp, p));
                            }
                        }
                    }
                    _ => {}
                }
                // Register WAR: defs after prior uses (or same-inst use+def).
                let uses = inst.uses();
                let defs = crate::liveness::defs(inst);
                for d in &defs {
                    if uses.contains(d) {
                        // Use and def in one instruction (e.g. `r = r + 1`):
                        // the only valid cut is immediately before it, so the
                        // instruction reads region-entry state (which the
                        // recovery slice restores). Encoded as (p-1, p]. At
                        // p == 0 the region already starts here — no cut
                        // needed.
                        if p > 0 {
                            intervals.push((p - 1, p));
                        }
                    } else if let Some(&u) = last_use.get(d) {
                        intervals.push((u, p));
                    }
                }
                for u in uses {
                    last_use.insert(u, p);
                }
                st.transfer(inst);
            }

            if intervals.is_empty() {
                continue;
            }
            // Greedy interval stabbing: sort by right endpoint; place a cut at
            // the right endpoint of the first unhit interval.
            intervals.sort_by_key(|&(_, hi)| hi);
            let mut last_cut: Option<usize> = None;
            for (lo, hi) in intervals {
                if let Some(c) = last_cut {
                    if c > lo && c <= hi {
                        continue; // already hit
                    }
                }
                // Also honor cuts chosen for other paths at the same position.
                let pos = path[hi];
                if cuts.contains(&(pos.block.0, pos.idx)) {
                    last_cut = Some(hi);
                    continue;
                }
                cuts.insert((pos.block.0, pos.idx));
                last_cut = Some(hi);
            }
        }
    }

    if !overflow.is_empty() {
        overflow.sort_by_key(|b| b.0);
        overflow.dedup();
        return Err(overflow);
    }
    Ok(cuts)
}

/// Whether block `b` begins with an explicit boundary (path enumeration stops
/// there: it is another region's root).
fn at_boundary_entry(f: &Function, b: BlockId) -> bool {
    matches!(f.block(b).insts.first(), Some(Inst::Boundary { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, MemRef, Operand};
    use cwsp_ir::module::Module;

    fn count_boundaries(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Boundary { .. }))
            .count()
    }

    fn single_fn_module(b: FunctionBuilder) -> Module {
        let mut m = Module::new("t");
        let id = m.add_function(b.build());
        m.set_entry(id);
        m
    }

    #[test]
    fn straight_line_without_antidep_gets_no_boundary() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(1));
        b.store(e, r.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let mut m = single_fn_module(b);
        let info = form_regions(&mut m);
        assert_eq!(info.boundaries, 0);
    }

    #[test]
    fn load_then_aliasing_store_is_cut() {
        // r = load [64]; store r+1 -> [64]  (classic WAR on the same word)
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.load(e, MemRef::abs(64));
        let s = b.bin(e, BinOp::Add, r.into(), Operand::imm(1));
        b.store(e, s.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let mut m = single_fn_module(b);
        let info = form_regions(&mut m);
        assert!(info.antidep_cuts >= 1, "{info:?}");
        let f = m.function(m.entry().unwrap());
        // the boundary sits before the store
        let insts = &f.block(f.entry()).insts;
        let b_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Boundary { .. }))
            .unwrap();
        assert!(matches!(insts[b_idx + 1], Inst::Store { .. }));
    }

    #[test]
    fn disjoint_words_are_not_cut() {
        // r = load [64]; store -> [72]: provably disjoint, no cut.
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.load(e, MemRef::abs(64));
        b.store(e, r.into(), MemRef::abs(72));
        b.push(e, Inst::Halt);
        let mut m = single_fn_module(b);
        let info = form_regions(&mut m);
        assert_eq!(info.antidep_cuts, 0, "{info:?}");
    }

    #[test]
    fn register_redefinition_after_use_is_cut() {
        // r1 = r0 + 1 ; r0 = 5   (use of r0, later def of r0)
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(1));
        let _r1 = b.bin(e, BinOp::Add, r0.into(), Operand::imm(1));
        b.push(
            e,
            Inst::Mov {
                dst: r0,
                src: Operand::imm(5),
            },
        );
        b.push(e, Inst::Halt);
        let mut m = single_fn_module(b);
        let info = form_regions(&mut m);
        assert!(info.antidep_cuts >= 1, "{info:?}");
    }

    #[test]
    fn same_inst_use_def_is_cut_before_it() {
        // r0 = 1; r1 = r0; r0 = r0 + 1  (increment after use)
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(1));
        let _r1 = b.mov(e, Operand::Reg(r0));
        b.push(
            e,
            Inst::Binary {
                op: BinOp::Add,
                dst: r0,
                lhs: r0.into(),
                rhs: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let mut m = single_fn_module(b);
        let info = form_regions(&mut m);
        assert!(info.antidep_cuts >= 1, "{info:?}");
        let f = m.function(m.entry().unwrap());
        let insts = &f.block(f.entry()).insts;
        let b_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Boundary { .. }))
            .unwrap();
        assert!(
            matches!(insts[b_idx + 1], Inst::Binary { op: BinOp::Add, .. }),
            "boundary lands before the increment"
        );
    }

    #[test]
    fn loop_header_gets_structural_boundary() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (header, exit) = build_counted_loop(&mut b, e, Operand::imm(4), |_, _, _| {});
        b.push(exit, Inst::Halt);
        let mut m = single_fn_module(b);
        form_regions(&mut m);
        let f = m.function(m.entry().unwrap());
        assert!(
            matches!(f.block(header).insts[0], Inst::Boundary { .. }),
            "loop header starts with a boundary"
        );
    }

    #[test]
    fn calls_and_syncs_get_boundaries() {
        let mut m = Module::new("t");
        let mut cal = FunctionBuilder::new("leaf", 0);
        let ce = cal.entry();
        cal.push(ce, Inst::Ret { val: None });
        let leaf = m.add_function(cal.build());

        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.call(e, leaf, vec![], false);
        b.push(e, Inst::Fence);
        b.push(e, Inst::Halt);
        let main = m.add_function(b.build());
        m.set_entry(main);
        let info = form_regions(&mut m);
        // before call, before fence, after fence
        assert!(info.structural >= 3, "{info:?}");
        let f = m.function(main);
        let insts = &f.block(f.entry()).insts;
        let call_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Call { .. }))
            .unwrap();
        assert!(matches!(insts[call_idx - 1], Inst::Boundary { .. }));
        let fence_idx = insts.iter().position(|i| matches!(i, Inst::Fence)).unwrap();
        assert!(matches!(insts[fence_idx - 1], Inst::Boundary { .. }));
        assert!(matches!(insts[fence_idx + 1], Inst::Boundary { .. }));
    }

    #[test]
    fn region_ids_are_dense_and_ordered() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(4), |b, bb, _| {
            let r = b.load(bb, MemRef::abs(64));
            let s = b.bin(bb, BinOp::Add, r.into(), Operand::imm(1));
            b.store(bb, s.into(), MemRef::abs(64));
        });
        b.push(exit, Inst::Halt);
        let mut m = single_fn_module(b);
        let info = form_regions(&mut m);
        let f = m.function(m.entry().unwrap());
        let mut ids = Vec::new();
        for block in &f.blocks {
            for inst in &block.insts {
                if let Inst::Boundary { id } = inst {
                    ids.push(id.0);
                }
            }
        }
        assert_eq!(ids.len(), info.region_count);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids unique");
        assert_eq!(
            *sorted.iter().max().unwrap() as usize,
            ids.len() - 1,
            "dense"
        );
    }

    #[test]
    fn formation_preserves_semantics() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(50), |b, bb, i| {
            let r = b.load(bb, MemRef::abs(1024));
            let s = b.bin(bb, BinOp::Add, r.into(), i.into());
            b.store(bb, s.into(), MemRef::abs(1024));
        });
        let v = b.load(exit, MemRef::abs(1024));
        b.push(
            exit,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let mut m = single_fn_module(b);
        let before = cwsp_ir::interp::run(&m, 100_000).unwrap();
        form_regions(&mut m);
        assert!(m.validate().is_ok(), "{:?}", m.validate());
        let after = cwsp_ir::interp::run(&m, 100_000).unwrap();
        assert_eq!(before.return_value, after.return_value);
    }

    #[test]
    fn idempotent_formation_is_stable() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.load(e, MemRef::abs(64));
        b.store(e, r.into(), MemRef::abs(64));
        b.push(e, Inst::Halt);
        let mut m = single_fn_module(b);
        let info1 = form_regions(&mut m);
        let count1 = count_boundaries(m.function(m.entry().unwrap()));
        let info2 = form_regions(&mut m);
        let count2 = count_boundaries(m.function(m.entry().unwrap()));
        assert_eq!(
            count1, count2,
            "second run inserts nothing: {info1:?} {info2:?}"
        );
    }
}
