//! # cwsp-runtime — the simulated libc/kernel substrate
//!
//! *Whole-system* persistence means crash consistency for the entire software
//! stack, not just user code. The paper patches glibc, LLVM's runtime
//! libraries, and the Linux kernel so every layer is partitioned into
//! idempotent regions (§IV-D, §VI). This crate is the reproduction's analogue:
//! a library of IR functions — `malloc`/`free`/`sbrk`, `memcpy`/`memset`, and
//! a syscall entry path — that workloads link against and that goes through
//! the *same* cWSP compiler as user code.
//!
//! The syscall entry function mirrors §VI's hand-annotated
//! `entry_SYSCALL_64`: it is built with *manually placed* region boundaries
//! (which the compiler preserves and renumbers) and dispatches to the
//! simulated kernel services.
//!
//! ## Example
//!
//! ```
//! use cwsp_ir::prelude::*;
//! use cwsp_runtime::Runtime;
//!
//! let mut m = Module::new("app");
//! let rt = Runtime::install(&mut m);
//! let mut b = FunctionBuilder::new("main", 0);
//! let e = b.entry();
//! // p = malloc(4 words); p[0] = 7; return p[0]
//! let p = b.call(e, rt.malloc, vec![Operand::imm(4)], true).unwrap();
//! b.store(e, Operand::imm(7), MemRef::reg(p, 0));
//! let v = b.load(e, MemRef::reg(p, 0));
//! b.push(e, Inst::Ret { val: Some(v.into()) });
//! let main = m.add_function(b.build());
//! m.set_entry(main);
//! assert_eq!(cwsp_ir::interp::run(&m, 10_000).unwrap().return_value, Some(7));
//! ```

pub mod kernel;
pub mod libc;

pub use kernel::{SYS_BRK, SYS_GETPID, SYS_TIME, SYS_WRITE};

use cwsp_ir::module::{FuncId, GlobalId, Module};

/// Handles to the installed runtime functions.
#[derive(Debug, Clone, Copy)]
pub struct Runtime {
    /// `malloc(words) -> ptr` — free-list-first bump allocator over the heap
    /// arena (the `pmalloc`-style allocator WSP makes unnecessary to
    /// special-case, §I).
    pub malloc: FuncId,
    /// `free(ptr)` — push onto the LIFO free list.
    pub free: FuncId,
    /// `sbrk(words) -> old_break` — raw arena extension.
    pub sbrk: FuncId,
    /// `memcpy(dst, src, words) -> dst`.
    pub memcpy: FuncId,
    /// `memset(dst, value, words) -> dst`.
    pub memset: FuncId,
    /// `calloc(words) -> ptr` — zero-initialized allocation.
    pub calloc: FuncId,
    /// `memcmp(a, b, words) -> first-diff-index+1 or 0`.
    pub memcmp: FuncId,
    /// `syscall(nr, a0, a1) -> ret` — the §VI kernel entry path with manual
    /// region boundaries.
    pub syscall: FuncId,
    /// Allocator metadata global (break pointer, free-list head).
    pub heap_meta: GlobalId,
    /// Kernel state global (pid, tick counter, console cursor).
    pub kernel_state: GlobalId,
}

impl Runtime {
    /// Install the runtime library into `module` and return the handles.
    ///
    /// Call this *before* building user functions so calls can reference the
    /// returned [`FuncId`]s.
    pub fn install(module: &mut Module) -> Runtime {
        let (heap_meta, malloc, free, sbrk) = libc::install_alloc(module);
        let (memcpy, memset) = libc::install_mem(module);
        let (calloc, memcmp) = libc::install_extras(module, malloc, memset);
        let (kernel_state, syscall) = kernel::install(module, sbrk);
        Runtime {
            malloc,
            free,
            sbrk,
            memcpy,
            memset,
            calloc,
            memcmp,
            syscall,
            heap_meta,
            kernel_state,
        }
    }
}
