//! Static data-race detection (`R`) and persist-order / stale-read safety
//! (`I5`) across core entry functions.
//!
//! The machine starts every core on the module entry with the core index as
//! the first argument, so thread contexts are *concrete*: the detector
//! re-analyzes the entry once per core with `param0 = tid` folded in. Each
//! context's memory accesses are collected under an interval abstract
//! domain (`tid`-scaled partition arithmetic folds to disjoint ranges;
//! branch refinement on `CmpLtU`/`CmpEq` bounds loop counters and prunes
//! infeasible tid-dispatch edges), together with:
//!
//! * an Eraser-style **must-lockset**: `Cas(lock, 0 → 1)` spin acquire /
//!   `Swap(lock, 0)` release over constant lock words, intersected at joins;
//! * a **happens-before** order for message passing: an atomic spin-wait on
//!   a flag word (the classic self-looping acquire block) orders everything
//!   after the spin exit behind everything the releasing thread did before
//!   an atomic on that flag that *postdominates* the write (and cannot loop
//!   back to it) — reader-side `acquired` sets and writer-side
//!   `released-via` sets.
//!
//! Two accesses from different contexts race when they conflict (overlap,
//! at least one write), are not both atomic, share no lock, and no
//! acquire/release pairing orders them. Races render as two-thread
//! interleaving witnesses through [`crate::diag`].
//!
//! **I5** mirrors the memory controller's stale-read-avoidance rule: in
//! region-annotated code, a store to a word another core may access must
//! not reach a synchronization point (atomic/fence — the moment the value
//! is published) while its region is still open; a boundary must intervene
//! so the escaping value is never observable from a revertible region.
//!
//! Soundness direction (the differential suite's contract): static-clean ⇒
//! no dynamic race under any schedule. The analysis over-approximates —
//! unresolved addresses conflict with everything — and under-approximates
//! only the *exemptions*, never the accesses.

use crate::callgraph::CallGraph;
use crate::consts::{CVal, ConstProp};
use crate::diag::{Diagnostic, Invariant, Location, PathWitness, Severity, WitnessStep};
use crate::summaries::Summaries;
use cwsp_ir::cfg::{self, PostDomTree};
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::{AtomicOp, BinOp, Inst, MemRef, Operand};
use cwsp_ir::layout;
use cwsp_ir::module::{FuncId, Module};
use cwsp_ir::pretty::fmt_inst;
use cwsp_ir::types::Word;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Resolve the address of `m` at `(b, idx)` to a constant if possible
/// (shared with the summary pass; mirrors the lint engine's resolver).
pub fn resolve_addr(
    module: &Module,
    consts: &ConstProp,
    f: &Function,
    b: BlockId,
    idx: usize,
    m: &MemRef,
) -> Option<Word> {
    let base = match m.base {
        Operand::Imm(v) => module.resolve_addr(v),
        Operand::Reg(r) => match consts.value_before(f, b, idx, r)? {
            CVal::Const(c) => module.resolve_addr(c),
            CVal::Unknown => return None,
        },
    };
    Some(base.wrapping_add(m.offset as Word))
}

// --------------------------------------------------------------------------
// Abstract domain: unsigned intervals with a Sym (unknown) top.
// --------------------------------------------------------------------------

/// Abstract register value: a closed unsigned interval, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RVal {
    /// All values in `lo..=hi`.
    Iv(Word, Word),
    /// Not statically bounded.
    Sym,
}

impl RVal {
    fn cst(v: Word) -> RVal {
        RVal::Iv(v, v)
    }

    fn as_const(self) -> Option<Word> {
        match self {
            RVal::Iv(a, b) if a == b => Some(a),
            _ => None,
        }
    }

    fn join(self, other: RVal) -> RVal {
        match (self, other) {
            (RVal::Iv(a, b), RVal::Iv(c, d)) => RVal::Iv(a.min(c), b.max(d)),
            _ => RVal::Sym,
        }
    }

    /// Intersect with `lo..=hi`; `None` when empty (infeasible edge).
    fn meet_range(self, lo: Word, hi: Word) -> Option<RVal> {
        match self {
            RVal::Iv(a, b) => {
                let (l, h) = (a.max(lo), b.min(hi));
                (l <= h).then_some(RVal::Iv(l, h))
            }
            RVal::Sym => Some(RVal::Iv(lo, hi)),
        }
    }
}

fn eval_bin(op: BinOp, a: RVal, b: RVal) -> RVal {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return RVal::cst(op.eval(x, y));
    }
    // Comparison results are 0/1 even when the inputs are unknown.
    let cmp_result = |exact: Option<Word>| exact.map(RVal::cst).unwrap_or(RVal::Iv(0, 1));
    let (RVal::Iv(al, ah), RVal::Iv(bl, bh)) = (a, b) else {
        return match op {
            BinOp::CmpEq | BinOp::CmpNe | BinOp::CmpLtU | BinOp::CmpLtS => RVal::Iv(0, 1),
            _ => RVal::Sym,
        };
    };
    match op {
        BinOp::Add => match (al.checked_add(bl), ah.checked_add(bh)) {
            (Some(l), Some(h)) => RVal::Iv(l, h),
            _ => RVal::Sym,
        },
        BinOp::Sub => {
            if al >= bh && ah >= bl {
                RVal::Iv(al - bh, ah - bl)
            } else {
                RVal::Sym
            }
        }
        BinOp::Mul => match (al.checked_mul(bl), ah.checked_mul(bh)) {
            (Some(l), Some(h)) => RVal::Iv(l, h),
            _ => RVal::Sym,
        },
        BinOp::Shl => match b.as_const() {
            Some(k) if k < 64 && (k == 0 || ah >> (64 - k) == 0) => RVal::Iv(al << k, ah << k),
            _ => RVal::Sym,
        },
        BinOp::ShrL => match b.as_const() {
            Some(k) if k < 64 => RVal::Iv(al >> k, ah >> k),
            _ => RVal::Sym,
        },
        BinOp::DivU => match b.as_const() {
            Some(n) if n > 0 => RVal::Iv(al / n, ah / n),
            _ => RVal::Sym,
        },
        BinOp::RemU => match b.as_const() {
            Some(n) if n > 0 => {
                if ah < n {
                    RVal::Iv(al, ah)
                } else {
                    RVal::Iv(0, n - 1)
                }
            }
            _ => RVal::Sym,
        },
        BinOp::MinU => RVal::Iv(al.min(bl), ah.min(bh)),
        BinOp::MaxU => RVal::Iv(al.max(bl), ah.max(bh)),
        BinOp::CmpEq => cmp_result((ah < bl || bh < al).then_some(0)),
        BinOp::CmpNe => cmp_result((ah < bl || bh < al).then_some(1)),
        BinOp::CmpLtU => cmp_result(if ah < bl {
            Some(1)
        } else if al >= bh {
            Some(0)
        } else {
            None
        }),
        BinOp::CmpLtS => RVal::Iv(0, 1),
        _ => RVal::Sym,
    }
}

fn eval_operand(module: &Module, regs: &[RVal], op: Operand) -> RVal {
    match op {
        Operand::Imm(v) => RVal::cst(module.resolve_addr(v)),
        Operand::Reg(r) => regs.get(r.index()).copied().unwrap_or(RVal::Sym),
    }
}

fn eval_addr(module: &Module, regs: &[RVal], m: &MemRef) -> RVal {
    match eval_operand(module, regs, m.base) {
        RVal::Iv(lo, hi) => match (
            lo.checked_add_signed(m.offset),
            hi.checked_add_signed(m.offset),
        ) {
            (Some(l), Some(h)) if l <= h => RVal::Iv(l, h),
            _ => RVal::Sym,
        },
        RVal::Sym => RVal::Sym,
    }
}

// --------------------------------------------------------------------------
// Per-block abstract state: registers + must-lockset + must-acquired flags.
// --------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    regs: Vec<RVal>,
    /// Locks provably held (must-set; intersected at joins).
    locks: BTreeSet<Word>,
    /// Flag words provably acquire-waited-on (must-set; intersected).
    acq: BTreeSet<Word>,
}

impl AbsState {
    /// Join `other` into `self`; returns whether anything changed.
    /// Past `widen`, any register still changing jumps straight to `Sym`.
    fn join_from(&mut self, other: &AbsState, widen: bool) -> bool {
        let mut changed = false;
        for (c, n) in self.regs.iter_mut().zip(&other.regs) {
            let j = c.join(*n);
            if j != *c {
                *c = if widen { RVal::Sym } else { j };
                changed = true;
            }
        }
        let li = |a: &BTreeSet<Word>, b: &BTreeSet<Word>| -> BTreeSet<Word> {
            a.intersection(b).copied().collect()
        };
        let nl = li(&self.locks, &other.locks);
        if nl != self.locks {
            self.locks = nl;
            changed = true;
        }
        let na = li(&self.acq, &other.acq);
        if na != self.acq {
            self.acq = na;
            changed = true;
        }
        changed
    }
}

/// Transfer one instruction. Call effects (clobbered regs, lock kills via
/// callee sync summaries) are conservative; the collector descends
/// separately to record callee accesses.
fn transfer(module: &Module, sums: &Summaries, st: &mut AbsState, inst: &Inst) {
    let set = |st: &mut AbsState, r: cwsp_ir::types::Reg, v: RVal| {
        if let Some(slot) = st.regs.get_mut(r.index()) {
            *slot = v;
        }
    };
    match inst {
        Inst::Mov { dst, src } => {
            let v = eval_operand(module, &st.regs, *src);
            set(st, *dst, v);
        }
        Inst::Binary { op, dst, lhs, rhs } => {
            let v = eval_bin(
                *op,
                eval_operand(module, &st.regs, *lhs),
                eval_operand(module, &st.regs, *rhs),
            );
            set(st, *dst, v);
        }
        Inst::Load { dst, .. } => set(st, *dst, RVal::Sym),
        Inst::AtomicRmw {
            op, dst, addr, src, ..
        } => {
            // Swap(lock, 0) is the canonical release: drop the lock.
            if *op == AtomicOp::Swap && matches!(src, Operand::Imm(0)) {
                if let Some(a) = eval_addr(module, &st.regs, addr).as_const() {
                    st.locks.remove(&a);
                }
            }
            set(st, *dst, RVal::Sym);
        }
        Inst::Call {
            func,
            ret,
            save_regs,
            ..
        } => {
            // The callee may release locks it synchronizes on.
            let cs = sums.get(*func);
            for a in &cs.sync_addrs {
                st.locks.remove(a);
            }
            if cs.sync_unknown {
                st.locks.clear();
            }
            if let Some(r) = ret {
                set(st, *r, RVal::Sym);
            }
            for r in save_regs {
                set(st, *r, RVal::Sym);
            }
        }
        _ => {}
    }
}

/// Per-edge refinement of the block out-state. Returns `None` when the
/// edge is statically infeasible under the current context.
#[allow(clippy::too_many_arguments)]
fn refine_edge(
    module: &Module,
    f: &Function,
    b: BlockId,
    out: &AbsState,
    cond: Operand,
    taken: bool,
    self_loop_other_edge: Option<Word>,
) -> Option<AbsState> {
    let mut st = out.clone();
    // Spin-block acquire: the non-self edge of a self-looping block that
    // atomically polls a constant flag word acquires that flag.
    if let Some(flag) = self_loop_other_edge {
        st.acq.insert(flag);
    }
    match eval_operand(module, &st.regs, cond) {
        RVal::Iv(0, 0) if taken => return None,
        RVal::Iv(lo, _) if lo >= 1 && !taken => return None,
        _ => {}
    }
    let Operand::Reg(c) = cond else {
        return Some(st);
    };
    // Find the last definition of the condition register in this block.
    let insts = &f.block(b).insts;
    let def = insts.iter().enumerate().rev().find(|(_, i)| defines(i, c));
    let Some((di, dinst)) = def else {
        return Some(st);
    };
    match dinst {
        Inst::Binary {
            op,
            lhs: Operand::Reg(x),
            rhs,
            ..
        } => {
            // Only refine when `x` is not redefined after the compare.
            if insts[di + 1..].iter().any(|i| defines(i, *x)) {
                return Some(st);
            }
            let Some(k) = eval_operand(module, &st.regs, *rhs).as_const() else {
                return Some(st);
            };
            let xv = st.regs.get(x.index()).copied().unwrap_or(RVal::Sym);
            let refined = match (op, taken) {
                (BinOp::CmpLtU, true) if k > 0 => xv.meet_range(0, k - 1),
                (BinOp::CmpLtU, true) => None, // x < 0 is unsatisfiable
                (BinOp::CmpLtU, false) => xv.meet_range(k, Word::MAX),
                (BinOp::CmpEq, true) => xv.meet_range(k, k),
                (BinOp::CmpNe, false) => xv.meet_range(k, k),
                _ => Some(xv),
            };
            match refined {
                Some(v) => {
                    if let Some(slot) = st.regs.get_mut(x.index()) {
                        *slot = v;
                    }
                }
                None => return None,
            }
        }
        Inst::AtomicRmw {
            op: AtomicOp::Cas,
            addr,
            src: Operand::Imm(1),
            expected: Operand::Imm(0),
            ..
        } if !taken => {
            // CAS returns the old value: 0 (falsy) means the lock was free
            // and is now ours.
            if let Some(a) = eval_addr(module, &st.regs, addr).as_const() {
                st.locks.insert(a);
            }
        }
        _ => {}
    }
    Some(st)
}

/// Whether `inst` writes register `r`.
fn defines(inst: &Inst, r: cwsp_ir::types::Reg) -> bool {
    cwsp_compiler::liveness::defs(inst).contains(&r)
}

/// The self-loop acquire pattern: a `CondBr` block with one successor equal
/// to itself that contains an atomic on a constant address. Returns that
/// address, to be acquired on the *other* edge.
fn spin_flag(module: &Module, regs: &[RVal], f: &Function, b: BlockId) -> Option<Word> {
    let insts = &f.block(b).insts;
    let Some(Inst::CondBr {
        if_true, if_false, ..
    }) = insts.last()
    else {
        return None;
    };
    if (*if_true == b) == (*if_false == b) {
        return None; // not a self-loop (or a degenerate both-self loop)
    }
    insts.iter().rev().find_map(|i| match i {
        Inst::AtomicRmw { addr, .. } => eval_addr(module, regs, addr).as_const(),
        _ => None,
    })
}

const WIDEN_AFTER: u32 = 6;
const MAX_PASSES: u32 = 200;

/// Run the abstract interpretation to fixpoint; returns block-entry states
/// (`None` = unreachable under this context).
fn block_states(
    module: &Module,
    sums: &Summaries,
    f: &Function,
    entry_state: AbsState,
) -> Vec<Option<AbsState>> {
    let n = f.blocks.len();
    let mut states: Vec<Option<AbsState>> = vec![None; n];
    states[f.entry().index()] = Some(entry_state);
    let rpo = cfg::reverse_post_order(f);
    let mut joins = vec![0u32; n];
    for _pass in 0..MAX_PASSES {
        let mut changed = false;
        for &b in &rpo {
            let Some(st) = states[b.index()].clone() else {
                continue;
            };
            let mut out = st;
            for inst in &f.block(b).insts {
                transfer(module, sums, &mut out, inst);
            }
            let mut push = |succ: BlockId, ns: Option<AbsState>, changed: &mut bool| {
                let Some(ns) = ns else { return };
                match &mut states[succ.index()] {
                    cur @ None => {
                        *cur = Some(ns);
                        *changed = true;
                    }
                    Some(cur) => {
                        joins[succ.index()] += 1;
                        if cur.join_from(&ns, joins[succ.index()] > WIDEN_AFTER) {
                            *changed = true;
                        }
                    }
                }
            };
            match f.block(b).insts.last() {
                Some(Inst::Br { target }) => push(*target, Some(out), &mut changed),
                Some(Inst::CondBr {
                    cond,
                    if_true,
                    if_false,
                }) => {
                    let flag = spin_flag(module, &out.regs, f, b);
                    let t_extra = (*if_false == b).then_some(flag).flatten();
                    let f_extra = (*if_true == b).then_some(flag).flatten();
                    let ts = refine_edge(module, f, b, &out, *cond, true, t_extra);
                    let fs = refine_edge(module, f, b, &out, *cond, false, f_extra);
                    push(*if_true, ts, &mut changed);
                    push(*if_false, fs, &mut changed);
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
    states
}

// --------------------------------------------------------------------------
// Access collection.
// --------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccKind {
    Read,
    Write,
    Atomic,
}

#[derive(Debug, Clone)]
struct Access {
    tid: u64,
    kind: AccKind,
    lo: Word,
    hi: Word,
    sym: bool,
    func: String,
    block: u32,
    idx: usize,
    locks: BTreeSet<Word>,
    acq: BTreeSet<Word>,
    /// Constant flag words whose releasing atomic postdominates this access
    /// (writer-side happens-before tags; writes only).
    rel: BTreeSet<Word>,
    note: String,
    path: Vec<WitnessStep>,
}

impl Access {
    fn is_write(&self) -> bool {
        matches!(self.kind, AccKind::Write | AccKind::Atomic)
    }

    fn overlaps(&self, other: &Access) -> bool {
        if self.sym || other.sym {
            return true;
        }
        self.lo <= other.hi && other.lo <= self.hi
    }
}

#[derive(Debug, Clone)]
struct I5Cand {
    tid: u64,
    lo: Word,
    hi: Word,
    func: String,
    block: u32,
    idx: usize,
    region: Option<u32>,
    path: Vec<WitnessStep>,
}

/// Options for [`check_concurrency`].
#[derive(Debug, Clone)]
pub struct RaceOptions {
    /// Thread contexts to instantiate (`tid = 0..cores`).
    pub cores: usize,
    /// Maximum call-descent depth before falling back to summaries.
    pub max_call_depth: usize,
}

impl Default for RaceOptions {
    fn default() -> Self {
        RaceOptions {
            cores: 2,
            max_call_depth: 8,
        }
    }
}

/// Aggregate statistics of one concurrency analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Thread contexts analyzed.
    pub contexts: usize,
    /// Memory accesses collected across all contexts.
    pub accesses: usize,
    /// Cross-thread access pairs conflict-checked.
    pub pairs_checked: u64,
    /// Race diagnostics emitted (post-dedup count may be lower).
    pub races: usize,
    /// I5 open-escape diagnostics emitted.
    pub i5_escapes: usize,
}

/// The result of [`check_concurrency`].
#[derive(Debug, Clone, Default)]
pub struct RaceAnalysis {
    /// Race and persist-order findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Aggregate statistics.
    pub stats: RaceStats,
}

/// Cap on emitted race diagnostics per module (pairing is quadratic; a
/// thoroughly racy module does not need thousands of repeats).
const MAX_RACE_DIAGS: usize = 64;

/// Memo key for a collected call: (callee, const args, locks held, flags
/// acquired) — an identical context contributes identical accesses.
type CallKey = (usize, Vec<Word>, Vec<Word>, Vec<Word>);

struct Collector<'m> {
    module: &'m Module,
    cg: &'m CallGraph,
    sums: &'m Summaries,
    tid: u64,
    max_depth: usize,
    accesses: Vec<Access>,
    i5: Vec<I5Cand>,
    seen_calls: HashSet<CallKey>,
    bfs_parents: HashMap<usize, Vec<Option<BlockId>>>,
    pdoms: HashMap<usize, PostDomTree>,
    reach: HashMap<usize, Vec<HashSet<u32>>>,
}

impl<'m> Collector<'m> {
    /// Shortest block path entry → `target`, as witness steps covering the
    /// synchronization-relevant instructions along the way.
    fn path_to(
        &mut self,
        fid: FuncId,
        f: &Function,
        target: BlockId,
        upto: usize,
    ) -> Vec<WitnessStep> {
        let parents = self.bfs_parents.entry(fid.index()).or_insert_with(|| {
            let mut par: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
            let mut seen = vec![false; f.blocks.len()];
            let mut q = VecDeque::new();
            seen[f.entry().index()] = true;
            q.push_back(f.entry());
            while let Some(b) = q.pop_front() {
                for s in cfg::successors(f, b) {
                    if !seen[s.index()] {
                        seen[s.index()] = true;
                        par[s.index()] = Some(b);
                        q.push_back(s);
                    }
                }
            }
            par
        });
        let mut blocks = vec![target];
        let mut cur = target;
        while cur != f.entry() {
            match parents[cur.index()] {
                Some(p) => {
                    blocks.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        blocks.reverse();
        let mut steps = Vec::new();
        for &b in &blocks {
            let limit = if b == target {
                upto
            } else {
                f.block(b).insts.len()
            };
            for (i, inst) in f.block(b).insts.iter().enumerate().take(limit) {
                if matches!(
                    inst,
                    Inst::AtomicRmw { .. } | Inst::Fence | Inst::Boundary { .. }
                ) {
                    steps.push(WitnessStep {
                        block: b.0,
                        idx: i,
                        note: fmt_inst(inst),
                    });
                }
            }
        }
        steps
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        mine: &mut Vec<Access>,
        fid: FuncId,
        f: &Function,
        st: &AbsState,
        kind: AccKind,
        addr: RVal,
        b: BlockId,
        i: usize,
        inst: &Inst,
    ) {
        let (lo, hi, sym) = match addr {
            RVal::Iv(l, h) => (l, h, false),
            RVal::Sym => (layout::GLOBAL_BASE, layout::STACK_REGION_BASE - 1, true),
        };
        // Per-core state (stacks, checkpoint slots, metadata) cannot race;
        // only the shared program-data window matters.
        if !sym && (hi < layout::GLOBAL_BASE || lo >= layout::STACK_REGION_BASE) {
            return;
        }
        let mut path = self.path_to(fid, f, b, i);
        path.push(WitnessStep {
            block: b.0,
            idx: i,
            note: fmt_inst(inst),
        });
        mine.push(Access {
            tid: self.tid,
            kind,
            lo: lo.max(layout::GLOBAL_BASE),
            hi: hi.min(layout::STACK_REGION_BASE - 1),
            sym,
            func: f.name.clone(),
            block: b.0,
            idx: i,
            locks: st.locks.clone(),
            acq: st.acq.clone(),
            rel: BTreeSet::new(),
            note: fmt_inst(inst),
            path,
        });
    }

    fn collect_function(&mut self, fid: FuncId, entry: AbsState, depth: usize) {
        if fid.index() >= self.module.function_count() {
            return;
        }
        let f = self.module.function(fid);
        if f.validate().is_err() {
            return;
        }
        let states = block_states(self.module, self.sums, f, entry);
        let mut mine: Vec<Access> = Vec::new();
        // Constant-address atomic sites of this instance (release candidates).
        let mut atomics: Vec<(BlockId, usize, Word)> = Vec::new();

        for (b, block) in f.iter_blocks() {
            let Some(mut st) = states[b.index()].clone() else {
                continue;
            };
            for (i, inst) in block.insts.iter().enumerate() {
                match inst {
                    Inst::Load { addr, .. } => {
                        let a = eval_addr(self.module, &st.regs, addr);
                        self.record(&mut mine, fid, f, &st, AccKind::Read, a, b, i, inst);
                    }
                    Inst::Store { addr, .. } => {
                        let a = eval_addr(self.module, &st.regs, addr);
                        self.record(&mut mine, fid, f, &st, AccKind::Write, a, b, i, inst);
                    }
                    Inst::AtomicRmw { addr, .. } => {
                        let a = eval_addr(self.module, &st.regs, addr);
                        if let Some(c) = a.as_const() {
                            atomics.push((b, i, c));
                        }
                        self.record(&mut mine, fid, f, &st, AccKind::Atomic, a, b, i, inst);
                    }
                    Inst::Call { func, args, .. } => {
                        self.handle_call(&mut mine, fid, f, &st, *func, args, b, i, depth);
                    }
                    _ => {}
                }
                transfer(self.module, self.sums, &mut st, inst);
            }
        }

        self.tag_releases(fid, f, &mut mine, &atomics);
        self.scan_i5(fid, f, &states, &mine);
        self.accesses.append(&mut mine);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &mut self,
        mine: &mut Vec<Access>,
        fid: FuncId,
        f: &Function,
        st: &AbsState,
        callee: FuncId,
        args: &[Operand],
        b: BlockId,
        i: usize,
        depth: usize,
    ) {
        let arg_vals: Option<Vec<Word>> = args
            .iter()
            .map(|a| eval_operand(self.module, &st.regs, *a).as_const())
            .collect();
        let descend = depth < self.max_depth
            && !self.cg.is_recursive(callee)
            && callee.index() < self.module.function_count();
        if let (true, Some(consts)) = (descend, arg_vals) {
            let key = (
                callee.index(),
                consts.clone(),
                st.locks.iter().copied().collect(),
                st.acq.iter().copied().collect(),
            );
            if !self.seen_calls.insert(key) {
                return; // identical context already collected
            }
            let cf = self.module.function(callee);
            let nregs = cf.reg_count as usize;
            let mut regs = vec![RVal::cst(0); nregs];
            for (p, v) in consts.iter().enumerate() {
                if p < cf.param_count as usize {
                    regs[p] = RVal::cst(*v);
                }
            }
            self.collect_function(
                callee,
                AbsState {
                    regs,
                    locks: st.locks.clone(),
                    acq: st.acq.clone(),
                },
                depth + 1,
            );
            return;
        }
        // Summary fallback: conservative accesses at the call site.
        let cs = self.sums.get(callee).clone();
        let callee_name = if callee.index() < self.module.function_count() {
            self.module.function(callee).name.clone()
        } else {
            format!("fn#{}", callee.index())
        };
        let mk_note =
            |what: &str, a: Word| format!("call `{callee_name}` may {what} {a:#x} (summary)");
        let mut push =
            |this: &mut Self, kind: AccKind, lo: Word, hi: Word, sym: bool, note: String| {
                if !sym && (hi < layout::GLOBAL_BASE || lo >= layout::STACK_REGION_BASE) {
                    return;
                }
                let mut path = this.path_to(fid, f, b, i);
                path.push(WitnessStep {
                    block: b.0,
                    idx: i,
                    note: note.clone(),
                });
                mine.push(Access {
                    tid: this.tid,
                    kind,
                    lo: lo.max(layout::GLOBAL_BASE),
                    hi: hi.min(layout::STACK_REGION_BASE - 1),
                    sym,
                    func: f.name.clone(),
                    block: b.0,
                    idx: i,
                    locks: st.locks.clone(),
                    acq: st.acq.clone(),
                    rel: BTreeSet::new(),
                    note,
                    path,
                });
            };
        for &a in &cs.stores {
            push(self, AccKind::Write, a, a, false, mk_note("store to", a));
        }
        for &a in &cs.loads {
            push(self, AccKind::Read, a, a, false, mk_note("load from", a));
        }
        for &a in &cs.sync_addrs {
            push(
                self,
                AccKind::Atomic,
                a,
                a,
                false,
                mk_note("synchronize on", a),
            );
        }
        let full = (layout::GLOBAL_BASE, layout::STACK_REGION_BASE - 1);
        if cs.stores_unknown {
            push(
                self,
                AccKind::Write,
                full.0,
                full.1,
                true,
                format!("call `{callee_name}` may store to an unresolved address (summary)"),
            );
        }
        if cs.loads_unknown {
            push(
                self,
                AccKind::Read,
                full.0,
                full.1,
                true,
                format!("call `{callee_name}` may load from an unresolved address (summary)"),
            );
        }
    }

    /// Writer-side happens-before tags: a write is `released via F` when an
    /// atomic on constant word `F` postdominates it (or follows it in the
    /// same block) *and* control cannot flow from that atomic back to the
    /// write — the release is genuinely the write's publication point.
    fn tag_releases(
        &mut self,
        fid: FuncId,
        f: &Function,
        mine: &mut [Access],
        atomics: &[(BlockId, usize, Word)],
    ) {
        if atomics.is_empty() {
            return;
        }
        let pdt = self
            .pdoms
            .entry(fid.index())
            .or_insert_with(|| PostDomTree::compute(f));
        let reach = self.reach.entry(fid.index()).or_insert_with(|| {
            // reach[b] = blocks reachable from b via one or more edges.
            let n = f.blocks.len();
            let mut out: Vec<HashSet<u32>> = vec![HashSet::new(); n];
            for (b, _) in f.iter_blocks() {
                let mut q: VecDeque<BlockId> = cfg::successors(f, b).into_iter().collect();
                let mut seen: HashSet<u32> = q.iter().map(|s| s.0).collect();
                while let Some(s) = q.pop_front() {
                    for t in cfg::successors(f, s) {
                        if seen.insert(t.0) {
                            q.push_back(t);
                        }
                    }
                }
                out[b.index()] = seen;
            }
            out
        });
        for acc in mine.iter_mut() {
            if acc.kind != AccKind::Write || acc.func != f.name {
                continue;
            }
            let ab = BlockId(acc.block);
            for &(rb, ri, fl) in atomics {
                let after_in_block = rb == ab && ri > acc.idx;
                let postdoms = rb != ab && pdt.postdominates(rb, ab);
                let loops_back = reach[rb.index()].contains(&acc.block);
                if (after_in_block || postdoms) && !loops_back {
                    acc.rel.insert(fl);
                }
            }
        }
    }

    /// I5: in region-annotated functions, a store whose word another core
    /// may access must not reach an atomic/fence while its region is still
    /// open — a boundary must close the region before the publication point.
    fn scan_i5(
        &mut self,
        _fid: FuncId,
        f: &Function,
        states: &[Option<AbsState>],
        mine: &[Access],
    ) {
        let has_boundary = f
            .blocks
            .iter()
            .any(|bl| bl.insts.iter().any(|i| matches!(i, Inst::Boundary { .. })));
        if !has_boundary {
            return;
        }
        for acc in mine {
            if acc.kind != AccKind::Write || acc.sym || acc.func != f.name {
                continue;
            }
            let start = BlockId(acc.block);
            if states[start.index()].is_none() {
                continue;
            }
            // DFS forward from just past the store; stop at boundaries,
            // flag the first reachable synchronization point.
            let mut stack = vec![(start, acc.idx + 1, vec![])];
            let mut visited: HashSet<u32> = HashSet::new();
            let mut hit: Option<(BlockId, usize, Vec<WitnessStep>)> = None;
            // Open-region id at the store, for attribution: the last
            // boundary on the witness path to the store, if any.
            let region = acc.path.iter().rev().find_map(|s| {
                s.note
                    .contains("boundary")
                    .then(|| region_of(f, BlockId(s.block), s.idx))
                    .flatten()
            });
            'dfs: while let Some((b, from, path)) = stack.pop() {
                for (i, inst) in f.block(b).insts.iter().enumerate().skip(from) {
                    match inst {
                        Inst::Boundary { .. } => continue 'dfs,
                        Inst::AtomicRmw { .. } | Inst::Fence => {
                            let mut p = path.clone();
                            p.push(WitnessStep {
                                block: b.0,
                                idx: i,
                                note: format!("{} (publication point)", fmt_inst(inst)),
                            });
                            hit = Some((b, i, p));
                            break 'dfs;
                        }
                        Inst::Call { func, .. } => {
                            let cs = self.sums.get(*func);
                            if cs.has_boundary {
                                continue 'dfs;
                            }
                            if cs.has_fence || !cs.sync_addrs.is_empty() || cs.sync_unknown {
                                let mut p = path.clone();
                                p.push(WitnessStep {
                                    block: b.0,
                                    idx: i,
                                    note: format!("{} (callee synchronizes)", fmt_inst(inst)),
                                });
                                hit = Some((b, i, p));
                                break 'dfs;
                            }
                        }
                        _ => {}
                    }
                }
                for s in cfg::successors(f, b) {
                    if visited.insert(s.0) {
                        stack.push((s, 0, path.clone()));
                    }
                }
            }
            if let Some((_, _, sync_path)) = hit {
                let mut path = vec![WitnessStep {
                    block: acc.block,
                    idx: acc.idx,
                    note: format!("{} (escaping store, region open)", acc.note),
                }];
                path.extend(sync_path);
                self.i5.push(I5Cand {
                    tid: acc.tid,
                    lo: acc.lo,
                    hi: acc.hi,
                    func: acc.func.clone(),
                    block: acc.block,
                    idx: acc.idx,
                    region,
                    path,
                });
            }
        }
    }
}

fn region_of(f: &Function, b: BlockId, idx: usize) -> Option<u32> {
    match f.block(b).insts.get(idx) {
        Some(Inst::Boundary { id }) => Some(id.0),
        _ => None,
    }
}

/// Run the static race detector and the I5 persist-order check over
/// `opts.cores` thread contexts of `module`'s entry function.
pub fn check_concurrency(module: &Module, opts: &RaceOptions) -> RaceAnalysis {
    let mut out = RaceAnalysis::default();
    let Some(entry) = module.entry() else {
        return out;
    };
    if entry.index() >= module.function_count() {
        return out;
    }
    let entry_f = module.function(entry);
    if entry_f.validate().is_err() {
        return out;
    }
    // An entry that takes no thread-id parameter is single-instance: the
    // multicore machine runs `entry(core)` per core, and a program that
    // cannot observe `core` was never written for SPMD execution. Analyzing
    // it under N identical contexts would flag every global store as a
    // "race" with its own copy — noise, not a finding.
    let cores = if entry_f.param_count == 0 {
        1
    } else {
        opts.cores
    };
    let cg = CallGraph::compute(module);
    let sums = Summaries::compute(module, &cg);

    let mut per_tid: Vec<Vec<Access>> = Vec::new();
    let mut i5_cands: Vec<I5Cand> = Vec::new();
    for tid in 0..cores as u64 {
        let nregs = entry_f.reg_count as usize;
        let mut regs = vec![RVal::cst(0); nregs];
        if entry_f.param_count > 0 && nregs > 0 {
            // The machine starts core `tid` as `entry(tid)`.
            regs[0] = RVal::cst(tid);
        }
        let mut col = Collector {
            module,
            cg: &cg,
            sums: &sums,
            tid,
            max_depth: opts.max_call_depth,
            accesses: Vec::new(),
            i5: Vec::new(),
            seen_calls: HashSet::new(),
            bfs_parents: HashMap::new(),
            pdoms: HashMap::new(),
            reach: HashMap::new(),
        };
        col.collect_function(
            entry,
            AbsState {
                regs,
                locks: BTreeSet::new(),
                acq: BTreeSet::new(),
            },
            0,
        );
        out.stats.contexts += 1;
        out.stats.accesses += col.accesses.len();
        per_tid.push(col.accesses);
        i5_cands.append(&mut col.i5);
    }

    // --- pairwise race check ---
    for t1 in 0..per_tid.len() {
        for t2 in t1 + 1..per_tid.len() {
            for a in &per_tid[t1] {
                for b in &per_tid[t2] {
                    out.stats.pairs_checked += 1;
                    if !(a.is_write() || b.is_write()) || !a.overlaps(b) {
                        continue;
                    }
                    if a.kind == AccKind::Atomic && b.kind == AccKind::Atomic {
                        continue;
                    }
                    if a.locks.intersection(&b.locks).next().is_some() {
                        continue;
                    }
                    let hb = a.rel.intersection(&b.acq).next().is_some()
                        || b.rel.intersection(&a.acq).next().is_some();
                    if hb {
                        continue;
                    }
                    out.stats.races += 1;
                    if out.diagnostics.len() >= MAX_RACE_DIAGS {
                        continue;
                    }
                    out.diagnostics.push(race_diag(a, b));
                }
            }
        }
    }

    // --- I5: a candidate fires when the stored word escapes to another core ---
    // Every context runs the same entry, so the same store site surfaces once
    // per tid; report each static site once.
    let mut i5_seen: HashSet<(String, u32, usize)> = HashSet::new();
    for cand in &i5_cands {
        if !i5_seen.insert((cand.func.clone(), cand.block, cand.idx)) {
            continue;
        }
        let escapes = per_tid
            .iter()
            .enumerate()
            .filter(|(t, _)| *t as u64 != cand.tid)
            .flat_map(|(_, accs)| accs.iter())
            .any(|a| a.sym || (cand.lo <= a.hi && a.lo <= cand.hi));
        if !escapes {
            continue;
        }
        out.stats.i5_escapes += 1;
        if out.diagnostics.len() >= MAX_RACE_DIAGS {
            continue;
        }
        out.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            invariant: Invariant::PersistOrder,
            code: "I5-open-escape",
            message: format!(
                "store to {} escapes to another core but reaches a synchronization \
                 point with its region still open; a boundary must close the region \
                 before the value is published (stale-read hazard)",
                range_desc(cand.lo, cand.hi),
            ),
            location: Location {
                function: cand.func.clone(),
                block: cand.block,
                inst: Some(cand.idx),
            },
            region: cand.region,
            witness: Some(PathWitness::elided(cand.path.clone(), 10)),
        });
    }
    out
}

fn range_desc(lo: Word, hi: Word) -> String {
    if lo == hi {
        format!("{lo:#x}")
    } else {
        format!("[{lo:#x}..{hi:#x}]")
    }
}

fn kind_verb(k: AccKind) -> &'static str {
    match k {
        AccKind::Read => "load",
        AccKind::Write => "store",
        AccKind::Atomic => "atomic",
    }
}

fn race_diag(a: &Access, b: &Access) -> Diagnostic {
    let mut steps: Vec<WitnessStep> = Vec::new();
    for (acc, label) in [(a, a.tid), (b, b.tid)] {
        for s in &acc.path {
            steps.push(WitnessStep {
                block: s.block,
                idx: s.idx,
                note: format!("core {label}: {}", s.note),
            });
        }
    }
    Diagnostic {
        severity: Severity::Error,
        invariant: Invariant::DataRace,
        code: "R-data-race",
        message: format!(
            "{} of {} by core {} ({}/bb{}[{}]) and {} of {} by core {} ({}/bb{}[{}]) \
             are unordered: no common lock, no acquire/release pairing",
            kind_verb(a.kind),
            range_desc(a.lo, a.hi),
            a.tid,
            a.func,
            a.block,
            a.idx,
            kind_verb(b.kind),
            range_desc(b.lo, b.hi),
            b.tid,
            b.func,
            b.block,
            b.idx,
        ),
        location: Location {
            function: a.func.clone(),
            block: a.block,
            inst: Some(a.idx),
        },
        region: None,
        witness: Some(PathWitness::elided(steps, 14)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::BinOp;
    use cwsp_ir::types::RegionId;

    fn run(m: &Module, cores: usize) -> RaceAnalysis {
        check_concurrency(
            m,
            &RaceOptions {
                cores,
                ..RaceOptions::default()
            },
        )
    }

    fn assert_clean(m: &Module, cores: usize) -> RaceStats {
        let ra = run(m, cores);
        assert!(
            ra.diagnostics.is_empty(),
            "expected race-clean, got:\n{}",
            ra.diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        ra.stats
    }

    #[test]
    fn shipped_drf_partition_sum_is_race_clean() {
        let (m, _, _, _) = cwsp_workloads::multicore::drf_partition_sum(4);
        let stats = assert_clean(&m, 4);
        assert_eq!(stats.contexts, 4);
        assert!(stats.accesses > 0);
        assert!(stats.pairs_checked > 0);
    }

    #[test]
    fn shipped_spinlock_ledger_is_race_clean() {
        let (m, _, _) = cwsp_workloads::multicore::spinlock_ledger(3);
        let stats = assert_clean(&m, 3);
        assert_eq!(stats.races, 0);
    }

    #[test]
    fn unsynced_shared_store_races_with_two_thread_witness() {
        // Both cores store the same global word with no synchronization.
        let mut m = Module::new("racy");
        let g = m.add_global("shared", 1);
        let addr = m.global_addr(g);
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let tid = b.param(0);
        b.push(e, Inst::store(tid.into(), MemRef::abs(addr)));
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let ra = run(&m, 2);
        assert_eq!(ra.stats.races, 1, "{:?}", ra.diagnostics);
        let d = &ra.diagnostics[0];
        assert_eq!(d.code, "R-data-race");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.invariant, Invariant::DataRace);
        let w = d.witness.as_ref().expect("two-thread witness");
        assert!(
            w.steps.iter().any(|s| s.note.starts_with("core 0:")),
            "{w:?}"
        );
        assert!(
            w.steps.iter().any(|s| s.note.starts_with("core 1:")),
            "{w:?}"
        );
    }

    #[test]
    fn read_write_pair_races_but_read_read_does_not() {
        // tid 0 stores, tid 1 loads the same word: a race. A second word is
        // only ever loaded: no race.
        let mut m = Module::new("rw");
        let g = m.add_global("w", 1);
        let r = m.add_global("r", 1);
        let (wa, ra_) = (m.global_addr(g), m.global_addr(r));
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let wr = b.block();
        let rd = b.block();
        let tid = b.param(0);
        let c = b.bin(e, BinOp::CmpEq, tid.into(), Operand::imm(0));
        b.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: wr,
                if_false: rd,
            },
        );
        b.push(wr, Inst::store(Operand::imm(7), MemRef::abs(wa)));
        let t0 = b.vreg();
        b.push(wr, Inst::load(t0, MemRef::abs(ra_)));
        b.push(wr, Inst::Halt);
        let t1 = b.vreg();
        b.push(rd, Inst::load(t1, MemRef::abs(wa)));
        let t2 = b.vreg();
        b.push(rd, Inst::load(t2, MemRef::abs(ra_)));
        b.push(rd, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let ra = run(&m, 2);
        assert_eq!(ra.stats.races, 1, "{:?}", ra.diagnostics);
        assert!(ra.diagnostics[0].message.contains("store"));
    }

    #[test]
    fn tid_dispatch_edges_are_pruned_per_context() {
        // Each tid writes its own word behind a CmpEq dispatch; without
        // infeasible-edge pruning both contexts would appear to write both.
        let mut m = Module::new("dispatch");
        let g = m.add_global("slots", 2);
        let base = m.global_addr(g);
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let a0 = b.block();
        let a1 = b.block();
        let tid = b.param(0);
        let c = b.bin(e, BinOp::CmpEq, tid.into(), Operand::imm(0));
        b.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: a0,
                if_false: a1,
            },
        );
        b.push(a0, Inst::store(Operand::imm(1), MemRef::abs(base)));
        b.push(a0, Inst::Halt);
        b.push(a1, Inst::store(Operand::imm(2), MemRef::abs(base + 8)));
        b.push(a1, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        assert_clean(&m, 2);
    }

    #[test]
    fn interval_partitions_are_disjoint_but_overlap_races() {
        // data[tid*4 + i], i in 0..4 — disjoint under interval analysis.
        let build = |stride: u64| {
            let mut m = Module::new("parts");
            let g = m.add_global("data", 16);
            let base = m.global_addr(g);
            let mut b = FunctionBuilder::new("main", 1);
            let e = b.entry();
            let tid = b.param(0);
            let off = b.bin(e, BinOp::Mul, tid.into(), Operand::imm(stride * 8));
            let part = b.bin(e, BinOp::Add, off.into(), Operand::imm(base));
            let (_, exit) =
                cwsp_ir::builder::build_counted_loop(&mut b, e, Operand::imm(4), |b, bb, i| {
                    let o = b.bin(bb, BinOp::Shl, i.into(), Operand::imm(3));
                    let a = b.bin(bb, BinOp::Add, part.into(), o.into());
                    b.store(bb, Operand::imm(1), MemRef::reg(a, 0));
                });
            b.push(exit, Inst::Halt);
            let f = m.add_function(b.build());
            m.set_entry(f);
            m
        };
        assert_clean(&build(4), 3); // stride == trip count: disjoint
        let ra = run(&build(2), 3); // stride 2 < trip 4: ranges overlap
        assert!(ra.stats.races > 0, "overlapping partitions must race");
    }

    #[test]
    fn lock_protected_sharing_is_clean_without_lock_races() {
        let mut m = Module::new("locked-vs-not");
        let lock = m.add_global("lock", 1);
        let sh = m.add_global("shared", 1);
        let (la, sa) = (m.global_addr(lock), m.global_addr(sh));
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let spin = b.block();
        let crit = b.block();
        b.push(e, Inst::Br { target: spin });
        let got = b.vreg();
        b.push(
            spin,
            Inst::AtomicRmw {
                op: AtomicOp::Cas,
                dst: got,
                addr: MemRef::abs(la),
                src: Operand::imm(1),
                expected: Operand::imm(0),
            },
        );
        b.push(
            spin,
            Inst::CondBr {
                cond: got.into(),
                if_true: spin,
                if_false: crit,
            },
        );
        let cur = b.load(crit, MemRef::abs(sa));
        let nv = b.bin(crit, BinOp::Add, cur.into(), Operand::imm(1));
        b.store(crit, nv.into(), MemRef::abs(sa));
        let rel = b.vreg();
        b.push(
            crit,
            Inst::AtomicRmw {
                op: AtomicOp::Swap,
                dst: rel,
                addr: MemRef::abs(la),
                src: Operand::imm(0),
                expected: Operand::imm(0),
            },
        );
        b.push(crit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        assert_clean(&m, 2);
    }

    /// Writer (tid 0): store mailbox, release flag. Reader (tid 1):
    /// atomic-spin on the flag, then load the mailbox.
    fn handoff_module(atomic_release: bool) -> Module {
        let mut m = Module::new("handoff");
        let mail = m.add_global("mail", 1);
        let flag = m.add_global("flag", 1);
        let acc = m.add_global("acc", 1);
        let (ma, fa, aa) = (m.global_addr(mail), m.global_addr(flag), m.global_addr(acc));
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let wr = b.block();
        let spin = b.block();
        let rd = b.block();
        let tid = b.param(0);
        let c = b.bin(e, BinOp::CmpEq, tid.into(), Operand::imm(0));
        b.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: wr,
                if_false: spin,
            },
        );
        b.push(wr, Inst::store(Operand::imm(42), MemRef::abs(ma)));
        if atomic_release {
            let d = b.vreg();
            b.push(
                wr,
                Inst::AtomicRmw {
                    op: AtomicOp::Swap,
                    dst: d,
                    addr: MemRef::abs(fa),
                    src: Operand::imm(1),
                    expected: Operand::imm(0),
                },
            );
        } else {
            // Dropped release: publish the flag with a plain store.
            b.push(wr, Inst::store(Operand::imm(1), MemRef::abs(fa)));
        }
        b.push(wr, Inst::Halt);
        let g = b.vreg();
        b.push(
            spin,
            Inst::AtomicRmw {
                op: AtomicOp::FetchAdd,
                dst: g,
                addr: MemRef::abs(fa),
                src: Operand::imm(0),
                expected: Operand::imm(0),
            },
        );
        b.push(
            spin,
            Inst::CondBr {
                cond: g.into(),
                if_true: rd,
                if_false: spin,
            },
        );
        let v = b.load(rd, MemRef::abs(ma));
        b.store(rd, v.into(), MemRef::abs(aa));
        b.push(rd, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }

    #[test]
    fn message_passing_handoff_is_ordered() {
        assert_clean(&handoff_module(true), 2);
    }

    #[test]
    fn dropped_release_atomic_is_a_race() {
        let ra = run(&handoff_module(false), 2);
        assert!(ra.stats.races > 0, "plain-store publication must race");
        assert!(ra
            .diagnostics
            .iter()
            .any(|d| d.code == "R-data-race" && d.witness.is_some()));
    }

    /// Lock-protected shared store, with or without a boundary separating
    /// the store from the lock-release publication point.
    fn escape_module(with_boundary: bool) -> Module {
        let mut m = Module::new("escape");
        let lock = m.add_global("lock", 1);
        let sh = m.add_global("shared", 1);
        let (la, sa) = (m.global_addr(lock), m.global_addr(sh));
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let spin = b.block();
        let crit = b.block();
        b.push(e, Inst::Boundary { id: RegionId(0) });
        b.push(e, Inst::Br { target: spin });
        let got = b.vreg();
        b.push(
            spin,
            Inst::AtomicRmw {
                op: AtomicOp::Cas,
                dst: got,
                addr: MemRef::abs(la),
                src: Operand::imm(1),
                expected: Operand::imm(0),
            },
        );
        b.push(
            spin,
            Inst::CondBr {
                cond: got.into(),
                if_true: spin,
                if_false: crit,
            },
        );
        b.store(crit, Operand::imm(5), MemRef::abs(sa));
        if with_boundary {
            b.push(crit, Inst::Boundary { id: RegionId(1) });
        }
        let rel = b.vreg();
        b.push(
            crit,
            Inst::AtomicRmw {
                op: AtomicOp::Swap,
                dst: rel,
                addr: MemRef::abs(la),
                src: Operand::imm(0),
                expected: Operand::imm(0),
            },
        );
        b.push(crit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }

    #[test]
    fn i5_open_escape_fires_without_boundary_before_release() {
        let ra = run(&escape_module(false), 2);
        let i5: Vec<_> = ra
            .diagnostics
            .iter()
            .filter(|d| d.code == "I5-open-escape")
            .collect();
        assert_eq!(i5.len(), 1, "{:?}", ra.diagnostics);
        assert_eq!(i5[0].severity, Severity::Error);
        assert_eq!(i5[0].invariant, Invariant::PersistOrder);
        let w = i5[0].witness.as_ref().expect("path witness");
        assert!(w.steps.iter().any(|s| s.note.contains("escaping store")));
        assert!(w.steps.iter().any(|s| s.note.contains("publication point")));
        assert_eq!(ra.stats.i5_escapes, 1);
        // The lock keeps it race-free; I5 is the only finding.
        assert_eq!(ra.stats.races, 0);
    }

    #[test]
    fn i5_clean_when_boundary_precedes_release() {
        let ra = run(&escape_module(true), 2);
        assert!(
            ra.diagnostics.iter().all(|d| d.code != "I5-open-escape"),
            "{:?}",
            ra.diagnostics
        );
        assert_eq!(ra.stats.i5_escapes, 0);
    }

    #[test]
    fn single_core_has_no_races() {
        let (m, _, _, _) = cwsp_workloads::multicore::drf_partition_sum(4);
        let ra = run(&m, 1);
        assert!(ra.diagnostics.is_empty());
        assert_eq!(ra.stats.pairs_checked, 0);
    }

    #[test]
    fn atomic_only_sharing_is_clean() {
        let mut m = Module::new("counter");
        let g = m.add_global("ctr", 1);
        let a = m.global_addr(g);
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let d = b.vreg();
        b.push(
            e,
            Inst::AtomicRmw {
                op: AtomicOp::FetchAdd,
                dst: d,
                addr: MemRef::abs(a),
                src: Operand::imm(1),
                expected: Operand::imm(0),
            },
        );
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        assert_clean(&m, 4);
    }
}
