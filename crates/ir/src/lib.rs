//! # cwsp-ir — compiler IR and reference interpreter for cWSP
//!
//! This crate provides the register-based intermediate representation that the
//! cWSP compiler (`cwsp-compiler`) transforms and the architecture simulator
//! (`cwsp-sim`) executes. It plays the role LLVM bitcode plays in the paper
//! *Compiler-Directed Whole-System Persistence* (ISCA 2024): every piece of
//! "software" in this reproduction — user workloads, the simulated libc and
//! kernel-entry paths — is expressed in this IR, partitioned into idempotent
//! regions, and run through the persistence machinery.
//!
//! Design notes:
//!
//! * All values are 64-bit words ([`Word`]); all memory accesses are 8-byte
//!   aligned word accesses. This mirrors cWSP's 8-byte persist granularity
//!   (§V-A2 of the paper) and keeps the crash-consistency model exact.
//! * Virtual registers are function-local. Calls spill live-across-call
//!   registers and arguments to an in-memory stack frame (see [`inst::Inst::Call`])
//!   so that, as on real hardware, all cross-frame state lives in (persistent)
//!   memory and power-failure recovery only ever needs to restore the live-in
//!   registers of a single region.
//! * [`interp`] is the oracle interpreter: it executes a module with no
//!   persistence machinery and produces the ground-truth output and final
//!   memory against which crash/recovery runs are verified. It exposes a
//!   [`interp::StepEffect`] stream so the timing simulator can drive the exact
//!   same semantics cycle by cycle. Since the decode-once rework it executes
//!   from a [`decoded::DecodedModule`] — the module lowered into a flat,
//!   `Copy` micro-op array — and the original tree-walking implementation is
//!   preserved in [`reference`] as the executable specification the decoded
//!   core is differentially tested against.
//!
//! ## Example
//!
//! ```
//! use cwsp_ir::prelude::*;
//!
//! let mut m = Module::new("demo");
//! let g = m.add_global("counter", 1);
//! let mut f = FunctionBuilder::new("main", 0);
//! let entry = f.entry();
//! let v = f.vreg();
//! f.push(entry, Inst::load(v, MemRef::global(g, 0)));
//! let v2 = f.vreg();
//! f.push(entry, Inst::binary(BinOp::Add, v2, v.into(), Operand::imm(1)));
//! f.push(entry, Inst::store(v2.into(), MemRef::global(g, 0)));
//! f.push(entry, Inst::Ret { val: Some(v2.into()) });
//! let main = m.add_function(f.build());
//! m.set_entry(main);
//!
//! let outcome = cwsp_ir::interp::run(&m, 10_000)?;
//! assert_eq!(outcome.return_value, Some(1));
//! # Ok::<(), cwsp_ir::interp::InterpError>(())
//! ```

pub mod builder;
pub mod cfg;
pub mod decoded;
pub mod function;
pub mod fxhash;
pub mod inst;
pub mod interp;
pub mod layout;
pub mod memory;
pub mod module;
pub mod parse;
pub mod pretty;
pub mod reference;
pub mod types;

/// Convenience re-exports for building and running IR programs.
pub mod prelude {
    pub use crate::builder::FunctionBuilder;
    pub use crate::function::{BlockId, Function, InstIdx};
    pub use crate::inst::{AtomicOp, BinOp, Inst, MemRef, Operand};
    pub use crate::interp::{Interp, Outcome, StepEffect};
    pub use crate::memory::Memory;
    pub use crate::module::{FuncId, GlobalId, Module};
    pub use crate::types::{Reg, RegionId, Word};
}

pub use function::{BlockId, Function, InstIdx};
pub use inst::{AtomicOp, BinOp, Inst, MemRef, Operand};
pub use memory::{default_budget_pages, with_budget_override, Memory};
pub use module::{FuncId, GlobalId, Module};
pub use types::{Reg, RegionId, Word};
