//! Sparse word-granular memory.
//!
//! Both the interpreter's architectural memory and the simulator's NVM image
//! are [`Memory`] instances: sparse maps from 8-byte-aligned addresses to
//! words. Sparsity is what lets the reproduction simulate the paper's
//! multi-gigabyte footprints (2.5–6 GB, §IX-C) without allocating them.

use crate::types::Word;
use std::collections::HashMap;

/// Sparse, word-granular memory. Unwritten words read as zero.
///
/// # Example
/// ```
/// use cwsp_ir::Memory;
/// let mut m = Memory::new();
/// assert_eq!(m.load(0x1000), 0);
/// m.store(0x1000, 42);
/// assert_eq!(m.load(0x1000), 42);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    words: HashMap<Word, Word>,
}

impl Memory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Read the word at `addr`.
    ///
    /// # Panics
    /// Debug-asserts 8-byte alignment.
    #[inline]
    pub fn load(&self, addr: Word) -> Word {
        debug_assert_eq!(addr % 8, 0, "unaligned load at {addr:#x}");
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Write the word at `addr`, returning the previous value.
    ///
    /// # Panics
    /// Debug-asserts 8-byte alignment.
    #[inline]
    pub fn store(&mut self, addr: Word, value: Word) -> Word {
        debug_assert_eq!(addr % 8, 0, "unaligned store at {addr:#x}");
        if value == 0 {
            // Keep the map sparse: a zero store restores "never written".
            self.words.remove(&addr).unwrap_or(0)
        } else {
            self.words.insert(addr, value).unwrap_or(0)
        }
    }

    /// Number of non-zero words currently stored.
    pub fn nonzero_words(&self) -> usize {
        self.words.len()
    }

    /// Iterate `(addr, value)` over non-zero words (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (Word, Word)> + '_ {
        self.words.iter().map(|(a, v)| (*a, *v))
    }

    /// Compare this memory with `other` over addresses `filter` accepts,
    /// returning up to `limit` differing addresses as
    /// `(addr, self_value, other_value)`.
    ///
    /// Used by the consistency verifier to compare a recovered run's NVM image
    /// against the failure-free oracle while ignoring hardware metadata.
    pub fn diff_where(
        &self,
        other: &Memory,
        mut filter: impl FnMut(Word) -> bool,
        limit: usize,
    ) -> Vec<(Word, Word, Word)> {
        let mut out = Vec::new();
        for (&a, &v) in &self.words {
            if out.len() >= limit {
                break;
            }
            if filter(a) && other.load(a) != v {
                out.push((a, v, other.load(a)));
            }
        }
        for (&a, &v) in &other.words {
            if out.len() >= limit {
                break;
            }
            if filter(a) && !self.words.contains_key(&a) && v != 0 {
                out.push((a, 0, v));
            }
        }
        out
    }
}

impl FromIterator<(Word, Word)> for Memory {
    fn from_iter<T: IntoIterator<Item = (Word, Word)>>(iter: T) -> Self {
        let mut m = Memory::new();
        for (a, v) in iter {
            m.store(a, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default_and_roundtrip() {
        let mut m = Memory::new();
        assert_eq!(m.load(8), 0);
        assert_eq!(m.store(8, 5), 0);
        assert_eq!(m.store(8, 7), 5);
        assert_eq!(m.load(8), 7);
    }

    #[test]
    fn zero_store_keeps_sparse() {
        let mut m = Memory::new();
        m.store(16, 9);
        assert_eq!(m.nonzero_words(), 1);
        assert_eq!(m.store(16, 0), 9);
        assert_eq!(m.nonzero_words(), 0);
        assert_eq!(m.load(16), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    #[cfg(debug_assertions)]
    fn unaligned_traps_in_debug() {
        Memory::new().load(3);
    }

    #[test]
    fn diff_where_finds_asymmetric_differences() {
        let a: Memory = [(8, 1), (16, 2)].into_iter().collect();
        let b: Memory = [(8, 1), (24, 3)].into_iter().collect();
        let mut d = a.diff_where(&b, |_| true, 10);
        d.sort();
        assert_eq!(d, vec![(16, 2, 0), (24, 0, 3)]);
        // filter excludes
        let d2 = a.diff_where(&b, |addr| addr < 16, 10);
        assert!(d2.is_empty());
        // limit respected
        let d3 = a.diff_where(&b, |_| true, 1);
        assert_eq!(d3.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let m: Memory = [(8, 1), (16, 0)].into_iter().collect();
        assert_eq!(m.nonzero_words(), 1);
    }
}
