//! # cwsp-core — the end-to-end cWSP system
//!
//! This crate is the paper's *primary contribution* assembled: it ties the
//! cWSP compiler (`cwsp-compiler`), the architecture model (`cwsp-sim`), and
//! the power-failure recovery protocol (§VII) into one pipeline:
//!
//! ```text
//! source module ──compile──▶ regions + checkpoints + recovery slices
//!        │                            │
//!        ▼                            ▼
//!   oracle run                simulate (cWSP machine)
//!        │                            │ power failure at cycle C
//!        │                            ▼
//!        │                 crash image (NVM + undo logs + RS pointer)
//!        │                            │ revert logs, restore live-ins,
//!        │                            ▼ re-execute oldest unpersisted region
//!        └────────── compare ◀── recovered run
//! ```
//!
//! The paper explicitly leaves system-level recovery testing as future work
//! (§VIII, "No Power Failure Recovery Test"); [`verify`] closes that gap —
//! [`verify::check_crash_consistency`] asserts, for any crash cycle, that the
//! recovered execution reproduces the failure-free run's output, return value,
//! and final program data bit-for-bit. [`genprog`] generates random structured
//! programs so property tests can sweep both programs and crash points.
//!
//! ## Example
//!
//! ```
//! use cwsp_core::system::CwspSystem;
//! use cwsp_core::genprog::{ProgramSpec, generate};
//!
//! let module = generate(&ProgramSpec::default(), 7);
//! let system = CwspSystem::compile(&module);
//! // Crash 2000 cycles in, then recover and verify against the oracle.
//! let report = cwsp_core::verify::check_crash_consistency(&system, 2_000).unwrap();
//! assert!(report.recovered_matches_oracle);
//! ```

pub mod genprog;
pub mod prng;
pub mod recovery;
pub mod system;
pub mod verify;

pub use recovery::{
    recover, recover_multicore, MulticoreRecoveredRun, RecoveredRun, RecoveryError,
};
pub use system::CwspSystem;
