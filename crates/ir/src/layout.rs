//! The simulated machine's virtual address-space layout.
//!
//! cWSP is a *whole-system* persistence design: NVM is main memory and every
//! store — user data, stack spills, register checkpoints, hardware recovery
//! metadata — goes through the persist path. This module fixes where each of
//! those classes of state lives so the compiler, interpreter, simulator, and
//! recovery runtime agree.
//!
//! All regions are disjoint and 8-byte aligned. Addresses are virtual; the
//! memory-controller interleave in `cwsp-sim` hashes physical placement from
//! these addresses.

use crate::types::{Reg, Word};

/// Base of the global/static data segment.
pub const GLOBAL_BASE: Word = 0x0000_0001_0000_0000;

/// Base of the simulated heap (`cwsp-runtime`'s `malloc`/`sbrk` arena).
pub const HEAP_BASE: Word = 0x0000_0010_0000_0000;

/// Top of the downward-growing call stack (one stack per core, separated by
/// [`STACK_STRIDE`]).
pub const STACK_TOP: Word = 0x0000_0100_0000_0000;

/// Per-core stack separation (256 MiB).
pub const STACK_STRIDE: Word = 0x1000_0000;

/// Base of the register-checkpoint slot area: "a designated storage in NVM,
/// indexed by architectural registers and managed by cWSP hardware" (§IV-B).
pub const CKPT_BASE: Word = 0x0000_1000_0000_0000;

/// Per-core stride of the checkpoint slot area.
pub const CKPT_STRIDE: Word = 0x0010_0000;

/// Base of the hardware recovery-metadata area where the RBT head's recovery
/// point ("RS Pointer", §V-B1 step 4) is persisted when a region retires.
pub const RECOVERY_META_BASE: Word = 0x0000_2000_0000_0000;

/// Per-core stride of the recovery-metadata area.
pub const RECOVERY_META_STRIDE: Word = 0x1000;

/// Base of the per-MC undo-log arrays ("its own log area", §V-B2). Each MC
/// owns a [`UNDO_LOG_STRIDE`]-sized window.
pub const UNDO_LOG_BASE: Word = 0x0000_4000_0000_0000;

/// Per-MC stride of the undo-log area (1 GiB of log space per controller).
pub const UNDO_LOG_STRIDE: Word = 0x4000_0000;

/// Tag marking a not-yet-resolved global reference produced by
/// [`crate::inst::MemRef::global`]: `GLOBAL_TAG | (global_id << 32) | byte_offset`.
pub const GLOBAL_TAG: Word = 0xF000_0000_0000_0000;

/// The NVM slot address for checkpointing register `reg` of core `core`.
///
/// # Example
/// ```
/// use cwsp_ir::layout::{ckpt_slot_addr, CKPT_BASE};
/// use cwsp_ir::Reg;
/// assert_eq!(ckpt_slot_addr(0, Reg(0)), CKPT_BASE);
/// assert_eq!(ckpt_slot_addr(0, Reg(2)), CKPT_BASE + 16);
/// ```
#[inline]
pub fn ckpt_slot_addr(core: usize, reg: Reg) -> Word {
    CKPT_BASE + core as Word * CKPT_STRIDE + reg.index() as Word * 8
}

/// Stack base (highest address) for `core`.
#[inline]
pub fn stack_top(core: usize) -> Word {
    STACK_TOP - core as Word * STACK_STRIDE
}

/// Whether `addr` carries a [`GLOBAL_TAG`] marker.
#[inline]
pub fn is_tagged_global(addr: Word) -> bool {
    addr & GLOBAL_TAG == GLOBAL_TAG
}

/// Split a tagged global address into `(global_id, byte_offset)`.
///
/// # Panics
/// Debug-asserts that `addr` is tagged.
#[inline]
pub fn untag_global(addr: Word) -> (u32, Word) {
    debug_assert!(is_tagged_global(addr));
    (((addr & !GLOBAL_TAG) >> 32) as u32, addr & 0xFFFF_FFFF)
}

/// Whether `addr` falls in the checkpoint-slot area (used by statistics to
/// separate checkpoint write traffic from program write traffic).
#[inline]
pub fn is_ckpt_addr(addr: Word) -> bool {
    (CKPT_BASE..RECOVERY_META_BASE).contains(&addr)
}

/// Whether `addr` is hardware metadata (recovery points or undo logs) rather
/// than software-visible memory.
#[inline]
pub fn is_hw_meta_addr(addr: Word) -> bool {
    addr >= RECOVERY_META_BASE
}

/// Lowest address of the (per-core) stack region, assuming at most 256 cores.
pub const STACK_REGION_BASE: Word = STACK_TOP - 256 * STACK_STRIDE;

/// Whether `addr` is program *data* (globals or heap) — the state whose final
/// contents crash-consistency verification compares. Stack frames (dead after
/// return), checkpoint slots, and hardware metadata are excluded.
#[inline]
pub fn is_program_data(addr: Word) -> bool {
    (GLOBAL_BASE..STACK_REGION_BASE).contains(&addr)
}

// Layout invariants, checked at compile time: the regions must be disjoint
// and ordered, or every address-class predicate above is wrong.
const _: () = {
    assert!(GLOBAL_BASE < HEAP_BASE);
    assert!(HEAP_BASE < STACK_TOP);
    assert!(STACK_TOP <= CKPT_BASE);
    assert!(CKPT_BASE < RECOVERY_META_BASE);
    assert!(RECOVERY_META_BASE < UNDO_LOG_BASE);
    assert!(UNDO_LOG_BASE < GLOBAL_TAG);
    assert!(HEAP_BASE < STACK_REGION_BASE);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckpt_slots_per_core_do_not_overlap() {
        let last_slot_core0 = ckpt_slot_addr(0, Reg((CKPT_STRIDE / 8 - 1) as u32));
        assert!(last_slot_core0 < ckpt_slot_addr(1, Reg(0)) + CKPT_STRIDE);
        assert_eq!(ckpt_slot_addr(1, Reg(0)), CKPT_BASE + CKPT_STRIDE);
    }

    #[test]
    fn tag_roundtrip() {
        let a = GLOBAL_TAG | (7u64 << 32) | 24;
        assert!(is_tagged_global(a));
        assert_eq!(untag_global(a), (7, 24));
        assert!(!is_tagged_global(GLOBAL_BASE));
    }

    #[test]
    fn address_class_predicates() {
        assert!(is_ckpt_addr(ckpt_slot_addr(3, Reg(5))));
        assert!(!is_ckpt_addr(GLOBAL_BASE));
        assert!(is_hw_meta_addr(RECOVERY_META_BASE));
        assert!(is_hw_meta_addr(UNDO_LOG_BASE + 8));
        assert!(!is_hw_meta_addr(STACK_TOP - 8));
    }

    #[test]
    fn program_data_predicate() {
        assert!(is_program_data(GLOBAL_BASE));
        assert!(is_program_data(HEAP_BASE + 8));
        assert!(!is_program_data(stack_top(0) - 8));
        assert!(!is_program_data(ckpt_slot_addr(0, Reg(0))));
        assert!(!is_program_data(RECOVERY_META_BASE));
    }

    #[test]
    fn per_core_stacks_disjoint() {
        assert!(stack_top(1) < stack_top(0));
        assert_eq!(stack_top(0) - stack_top(1), STACK_STRIDE);
    }
}
