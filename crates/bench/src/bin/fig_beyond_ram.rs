//! Beyond-RAM demo: the `beyond_ram` probe's 8 MB simulated footprint is
//! paged through the tiered store when `CWSP_MEM_BUDGET` caps resident
//! pages below the working set (CI runs it at a 16× footprint/budget
//! ratio). Everything printed here is architectural — cycles, instruction
//! and persist traffic — so the output is byte-identical whether the tier
//! is enabled or not; the CI `storage-smoke` job diffs a budgeted run
//! against an unbounded one and reads the paging counters out of the
//! `CWSP_TIER_JSON` snapshot instead of stdout.

use cwsp_bench::{cached_stats, scheme_stats};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;
use cwsp_workloads::probes::{beyond_ram, BEYOND_RAM_PAGES};

fn main() {
    cwsp_bench::harness_main("fig_beyond_ram", run);
}

fn run() {
    let w = beyond_ram();
    let cfg = SimConfig::default();
    println!("\n=== Beyond-RAM: tiered page store demo ===");
    println!(
        "   footprint     {:>8} pages ({} MB simulated)",
        BEYOND_RAM_PAGES,
        BEYOND_RAM_PAGES * 4096 / (1 << 20)
    );
    let base = cached_stats(w.name, &w.module, &cfg, Scheme::Baseline);
    let cwsp = scheme_stats(&w, &cfg, Scheme::cwsp(), CompileOptions::default());
    for (label, s) in [("baseline", &base), ("cwsp", &cwsp)] {
        println!("-- {label}");
        println!("   cycles        {:>12}", s.cycles);
        println!("   insts         {:>12}", s.insts);
        println!("   loads         {:>12}", s.loads);
        println!("   stores        {:>12}", s.stores);
        println!("   ckpt_stores   {:>12}", s.ckpt_stores);
        println!("   nvm_reads     {:>12}", s.nvm_reads);
        println!("   nvm_writes    {:>12}", s.nvm_writes);
    }
    println!("--");
    println!(
        "   slowdown      {:>12.3} x (cwsp vs baseline)",
        cwsp.cycles as f64 / base.cycles as f64
    );
}
