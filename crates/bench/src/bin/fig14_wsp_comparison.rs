//! Figure 14: cWSP vs prior whole-system-persistence schemes (paper:
//! ReplayCache ≈ 4.3×; Capri 1.27× at 4 GB/s and ≈ cWSP at 32 GB/s;
//! cWSP 1.06×).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig14_wsp_comparison", run);
}

fn run() {
    let apps = cwsp_workloads::all();
    let opts = CompileOptions::default();
    let configs: Vec<(&str, Scheme, f64)> = vec![
        ("ReplayCache", Scheme::ReplayCache, 4.0),
        ("Capri-4GB", Scheme::Capri, 4.0),
        ("Capri-32GB", Scheme::Capri, 32.0),
        ("cWSP-4GB", Scheme::cwsp(), 4.0),
        ("cWSP-32GB", Scheme::cwsp(), 32.0),
    ];
    println!("\n=== Fig 14: WSP scheme comparison (normalized slowdown gmeans) ===");
    for (label, scheme, bw) in configs {
        let cfg = SimConfig {
            persist_path_gbps: bw,
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| slowdown(w, &cfg, scheme, opts));
        println!("-- {label}");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
