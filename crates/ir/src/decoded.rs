//! Decode-once micro-op stream for the interpreter.
//!
//! [`Inst`] is the compiler's representation: per-block `Vec`s of enum nodes
//! whose `Call` variant owns heap-allocated argument and save-register lists.
//! Executing from it forces the interpreter to clone an `Inst` per step (the
//! borrow of the module would otherwise alias the mutable frame state), which
//! heap-allocates on every call.
//!
//! [`DecodedModule`] lowers a whole [`Module`] into one flat, contiguous
//! `Vec<DecodedInst>` — a `Copy` micro-op per instruction — plus side tables:
//!
//! * `(func, block) → [start, end)` ranges into the flat array, so branches
//!   are two array reads and fetch is one;
//! * `Call` argument/save lists interned into shared pools referenced by
//!   `(start, len)` ranges ([`PoolRange`]), so fetching a call copies 8 bytes
//!   instead of cloning two `Vec`s;
//! * memory operands with immediate bases pre-resolved to absolute addresses
//!   ([`DecAddr::Abs`]) at decode time — global-tag resolution depends only
//!   on the module's global table, which is frozen for the decode lifetime.
//!
//! Decoding is semantically invisible: the interpreter executing the decoded
//! stream must produce bit-identical [`crate::interp::StepEffect`] streams to
//! the tree-walking reference in [`crate::reference`], which the differential
//! tests assert.

use crate::function::BlockId;
use crate::inst::{AtomicOp, BinOp, Inst, MemRef, Operand};
use crate::layout;
use crate::module::{FuncId, Module};
use crate::types::{Reg, RegionId, Word};

/// Whether fused (superblock) dispatch is enabled for this process.
///
/// Controlled by the `CWSP_FUSE` environment variable: unset or any value
/// other than `"0"` enables fusion. Read once per process and cached —
/// fusion is a pure dispatch strategy, so flipping it never changes
/// architectural results or simulated statistics, only host-side speed.
pub fn fuse_enabled() -> bool {
    static FUSE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FUSE.get_or_init(|| std::env::var("CWSP_FUSE").map(|v| v != "0").unwrap_or(true))
}

/// A `(start, len)` window into one of the decode pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolRange {
    /// First pool index.
    pub start: u32,
    /// Number of entries.
    pub len: u32,
}

impl PoolRange {
    #[inline]
    fn range(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// A memory operand after decode-time address resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecAddr {
    /// Absolute address known at decode time (immediate base with the global
    /// tag and offset folded in). Alignment is still checked at execution
    /// time — a misaligned address must trap when reached, not at decode.
    Abs(Word),
    /// Register base: resolved (and offset) at execution time, because the
    /// register may hold a tagged global reference.
    Reg {
        /// Base register.
        base: Reg,
        /// Byte offset added after resolution.
        offset: i64,
    },
}

/// One pre-decoded micro-op. `Copy`: fetching never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedInst {
    /// Two-operand ALU op.
    Binary {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Register/immediate move.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Word load.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address operand.
        addr: DecAddr,
    },
    /// Word store.
    Store {
        /// Value operand.
        src: Operand,
        /// Address operand.
        addr: DecAddr,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch.
    CondBr {
        /// Condition operand (non-zero = taken).
        cond: Operand,
        /// Taken target.
        if_true: BlockId,
        /// Fall-through target.
        if_false: BlockId,
    },
    /// Call with interned argument and save lists.
    Call {
        /// Callee.
        func: FuncId,
        /// Arguments (window into the operand pool).
        args: PoolRange,
        /// Return-value register.
        ret: Option<Reg>,
        /// Live-across-call registers (window into the register pool).
        saves: PoolRange,
    },
    /// Return.
    Ret {
        /// Return value operand.
        val: Option<Operand>,
    },
    /// Atomic read-modify-write.
    AtomicRmw {
        /// Operation.
        op: AtomicOp,
        /// Destination register (receives the old value).
        dst: Reg,
        /// Address operand.
        addr: DecAddr,
        /// Source operand.
        src: Operand,
        /// Expected value (CAS only).
        expected: Operand,
    },
    /// Memory fence.
    Fence,
    /// Explicit region boundary.
    Boundary {
        /// Static region id.
        id: RegionId,
    },
    /// Register checkpoint store.
    Ckpt {
        /// Checkpointed register.
        reg: Reg,
    },
    /// Output word.
    Out {
        /// Emitted operand.
        val: Operand,
    },
    /// Halt.
    Halt,
    /// Cache-line writeback toward NVM (architectural no-op).
    FlushLine {
        /// Address operand naming the flushed line.
        addr: DecAddr,
    },
    /// Persist-ordering fence (architectural no-op).
    PFence,
}

/// Number of distinct opcodes (for instruction-mix counters).
pub const OPCODE_COUNT: usize = 16;

/// Opcode names, indexed by [`DecodedInst::opcode`].
pub const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "binary",
    "mov",
    "load",
    "store",
    "br",
    "cond_br",
    "call",
    "ret",
    "atomic_rmw",
    "fence",
    "boundary",
    "ckpt",
    "out",
    "halt",
    "flush",
    "pfence",
];

impl DecodedInst {
    /// Dense opcode index into [`OPCODE_NAMES`] / mix-counter arrays.
    #[inline]
    pub fn opcode(&self) -> usize {
        match self {
            DecodedInst::Binary { .. } => 0,
            DecodedInst::Mov { .. } => 1,
            DecodedInst::Load { .. } => 2,
            DecodedInst::Store { .. } => 3,
            DecodedInst::Br { .. } => 4,
            DecodedInst::CondBr { .. } => 5,
            DecodedInst::Call { .. } => 6,
            DecodedInst::Ret { .. } => 7,
            DecodedInst::AtomicRmw { .. } => 8,
            DecodedInst::Fence => 9,
            DecodedInst::Boundary { .. } => 10,
            DecodedInst::Ckpt { .. } => 11,
            DecodedInst::Out { .. } => 12,
            DecodedInst::Halt => 13,
            DecodedInst::FlushLine { .. } => 14,
            DecodedInst::PFence => 15,
        }
    }
}

/// Classification of one fused super-op: a maximal run of consecutive
/// micro-ops that the fused execution core dispatches as a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuperOpKind {
    /// Consecutive register-only ops (`Binary`/`Mov`): executed as one burst
    /// with no per-op effect bookkeeping.
    AluRun,
    /// A `Binary` compare whose result feeds the immediately following
    /// `CondBr` — the classic compare-and-branch fusion pair.
    CmpBranch,
    /// `Load`; `Binary` consuming the loaded register; `Store` of the ALU
    /// result — the load/op/store triple, dispatched back-to-back.
    LoadOpStore,
    /// Any other op (memory, call/ret, sync, region, I/O), dispatched alone.
    Single,
}

/// One fused dispatch unit: `len` consecutive micro-ops starting at flat
/// index `start`. Super-ops never cross a basic-block boundary, so each is a
/// straight-line superblock segment with statically known register indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperOp {
    /// Fusion class.
    pub kind: SuperOpKind,
    /// First flat op index.
    pub start: u32,
    /// Number of micro-ops covered.
    pub len: u32,
}

/// Per-function metadata the execution hot path needs without touching the
/// source [`Module`].
#[derive(Debug, Clone, Copy)]
pub struct FuncMeta {
    /// Virtual register count (frame size).
    pub reg_count: u32,
    /// Parameter count.
    pub param_count: u32,
    /// Number of blocks (bounds-checks branch targets in
    /// [`DecodedModule::block_range`]).
    block_count: u32,
    /// Index of this function's block 0 in the flat block tables.
    first_block: u32,
}

/// A [`Module`] lowered to a flat micro-op array plus lookup tables.
///
/// Immutable once built; one instance is shared (via `Arc`) by every core's
/// interpreter in a multicore simulation.
#[derive(Debug, Clone)]
pub struct DecodedModule {
    /// All instructions of all functions, blocks laid out contiguously.
    ops: Vec<DecodedInst>,
    /// Flat per-block start offsets into `ops` (indexed via `FuncMeta`).
    block_starts: Vec<u32>,
    /// Flat per-block end offsets into `ops` (`start..end` is the block).
    block_ends: Vec<u32>,
    /// Per-function metadata, indexed by [`FuncId`].
    funcs: Vec<FuncMeta>,
    /// Interned `Call` argument operands.
    args_pool: Vec<Operand>,
    /// Interned `Call` save-register lists.
    saves_pool: Vec<Reg>,
    /// Global base addresses, indexed by global id (for tag resolution).
    global_addrs: Vec<Word>,
    /// Fused dispatch units in flat program order (the superblock table).
    super_ops: Vec<SuperOp>,
    /// Flat op index → index into `super_ops` (superblock attribution).
    sb_of: Vec<u32>,
}

impl DecodedModule {
    /// Lower `module` into a decoded micro-op stream.
    pub fn new(module: &Module) -> Self {
        let mut d = DecodedModule {
            ops: Vec::with_capacity(module.inst_count()),
            block_starts: Vec::new(),
            block_ends: Vec::new(),
            funcs: Vec::with_capacity(module.function_count()),
            args_pool: Vec::new(),
            saves_pool: Vec::new(),
            global_addrs: module.globals().iter().map(|g| g.addr).collect(),
            super_ops: Vec::new(),
            sb_of: Vec::new(),
        };
        for (_, f) in module.iter_functions() {
            d.funcs.push(FuncMeta {
                reg_count: f.reg_count,
                param_count: f.param_count,
                block_count: f.blocks.len() as u32,
                first_block: d.block_starts.len() as u32,
            });
            for (_, block) in f.iter_blocks() {
                d.block_starts.push(d.ops.len() as u32);
                for inst in &block.insts {
                    let op = d.decode(inst);
                    d.ops.push(op);
                }
                d.block_ends.push(d.ops.len() as u32);
            }
        }
        d.build_super_ops();
        d
    }

    /// Post-decode fusion pass: partition every basic block into super-ops.
    fn build_super_ops(&mut self) {
        self.sb_of = vec![0; self.ops.len()];
        for (&s, &e) in self.block_starts.iter().zip(&self.block_ends) {
            let mut i = s as usize;
            let end = e as usize;
            while i < end {
                let (kind, len) = self.classify(i, end);
                let idx = self.super_ops.len() as u32;
                self.super_ops.push(SuperOp {
                    kind,
                    start: i as u32,
                    len,
                });
                for slot in &mut self.sb_of[i..i + len as usize] {
                    *slot = idx;
                }
                i += len as usize;
            }
        }
    }

    /// The fusion rule at flat index `i` (block ends at `end`, exclusive).
    fn classify(&self, i: usize, end: usize) -> (SuperOpKind, u32) {
        let is_alu =
            |op: &DecodedInst| matches!(op, DecodedInst::Binary { .. } | DecodedInst::Mov { .. });
        if is_alu(&self.ops[i]) {
            let mut j = i + 1;
            while j < end && is_alu(&self.ops[j]) {
                j += 1;
            }
            // A trailing compare feeding the block's CondBr splits off as a
            // fused compare-and-branch pair.
            if j < end {
                if let (DecodedInst::Binary { dst, .. }, DecodedInst::CondBr { cond, .. }) =
                    (self.ops[j - 1], self.ops[j])
                {
                    if cond == Operand::Reg(dst) {
                        if j - 1 > i {
                            return (SuperOpKind::AluRun, (j - 1 - i) as u32);
                        }
                        return (SuperOpKind::CmpBranch, 2);
                    }
                }
            }
            return (SuperOpKind::AluRun, (j - i) as u32);
        }
        if i + 2 < end {
            if let (
                DecodedInst::Load { dst: ld, .. },
                DecodedInst::Binary {
                    dst: od, lhs, rhs, ..
                },
                DecodedInst::Store { src, .. },
            ) = (self.ops[i], self.ops[i + 1], self.ops[i + 2])
            {
                let feeds = lhs == Operand::Reg(ld) || rhs == Operand::Reg(ld);
                if feeds && src == Operand::Reg(od) {
                    return (SuperOpKind::LoadOpStore, 3);
                }
            }
        }
        (SuperOpKind::Single, 1)
    }

    fn decode(&mut self, inst: &Inst) -> DecodedInst {
        match inst {
            Inst::Binary { op, dst, lhs, rhs } => DecodedInst::Binary {
                op: *op,
                dst: *dst,
                lhs: *lhs,
                rhs: *rhs,
            },
            Inst::Mov { dst, src } => DecodedInst::Mov {
                dst: *dst,
                src: *src,
            },
            Inst::Load { dst, addr } => DecodedInst::Load {
                dst: *dst,
                addr: self.decode_addr(addr),
            },
            Inst::Store { src, addr } => DecodedInst::Store {
                src: *src,
                addr: self.decode_addr(addr),
            },
            Inst::Br { target } => DecodedInst::Br { target: *target },
            Inst::CondBr {
                cond,
                if_true,
                if_false,
            } => DecodedInst::CondBr {
                cond: *cond,
                if_true: *if_true,
                if_false: *if_false,
            },
            Inst::Call {
                func,
                args,
                ret,
                save_regs,
            } => {
                let a = PoolRange {
                    start: self.args_pool.len() as u32,
                    len: args.len() as u32,
                };
                self.args_pool.extend_from_slice(args);
                let s = PoolRange {
                    start: self.saves_pool.len() as u32,
                    len: save_regs.len() as u32,
                };
                self.saves_pool.extend_from_slice(save_regs);
                DecodedInst::Call {
                    func: *func,
                    args: a,
                    ret: *ret,
                    saves: s,
                }
            }
            Inst::Ret { val } => DecodedInst::Ret { val: *val },
            Inst::AtomicRmw {
                op,
                dst,
                addr,
                src,
                expected,
            } => DecodedInst::AtomicRmw {
                op: *op,
                dst: *dst,
                addr: self.decode_addr(addr),
                src: *src,
                expected: *expected,
            },
            Inst::Fence => DecodedInst::Fence,
            Inst::Boundary { id } => DecodedInst::Boundary { id: *id },
            Inst::Ckpt { reg } => DecodedInst::Ckpt { reg: *reg },
            Inst::Out { val } => DecodedInst::Out { val: *val },
            Inst::FlushLine { addr } => DecodedInst::FlushLine {
                addr: self.decode_addr(addr),
            },
            Inst::PFence => DecodedInst::PFence,
            Inst::Halt => DecodedInst::Halt,
        }
    }

    fn decode_addr(&self, m: &MemRef) -> DecAddr {
        match m.base {
            // Fold the runtime computation `resolve(imm) + offset` now; the
            // global table cannot change under us (the module is borrowed
            // for the decode call and globals are append-only).
            Operand::Imm(v) => DecAddr::Abs(self.resolve_addr(v).wrapping_add(m.offset as Word)),
            Operand::Reg(r) => DecAddr::Reg {
                base: r,
                offset: m.offset,
            },
        }
    }

    /// Resolve a possibly global-tagged address — same semantics as
    /// [`Module::resolve_addr`]: values that merely look tagged but name no
    /// real global pass through unchanged.
    #[inline]
    pub fn resolve_addr(&self, addr: Word) -> Word {
        if layout::is_tagged_global(addr) {
            let (id, off) = layout::untag_global(addr);
            if let Some(&base) = self.global_addrs.get(id as usize) {
                return base + off;
            }
        }
        addr
    }

    /// Number of functions.
    #[inline]
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Per-function metadata.
    ///
    /// # Panics
    /// Panics if `f` is out of range.
    #[inline]
    pub fn func(&self, f: FuncId) -> FuncMeta {
        self.funcs[f.index()]
    }

    /// `[start, end)` range of `block` of `func` in the flat op array.
    ///
    /// # Panics
    /// Panics if the function or block id is out of range.
    #[inline]
    pub fn block_range(&self, func: FuncId, block: BlockId) -> (u32, u32) {
        let meta = self.funcs[func.index()];
        assert!(
            block.0 < meta.block_count,
            "block {block} out of range for function {func}"
        );
        let i = (meta.first_block + block.0) as usize;
        (self.block_starts[i], self.block_ends[i])
    }

    /// The micro-op at flat index `pc`.
    ///
    /// # Panics
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn op(&self, pc: u32) -> DecodedInst {
        self.ops[pc as usize]
    }

    /// The interned argument operands of a [`DecodedInst::Call`].
    #[inline]
    pub fn args(&self, r: PoolRange) -> &[Operand] {
        &self.args_pool[r.range()]
    }

    /// The interned save-register list of a [`DecodedInst::Call`].
    #[inline]
    pub fn saves(&self, r: PoolRange) -> &[Reg] {
        &self.saves_pool[r.range()]
    }

    /// Total number of decoded micro-ops.
    #[inline]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The fused dispatch units (superblock table), in flat program order.
    #[inline]
    pub fn super_ops(&self) -> &[SuperOp] {
        &self.super_ops
    }

    /// Index into [`DecodedModule::super_ops`] of the super-op containing the
    /// micro-op at flat index `pc`.
    ///
    /// # Panics
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn super_op_of(&self, pc: u32) -> u32 {
        self.sb_of[pc as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn layout_is_flat_and_contiguous() {
        let mut m = Module::new("t");
        let mut f0 = FunctionBuilder::new("f", 1);
        let e = f0.entry();
        let b1 = f0.block();
        f0.push(e, Inst::Br { target: b1 });
        f0.push(b1, Inst::Ret { val: None });
        let f = m.add_function(f0.build());

        let mut f1 = FunctionBuilder::new("main", 0);
        let e1 = f1.entry();
        let r = f1.vreg();
        f1.push(
            e1,
            Inst::Call {
                func: f,
                args: vec![Operand::imm(1), Operand::imm(2)],
                ret: Some(r),
                save_regs: vec![r],
            },
        );
        f1.push(e1, Inst::Halt);
        let main = m.add_function(f1.build());
        m.set_entry(main);

        let d = DecodedModule::new(&m);
        assert_eq!(d.op_count(), m.inst_count());
        assert_eq!(d.func_count(), 2);
        // f: block 0 = [0,1), block 1 = [1,2); main: block 0 = [2,4).
        assert_eq!(d.block_range(f, BlockId(0)), (0, 1));
        assert_eq!(d.block_range(f, BlockId(1)), (1, 2));
        assert_eq!(d.block_range(main, BlockId(0)), (2, 4));
        // The call's lists are interned, not owned.
        let DecodedInst::Call { args, saves, .. } = d.op(2) else {
            panic!("expected call at pc 2, got {:?}", d.op(2));
        };
        assert_eq!(d.args(args), &[Operand::imm(1), Operand::imm(2)]);
        assert_eq!(d.saves(saves), &[r]);
        assert_eq!(d.func(f).param_count, 1);
        assert_eq!(d.func(f).reg_count, 1);
    }

    #[test]
    fn imm_bases_fold_to_absolute_addresses() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 4);
        let mut fb = FunctionBuilder::new("main", 0);
        let e = fb.entry();
        let v = fb.load(e, MemRef::global(g, 2));
        fb.store(e, v.into(), MemRef::abs(0x4000));
        fb.push(e, Inst::Halt);
        let main = m.add_function(fb.build());
        m.set_entry(main);

        let d = DecodedModule::new(&m);
        let (start, _) = d.block_range(main, BlockId(0));
        let DecodedInst::Load { addr, .. } = d.op(start) else {
            panic!("expected load");
        };
        assert_eq!(addr, DecAddr::Abs(m.global_addr(g) + 16));
        let DecodedInst::Store { addr, .. } = d.op(start + 1) else {
            panic!("expected store");
        };
        assert_eq!(addr, DecAddr::Abs(0x4000));
    }

    #[test]
    fn fusion_pass_segments_blocks() {
        use crate::inst::BinOp;
        let mut m = Module::new("t");
        let g = m.add_global("g", 4);
        let mut fb = FunctionBuilder::new("main", 0);
        let e = fb.entry();
        let exit = fb.block();
        // AluRun(2): mov + add; CmpBranch(2): cmp + cond_br.
        let x = fb.mov(e, Operand::imm(1));
        let y = fb.bin(e, BinOp::Add, x.into(), Operand::imm(2));
        let c = fb.bin(e, BinOp::CmpLtU, y.into(), Operand::imm(10));
        fb.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: exit,
                if_false: exit,
            },
        );
        // LoadOpStore(3) then Halt as Single(1).
        let v = fb.load(exit, MemRef::global(g, 0));
        let w = fb.bin(exit, BinOp::Add, v.into(), Operand::imm(1));
        fb.store(exit, w.into(), MemRef::global(g, 0));
        fb.push(exit, Inst::Halt);
        let main = m.add_function(fb.build());
        m.set_entry(main);

        let d = DecodedModule::new(&m);
        let kinds: Vec<(SuperOpKind, u32)> =
            d.super_ops().iter().map(|s| (s.kind, s.len)).collect();
        assert_eq!(
            kinds,
            vec![
                (SuperOpKind::AluRun, 2),
                (SuperOpKind::CmpBranch, 2),
                (SuperOpKind::LoadOpStore, 3),
                (SuperOpKind::Single, 1),
            ]
        );
        // Every op maps back to its covering super-op, and coverage is total.
        let total: u32 = d.super_ops().iter().map(|s| s.len).sum();
        assert_eq!(total as usize, d.op_count());
        for (idx, s) in d.super_ops().iter().enumerate() {
            for pc in s.start..s.start + s.len {
                assert_eq!(d.super_op_of(pc) as usize, idx);
            }
        }
    }

    #[test]
    fn resolve_matches_module_semantics() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 4);
        let mut fb = FunctionBuilder::new("main", 0);
        fb.push(fb.entry(), Inst::Halt);
        let main = m.add_function(fb.build());
        m.set_entry(main);
        let d = DecodedModule::new(&m);
        let tagged = layout::GLOBAL_TAG | ((g.0 as Word) << 32) | 16;
        assert_eq!(d.resolve_addr(tagged), m.resolve_addr(tagged));
        // Fake tag (no such global) passes through, as in Module.
        let fake = layout::GLOBAL_TAG | (99u64 << 32) | 8;
        assert_eq!(d.resolve_addr(fake), m.resolve_addr(fake));
        assert_eq!(d.resolve_addr(0x1234 * 8), 0x1234 * 8);
    }
}
