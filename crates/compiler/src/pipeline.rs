//! The end-to-end cWSP compilation pipeline.

use crate::callsave::compute_call_saves;
use crate::checkpoint::{insert_checkpoints, CkptMode};
use crate::prune::prune_and_build_slices;
use crate::region::form_regions;
use crate::slice::SliceTable;
use crate::split::split_same_reg_updates;
use crate::stats::CompileStats;
use cwsp_ir::module::Module;

/// Compilation options (the compiler side of the Fig 15 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Apply checkpoint pruning (§IV-C). When `false`, checkpoints are placed
    /// iDO-style — all live registers at every region end — which is the
    /// "before +Pruning" configuration of Fig 15.
    pub pruning: bool,
    /// When pruning, also rematerialize via expressions over remaining
    /// checkpoint slots (the full Penny tier); `false` restricts recovery
    /// slices to constants + slot loads (the `ablation_pruning_tiers`
    /// experiment).
    pub expr_remat: bool,
    /// Run classic scalar optimizations (constant folding, copy propagation,
    /// DCE) before the persistence passes — the paper's `-O3` analogue.
    pub optimize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            pruning: true,
            expr_remat: true,
            optimize: true,
        }
    }
}

/// A compiled program: the transformed module plus recovery metadata.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The region-partitioned, checkpoint-instrumented module.
    pub module: Module,
    /// Recovery slices, one per explicit region boundary (§VII).
    pub slices: SliceTable,
    /// Static statistics.
    pub stats: CompileStats,
}

/// The cWSP compiler (§IV). Construct with options, then [`CwspCompiler::compile`].
///
/// # Example
/// ```
/// use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
/// use cwsp_ir::prelude::*;
///
/// let mut m = Module::new("m");
/// let mut b = FunctionBuilder::new("main", 0);
/// let e = b.entry();
/// let r = b.load(e, MemRef::abs(64));
/// b.store(e, r.into(), MemRef::abs(64));
/// b.push(e, Inst::Halt);
/// let f = m.add_function(b.build());
/// m.set_entry(f);
///
/// let out = CwspCompiler::new(CompileOptions::default()).compile(&m);
/// assert_eq!(out.stats.antidep_cuts, 1); // the load/store WAR was cut
/// ```
#[derive(Debug, Clone, Default)]
pub struct CwspCompiler {
    options: CompileOptions,
}

impl CwspCompiler {
    /// Create a compiler with the given options.
    pub fn new(options: CompileOptions) -> Self {
        CwspCompiler { options }
    }

    /// The configured options.
    pub fn options(&self) -> CompileOptions {
        self.options
    }

    /// Compile `input` into a region-partitioned, recoverable program.
    ///
    /// The input module is not modified; hand-written boundaries (e.g. the
    /// simulated kernel entry path, §VI) are preserved and renumbered.
    ///
    /// # Panics
    /// Panics if the transformed module fails structural validation — that
    /// would be a compiler bug, not a user error.
    pub fn compile(&self, input: &Module) -> Compiled {
        let mut module = input.clone();
        let mut stats = CompileStats {
            insts_before: module.inst_count(),
            ..Default::default()
        };

        if self.options.optimize {
            let info = crate::opt::optimize(&mut module);
            stats.opt_folded = info.folded;
            stats.opt_dce = info.dce_removed;
        }
        stats.call_saves = compute_call_saves(&mut module);
        stats.updates_split = split_same_reg_updates(&mut module);

        let region_info = form_regions(&mut module);
        stats.boundaries_inserted = region_info.boundaries;
        stats.antidep_cuts = region_info.antidep_cuts;
        stats.structural_boundaries = region_info.structural;

        let mode = if self.options.pruning {
            CkptMode::DefSite
        } else {
            CkptMode::PerBoundary
        };
        insert_checkpoints(&mut module, mode);

        let (slices, prune_info) =
            prune_and_build_slices(&mut module, self.options.pruning, self.options.expr_remat);
        stats.ckpts_pruned = prune_info.ckpts_pruned;
        stats.const_restores = prune_info.const_restores;
        stats.slot_restores = prune_info.slot_restores;
        stats.finalize_counts(&module);

        module
            .validate()
            .unwrap_or_else(|e| panic!("cWSP compiler produced invalid IR: {e}"));
        Compiled {
            module,
            slices,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};

    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let g = m.add_global("g", 4);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(30), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
        });
        let v = b.load(exit, MemRef::global(g, 0));
        b.push(
            exit,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }

    #[test]
    fn pipeline_preserves_semantics_pruned_and_unpruned() {
        let m = sample_module();
        let oracle = cwsp_ir::interp::run(&m, 100_000).unwrap();
        for pruning in [true, false] {
            let c = CwspCompiler::new(CompileOptions {
                pruning,
                ..Default::default()
            })
            .compile(&m);
            let out = cwsp_ir::interp::run(&c.module, 100_000).unwrap();
            assert_eq!(out.return_value, oracle.return_value, "pruning={pruning}");
        }
    }

    #[test]
    fn pruning_reduces_dynamic_checkpoint_stores() {
        // The meaningful metric is NVM write traffic: count executed Ckpt
        // effects under both configurations.
        let m = sample_module();
        let dynamic_ckpts = |module: &Module| {
            let mut mem = cwsp_ir::memory::Memory::new();
            let mut i = cwsp_ir::interp::Interp::new(module, 0, &mut mem).unwrap();
            let mut n = 0u64;
            while !i.is_halted() {
                let e = i.step(&mut mem).unwrap();
                if e.kind == cwsp_ir::interp::EffectKind::Ckpt {
                    n += 1;
                }
            }
            n
        };
        let pruned = CwspCompiler::new(CompileOptions {
            pruning: true,
            ..Default::default()
        })
        .compile(&m);
        let unpruned = CwspCompiler::new(CompileOptions {
            pruning: false,
            ..Default::default()
        })
        .compile(&m);
        let (p, u) = (
            dynamic_ckpts(&pruned.module),
            dynamic_ckpts(&unpruned.module),
        );
        assert!(p < u, "pruned {p} !< unpruned {u}");
    }

    #[test]
    fn every_boundary_has_a_slice() {
        let m = sample_module();
        let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
        for (_, f) in c.module.iter_functions() {
            for block in &f.blocks {
                for inst in &block.insts {
                    if let Inst::Boundary { id } = inst {
                        assert!(c.slices.get(*id).is_some(), "missing slice for {id}");
                    }
                }
            }
        }
    }

    #[test]
    fn input_module_is_untouched() {
        let m = sample_module();
        let before = m.inst_count();
        let _ = CwspCompiler::new(CompileOptions::default()).compile(&m);
        assert_eq!(m.inst_count(), before);
    }
}
