//! Residual-energy and battery-budget accounting.
//!
//! A central argument of the paper (§I, §II-D) is *energy*: eADR must hold
//! enough charge to flush entire LLCs (hundreds of MB on server parts), Capri
//! keeps per-core redo buffers battery-backed at all times, while cWSP only
//! ever needs the ADR guarantee — finishing the WPQ entries already at the
//! memory controllers. This module quantifies those budgets for each scheme
//! so the claim is checkable rather than rhetorical.
//!
//! The model is deliberately simple and sourced from the paper's own
//! numbers: flushing one byte from a volatile buffer to NVM costs
//! [`FLUSH_NJ_PER_BYTE`]; the battery budget of a scheme is the worst-case
//! number of bytes it promises to flush at power failure.

use crate::config::SimConfig;
use crate::scheme::Scheme;

/// Energy to move one byte from a volatile buffer into NVM at power failure
/// (nJ/B). The absolute constant cancels in scheme ratios; it is calibrated
/// to PMEM write energy (~1 nJ per 8-byte word).
pub const FLUSH_NJ_PER_BYTE: f64 = 0.125;

/// An eADR-class design must flush the entire LLC; use the AMD EPYC 9654P's
/// 384 MB L3 the paper cites (§I) for the server-class bound.
pub const SERVER_LLC_BYTES: u64 = 384 << 20;

/// Worst-case bytes a scheme must flush on power failure, per core, for the
/// given machine configuration.
///
/// * **cWSP**: only the WPQ entries already at the MCs are in the persistence
///   domain; each holds an 8-byte word plus an 8-byte undo-log record.
/// * **Capri**: the battery-backed redo buffer (18 KB) per core plus its
///   proxy-buffer share at each MC.
/// * **eADR / ideal PSP**: the entire volatile cache hierarchy.
/// * **Baseline / ReplayCache**: ADR only (same WPQ bound as cWSP; Replay-
///   Cache persists synchronously so nothing else is outstanding).
pub fn flush_bytes_per_core(scheme: Scheme, cfg: &SimConfig) -> u64 {
    let wpq_bytes =
        (cfg.wpq_entries as u64 * 16 * cfg.mem_controllers as u64) / cfg.cores.max(1) as u64;
    match scheme {
        // AutoFence relies on ADR exactly like cWSP: a pfence retires only
        // once its flushes reach the WPQs, so those entries are the whole
        // residual-flush obligation.
        Scheme::Cwsp(_) | Scheme::Baseline | Scheme::ReplayCache | Scheme::AutoFence => wpq_bytes,
        Scheme::Capri => {
            let redo = 18 << 10;
            let proxy_share = (cfg.mem_controllers as u64 * (18 << 10)) / cfg.cores.max(1) as u64;
            redo + proxy_share + wpq_bytes
        }
        Scheme::IdealPsp => {
            // Battery-backed volatile hierarchy: every SRAM level plus the
            // server-class LLC bound, amortized per core.
            let sram: u64 = cfg.sram_levels.iter().map(|l| l.size_bytes).sum();
            sram + SERVER_LLC_BYTES / cfg.cores.max(1) as u64
        }
    }
}

/// Worst-case joules of residual energy a scheme's battery/capacitor bank
/// must hold for one core.
pub fn battery_budget_joules(scheme: Scheme, cfg: &SimConfig) -> f64 {
    flush_bytes_per_core(scheme, cfg) as f64 * FLUSH_NJ_PER_BYTE * 1e-9
}

/// A per-run energy report for NVM write traffic (the 8× write-amplification
/// argument of §II-D becomes a measurable joule figure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// NVM word writes performed (data + log amplification).
    pub nvm_word_writes: u64,
    /// Energy spent on those writes, in joules.
    pub nvm_write_joules: f64,
    /// Worst-case battery budget for the scheme (per core), joules.
    pub battery_joules: f64,
}

/// Build a report from a run's NVM write count.
pub fn report(scheme: Scheme, cfg: &SimConfig, nvm_word_writes: u64) -> EnergyReport {
    EnergyReport {
        nvm_word_writes,
        nvm_write_joules: nvm_word_writes as f64 * 8.0 * FLUSH_NJ_PER_BYTE * 1e-9,
        battery_joules: battery_budget_joules(scheme, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cwsp_battery_is_orders_of_magnitude_below_psp() {
        let cfg = SimConfig::default();
        let cwsp = battery_budget_joules(Scheme::cwsp(), &cfg);
        let capri = battery_budget_joules(Scheme::Capri, &cfg);
        let psp = battery_budget_joules(Scheme::IdealPsp, &cfg);
        assert!(cwsp < capri, "cwsp {cwsp} !< capri {capri}");
        assert!(capri < psp, "capri {capri} !< psp {psp}");
        // The paper's qualitative claim: eADR-class flushing is unsustainable
        // versus cWSP's ADR-only bound — orders of magnitude apart.
        assert!(psp / cwsp > 1000.0, "ratio only {}", psp / cwsp);
    }

    #[test]
    fn flush_bytes_match_structures() {
        let cfg = SimConfig::default();
        // 24 WPQ entries × 16 B × 2 MCs / 1 core
        assert_eq!(flush_bytes_per_core(Scheme::cwsp(), &cfg), 24 * 16 * 2);
        assert_eq!(
            flush_bytes_per_core(Scheme::Baseline, &cfg),
            flush_bytes_per_core(Scheme::ReplayCache, &cfg)
        );
        let capri = flush_bytes_per_core(Scheme::Capri, &cfg);
        assert!(capri >= 18 << 10, "redo buffer alone is 18 KB: {capri}");
    }

    #[test]
    fn report_scales_with_writes() {
        let cfg = SimConfig::default();
        let a = report(Scheme::cwsp(), &cfg, 1_000);
        let b = report(Scheme::cwsp(), &cfg, 8_000);
        assert!((b.nvm_write_joules / a.nvm_write_joules - 8.0).abs() < 1e-9);
        assert_eq!(a.battery_joules, b.battery_joules);
    }
}
