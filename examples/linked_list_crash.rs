//! The paper's §I motivating example: inserting a node at the head of a
//! doubly-linked list is crash-*in*consistent under naive NVM usage — if the
//! second pointer update persists before the first and power fails in
//! between, the list is corrupted. Under cWSP, every crash point recovers.
//!
//! This example sweeps many crash cycles through repeated insertions and
//! verifies the list's structural invariants after every recovery.
//!
//! ```sh
//! cargo run --release --example linked_list_crash
//! ```

use cwsp::core::system::CwspSystem;
use cwsp::ir::prelude::*;
use cwsp::runtime::Runtime;

/// Node layout: [0] = next, [1] = prev, [2] = payload.
fn build_list_program() -> (Module, Word) {
    let mut m = Module::new("dll-insert");
    let rt = Runtime::install(&mut m);
    let head_slot = m.add_global("head", 1);
    let head_addr = m.global_addr(head_slot);
    let mut b = FunctionBuilder::new("main", 0);
    let e = b.entry();
    // Insert 24 nodes at the head (the body branches, so use the
    // multi-block loop helper).
    let (_, exit) =
        cwsp::ir::builder::build_counted_loop_multi(&mut b, e, Operand::imm(24), |b, bb, i| {
            // (1) allocate and fill the new node,
            // (2) link the old head back to it,
            // (3) publish it as the new head.
            let node = b.call(bb, rt.malloc, vec![Operand::imm(3)], true).unwrap();
            let old_head = b.load(bb, MemRef::abs(head_addr));
            b.store(bb, old_head.into(), MemRef::reg(node, 0));
            b.store(bb, Operand::imm(0), MemRef::reg(node, 8));
            b.store(bb, i.into(), MemRef::reg(node, 16));
            let nonempty = b.block();
            let join = b.block();
            b.push(
                bb,
                Inst::CondBr {
                    cond: old_head.into(),
                    if_true: nonempty,
                    if_false: join,
                },
            );
            b.store(nonempty, node.into(), MemRef::reg(old_head, 8));
            b.push(nonempty, Inst::Br { target: join });
            b.store(join, node.into(), MemRef::abs(head_addr));
            join
        });
    // Walk the list, summing payloads, to make corruption observable.
    let head = b.load(exit, MemRef::abs(head_addr));
    let done = b.block();
    let loop_h = b.block();
    let body = b.block();
    let cur = b.vreg();
    let sum = b.vreg();
    let count = b.vreg();
    b.push(
        exit,
        Inst::Mov {
            dst: cur,
            src: head.into(),
        },
    );
    b.push(
        exit,
        Inst::Mov {
            dst: sum,
            src: Operand::imm(0),
        },
    );
    b.push(
        exit,
        Inst::Mov {
            dst: count,
            src: Operand::imm(0),
        },
    );
    b.push(exit, Inst::Br { target: loop_h });
    b.push(
        loop_h,
        Inst::CondBr {
            cond: cur.into(),
            if_true: body,
            if_false: done,
        },
    );
    let payload = b.load(body, MemRef::reg(cur, 16));
    let s2 = b.bin(body, BinOp::Add, sum.into(), payload.into());
    let c2 = b.bin(body, BinOp::Add, count.into(), Operand::imm(1));
    let nxt = b.load(body, MemRef::reg(cur, 0));
    b.push(
        body,
        Inst::Mov {
            dst: sum,
            src: s2.into(),
        },
    );
    b.push(
        body,
        Inst::Mov {
            dst: count,
            src: c2.into(),
        },
    );
    b.push(
        body,
        Inst::Mov {
            dst: cur,
            src: nxt.into(),
        },
    );
    b.push(body, Inst::Br { target: loop_h });
    b.push(done, Inst::Out { val: count.into() });
    b.push(done, Inst::Out { val: sum.into() });
    b.push(
        done,
        Inst::Ret {
            val: Some(sum.into()),
        },
    );
    let main_fn = m.add_function(b.build());
    m.set_entry(main_fn);
    (m, head_addr)
}

fn main() {
    let (module, _) = build_list_program();
    let system = CwspSystem::compile(&module);
    let oracle = system.oracle(10_000_000).expect("oracle");
    println!(
        "failure-free: {} nodes, payload sum {} (0+1+…+23 = 276)",
        oracle.output[0], oracle.output[1]
    );
    assert_eq!(oracle.output, vec![24, 276]);

    // Crash at many points across the insertions and verify recovery.
    let mut points = 0;
    for crash_cycle in (50..12_000).step_by(375) {
        let rec = system
            .run_with_crash(crash_cycle, 10_000_000)
            .unwrap_or_else(|e| panic!("crash@{crash_cycle}: {e}"));
        assert_eq!(
            rec.output, oracle.output,
            "list corrupted after crash@{crash_cycle}"
        );
        points += 1;
    }
    println!("{points} crash points swept: every recovery rebuilt a consistent 24-node list ✔");
    println!("(the §I dangling-pointer scenario cannot happen under cWSP)");
}
