//! Crash/recovery correctness with the tiered page store engaged: every
//! memory the system touches (simulated NVM, recovery replay, the oracle)
//! pages through the spill file under a deliberately brutal resident budget,
//! and recovered state must still match the failure-free oracle bit-exactly.

use cwsp::core::system::CwspSystem;
use cwsp::core::verify::{check_crash_consistency, sweep};
use cwsp::ir::with_budget_override;

#[test]
fn crash_sweep_survives_one_page_budget() {
    // 1 resident page is the worst case: every page-crossing access evicts.
    let w = cwsp::workloads::by_name("tatp").unwrap();
    let system = CwspSystem::compile(&w.module);
    with_budget_override(Some(1), || {
        let cycles = [100, 5_000, 40_000];
        sweep(&system, &cycles).unwrap();
    });
}

#[test]
fn tiered_and_unbounded_recovery_agree() {
    let w = cwsp::workloads::by_name("kmeans").unwrap();
    let system = CwspSystem::compile(&w.module);
    let crash_cycle = 30_000;
    let tiered = with_budget_override(Some(2), || {
        check_crash_consistency(&system, crash_cycle).unwrap()
    });
    let flat = with_budget_override(None, || {
        check_crash_consistency(&system, crash_cycle).unwrap()
    });
    assert!(tiered.recovered_matches_oracle, "{:?}", tiered.divergence);
    assert!(flat.recovered_matches_oracle);
    // Identical crash point → identical replay length either way; the tier
    // must not perturb what the recovery path observes.
    assert_eq!(tiered.replayed_steps, flat.replayed_steps);
    assert_eq!(tiered.crash_cycle, flat.crash_cycle);
}

#[test]
fn forensic_frontier_is_exact_under_tiered_paging() {
    // The flight journal spills through the same tiered page store as
    // everything else; a starvation-level resident budget must not perturb
    // the frontier reconstruction or its replay cross-check.
    let w = cwsp::workloads::by_name("tatp").unwrap();
    let system = CwspSystem::compile(&w.module);
    with_budget_override(Some(2), || {
        for kill in [7_000u64, 25_000] {
            let inv = system.investigate_crash(kill, 50_000_000).unwrap();
            assert!(!inv.completed, "tatp crash@{kill} must hit mid-run");
            let rep = inv.report.unwrap();
            assert!(
                rep.all_matched(),
                "crash@{kill}: tiered frontier diverged: {:?}",
                rep.cross_checks
            );
        }
    });
}
