//! # cwsp-compiler — the cWSP compilation pipeline
//!
//! Implements the compiler half of *Compiler-Directed Whole-System
//! Persistence* (ISCA 2024, §IV): partitioning programs into idempotent
//! regions, checkpointing live-out registers, pruning redundant checkpoints,
//! and generating per-region recovery slices.
//!
//! Pass order (see [`pipeline::CwspCompiler`]):
//!
//! 1. **call-save** ([`callsave`]) — computes the registers live across each
//!    call site so the call spills exactly those to the (persistent) stack.
//! 2. **region formation** ([`region`]) — seeds boundaries at loop headers,
//!    join blocks, and synchronization points, then cuts every memory and
//!    register antidependence with a greedy minimum hitting set (§IV-A).
//! 3. **checkpoint insertion** ([`checkpoint`]) — a backward "needs" dataflow
//!    places one `ckpt` after each definition whose value is live across some
//!    region boundary (§IV-B).
//! 4. **checkpoint pruning + recovery slices** ([`prune`]) — constant-foldable
//!    live-ins are rematerialized by the recovery slice instead of loaded from
//!    their NVM slot, and checkpoints with no remaining slot consumers are
//!    deleted (§IV-C; a sound subset of Penny's optimal pruning — see
//!    `DESIGN.md` §3.2).
//!
//! [`verify`] provides *dynamic* checkers used heavily by the test suite: an
//! antidependence monitor (no region may load a location it later stores) and
//! a recovery-slice oracle (at every boundary, the slice must reproduce the
//! exact live-in register values).
//!
//! ## Example
//!
//! ```
//! use cwsp_ir::prelude::*;
//! use cwsp_ir::builder::build_counted_loop;
//! use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
//!
//! let mut m = Module::new("demo");
//! let g = m.add_global("acc", 1);
//! let mut b = FunctionBuilder::new("main", 0);
//! let e = b.entry();
//! let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(8), |b, bb, i| {
//!     let v = b.load(bb, MemRef::global(g, 0));
//!     let s = b.bin(bb, BinOp::Add, v.into(), i.into());
//!     b.store(bb, s.into(), MemRef::global(g, 0));
//! });
//! b.push(exit, Inst::Halt);
//! let f = m.add_function(b.build());
//! m.set_entry(f);
//!
//! let compiled = CwspCompiler::new(CompileOptions::default()).compile(&m);
//! assert!(compiled.stats.boundaries_inserted > 0);
//! // The transformed program still computes the same result.
//! let out = cwsp_ir::interp::run(&compiled.module, 100_000).unwrap();
//! assert_eq!(out.memory.load(m.global_addr(g)), 28);
//! ```

pub mod alias;
pub mod autofence;
pub mod callsave;
pub mod checkpoint;
pub mod liveness;
pub mod opt;
pub mod pipeline;
pub mod prune;
pub mod reaching;
pub mod region;
pub mod report;
pub mod slice;
pub mod split;
pub mod stats;
pub mod verify;

pub use pipeline::{CompileOptions, Compiled, CwspCompiler};
pub use slice::{RecoverySlice, RsSource, SliceTable};
