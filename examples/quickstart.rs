//! Quickstart: compile a small program with the cWSP compiler, run it on the
//! simulated machine, cut power mid-run, and recover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cwsp::core::system::CwspSystem;
use cwsp::ir::builder::build_counted_loop;
use cwsp::ir::prelude::*;
use cwsp::sim::scheme::Scheme;

fn main() {
    // A tiny program: sum 0..100 into a global, emitting progress.
    let mut m = Module::new("quickstart");
    let acc = m.add_global("acc", 1);
    let mut b = FunctionBuilder::new("main", 0);
    let entry = b.entry();
    let (_, exit) = build_counted_loop(&mut b, entry, Operand::imm(100), |b, bb, i| {
        let v = b.load(bb, MemRef::global(acc, 0));
        let s = b.bin(bb, BinOp::Add, v.into(), i.into());
        b.store(bb, s.into(), MemRef::global(acc, 0));
    });
    let v = b.load(exit, MemRef::global(acc, 0));
    b.push(exit, Inst::Out { val: v.into() });
    b.push(
        exit,
        Inst::Ret {
            val: Some(v.into()),
        },
    );
    let main_fn = m.add_function(b.build());
    m.set_entry(main_fn);

    // Compile: idempotent regions + checkpoints + recovery slices.
    let system = CwspSystem::compile(&m);
    let st = &system.compiled.stats;
    println!("compiled: {} -> {} insts", st.insts_before, st.insts_after);
    println!(
        "  regions={} (structural {}, antidep cuts {})",
        st.boundaries_inserted, st.structural_boundaries, st.antidep_cuts
    );
    println!(
        "  checkpoints kept={} pruned={} ({}% pruned)",
        st.ckpts_final,
        st.ckpts_pruned,
        (st.prune_ratio() * 100.0).round()
    );
    let report = cwsp::compiler::report::report(&system.compiled);
    print!("\n{}", cwsp::compiler::report::render(&report));

    // Failure-free run on the simulated cWSP machine.
    let run = system
        .simulate(Scheme::cwsp(), u64::MAX)
        .expect("simulation");
    println!(
        "\nfailure-free: {} insts in {} cycles (IPC {:.2}), result = {:?}",
        run.stats.insts,
        run.stats.cycles,
        run.stats.ipc(),
        run.return_value
    );

    // Cut power mid-run, then recover per the §VII protocol.
    let crash_cycle = run.stats.cycles / 2;
    let rec = system
        .run_with_crash(crash_cycle, u64::MAX)
        .expect("recovery");
    println!(
        "\npower failure @ cycle {crash_cycle}: reverted {} undo-log records, \
         replayed {} instructions",
        rec.reverted_records, rec.replayed_steps
    );
    println!(
        "recovered result = {:?} (same as failure-free)",
        rec.return_value
    );
    assert_eq!(rec.return_value, run.return_value);
    assert_eq!(rec.output, run.output);
    println!("\ncrash consistency verified ✔");
}
