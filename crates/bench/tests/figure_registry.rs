//! The figure registry, the golden directory, and the binary sources must
//! agree. PR 6's changelog drifted ("all 23" when 24 goldens existed)
//! because nothing machine-checked the count; this test makes the registry
//! in `cwsp_bench::FIGURES` the single source of truth.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // crates/bench -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// Golden `.txt` basenames under `results/`.
fn goldens() -> BTreeSet<String> {
    std::fs::read_dir(repo_root().join("results"))
        .expect("results/ exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "txt").then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect()
}

#[test]
fn registry_matches_golden_directory_exactly() {
    let registry: BTreeSet<String> = cwsp_bench::FIGURES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        registry.len(),
        cwsp_bench::FIGURES.len(),
        "registry has duplicates"
    );
    let golden = goldens();
    let missing: Vec<_> = registry.difference(&golden).collect();
    let unregistered: Vec<_> = golden.difference(&registry).collect();
    assert!(
        missing.is_empty() && unregistered.is_empty(),
        "registry/golden drift: registered without golden {missing:?}, \
         golden without registry entry {unregistered:?}"
    );
}

#[test]
fn registry_is_sorted_and_every_figure_has_a_binary() {
    let mut sorted = cwsp_bench::FIGURES.to_vec();
    sorted.sort_unstable();
    assert_eq!(sorted, cwsp_bench::FIGURES, "keep FIGURES sorted");
    let bin_dir = repo_root().join("crates/bench/src/bin");
    for f in cwsp_bench::FIGURES {
        assert!(
            bin_dir.join(format!("{f}.rs")).is_file(),
            "{f} has a golden but no src/bin/{f}.rs"
        );
    }
}
