//! `cwsp-lint` — command-line front-end for the static crash-consistency
//! verifier (`cwsp-analyzer`).
//!
//! Targets are compiled with the default pipeline (memoized by the engine)
//! and the compiled module + slice table are analyzed; `--raw` skips
//! compilation and lints a module file as-is (empty slice table), which is
//! how one inspects hand-written IR before it ever reaches the compiler.
//!
//! The process exits non-zero iff any error-severity diagnostic was
//! reported, so the binary slots directly into CI. Analyzer counters are
//! published through the metrics registry and merged into
//! `results/BENCH_harness.json` under the top-level `analyzer` key.

use cwsp_analyzer::{
    analyze_incremental_observed, analyze_observed, analyze_with, analyze_with_cache, persist,
    AnalysisCache, AnalyzeOptions, PersistCounters, RaceStats, Report, Severity, SCHEMA_VERSION,
};
use cwsp_bench::engine;
use cwsp_bench::json::Value;
use cwsp_compiler::pipeline::{CompileOptions, Compiled};
use cwsp_compiler::slice::SliceTable;
use cwsp_core::genprog;
use cwsp_ir::module::Module;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
cwsp-lint: static crash-consistency verifier for cWSP modules

USAGE:
  cwsp-lint --all                        analyze every built-in workload
  cwsp-lint --workload NAME              analyze one built-in workload
  cwsp-lint --multicore                  analyze the built-in multi-core workloads
  cwsp-lint --genprog N [--seed-base S]  analyze N generated programs
  cwsp-lint --genprog-mc N [--seed-base S]
                                         analyze N generated concurrent programs
  cwsp-lint FILE [--raw]                 analyze a module text file

OPTIONS:
  --raw           do not compile FILE first; lint it as-is (no slice table)
  --races         run the static race detector + I5 persist-order check
  --interproc     run the interprocedural call-graph/summary lints
  --persist       run the I6 durability-ordering (flush/fence) check
  --autofence     translation-validation mode: apply the compiler's
                  autofence pass to the *raw* (uncompiled) module, then
                  re-prove I6 from scratch over its output. Implies
                  --persist; the cWSP region invariants (I1-I5) do not
                  apply to this scheme and are not run
  --incremental   serve per-function results from the analysis cache
                  (shared across subjects; prints a cache-stats line)
  --cores N       thread contexts for --races (default 2)
  --json[=PATH]   emit a JSON diagnostics document (stdout, or to PATH)
  -h, --help      print this message

EXIT STATUS:
  0  no error-severity diagnostics
  1  at least one error-severity diagnostic
  2  usage or input error
";

enum Target {
    All,
    Workload(String),
    Multicore,
    Genprog { n: u64, seed_base: u64 },
    GenprogMc { n: u64, seed_base: u64 },
    File { path: String, raw: bool },
}

struct Options {
    target: Target,
    json: Option<Option<String>>,
    races: bool,
    interproc: bool,
    persist: bool,
    autofence: bool,
    incremental: bool,
    cores: usize,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut target: Option<Target> = None;
    let mut json: Option<Option<String>> = None;
    let mut raw = false;
    let mut races = false;
    let mut interproc = false;
    let mut persist = false;
    let mut autofence = false;
    let mut incremental = false;
    let mut cores = 2usize;
    let mut genprog_n: Option<u64> = None;
    let mut genprog_mc_n: Option<u64> = None;
    let mut seed_base = 1u64;
    let mut file: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--all" => target = Some(Target::All),
            "--workload" => {
                let name = it.next().ok_or("--workload requires a NAME")?;
                target = Some(Target::Workload(name.clone()));
            }
            "--multicore" => target = Some(Target::Multicore),
            "--genprog" => {
                let n = it.next().ok_or("--genprog requires a count")?;
                genprog_n = Some(n.parse().map_err(|_| format!("bad count `{n}`"))?);
            }
            "--genprog-mc" => {
                let n = it.next().ok_or("--genprog-mc requires a count")?;
                genprog_mc_n = Some(n.parse().map_err(|_| format!("bad count `{n}`"))?);
            }
            "--races" => races = true,
            "--interproc" => interproc = true,
            "--persist" => persist = true,
            "--autofence" => autofence = true,
            "--incremental" => incremental = true,
            "--cores" => {
                let n = it.next().ok_or("--cores requires a value")?;
                cores = n.parse().map_err(|_| format!("bad core count `{n}`"))?;
                if cores == 0 {
                    return Err("--cores must be at least 1".into());
                }
            }
            "--seed-base" => {
                let s = it.next().ok_or("--seed-base requires a value")?;
                seed_base = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
            }
            "--raw" => raw = true,
            "--json" => json = Some(None),
            s if s.starts_with("--json=") => {
                json = Some(Some(s["--json=".len()..].to_string()));
            }
            s if s.starts_with("--") => return Err(format!("unknown option `{s}`")),
            s => {
                if file.replace(s.to_string()).is_some() {
                    return Err("more than one FILE given".into());
                }
            }
        }
    }
    if let Some(n) = genprog_n {
        target = Some(Target::Genprog { n, seed_base });
    }
    if let Some(n) = genprog_mc_n {
        if target.is_some() && genprog_n.is_some() {
            return Err("--genprog and --genprog-mc are mutually exclusive".into());
        }
        target = Some(Target::GenprogMc { n, seed_base });
    }
    if let Some(path) = file {
        if target.is_some() {
            return Err("FILE cannot be combined with --all/--workload/--genprog".into());
        }
        target = Some(Target::File { path, raw });
    }
    let target = target.ok_or("no target given")?;
    Ok(Options {
        target,
        json,
        races,
        interproc,
        persist,
        autofence,
        incremental,
        cores,
    })
}

/// A named analysis subject: either a compiler artifact (module + slices)
/// or a raw module linted with an empty slice table.
enum Subject {
    Artifact(String, Arc<Compiled>),
    Raw(String, Module),
}

impl Subject {
    fn compile(name: &str, module: &Module) -> Subject {
        let c = engine::engine().compiled(module, CompileOptions::default());
        Subject::Artifact(name.to_string(), c)
    }
}

fn gather(target: &Target, cores: usize, raw_mode: bool) -> Result<Vec<Subject>, String> {
    // Translation-validation mode lints the *raw* module: autofence is an
    // alternative persistence scheme, so the cWSP compilation (regions,
    // checkpoints, slices) never enters the picture.
    let prep = |name: &str, module: &Module| {
        if raw_mode {
            Subject::Raw(name.to_string(), module.clone())
        } else {
            Subject::compile(name, module)
        }
    };
    match target {
        Target::All => Ok(cwsp_workloads::all()
            .iter()
            .map(|w| prep(w.name, &w.module))
            .collect()),
        Target::Workload(name) => {
            let w = cwsp_workloads::by_name(name)
                .ok_or_else(|| format!("no built-in workload named `{name}`"))?;
            Ok(vec![prep(w.name, &w.module)])
        }
        Target::Multicore => Ok(cwsp_workloads::multicore::all(cores as u64)
            .into_iter()
            .map(|(name, m)| prep(name, &m))
            .collect()),
        Target::Genprog { n, seed_base } => Ok((0..*n)
            .map(|i| {
                let seed = seed_base + i;
                let m = genprog::generate_default(seed);
                prep(&format!("gen-{seed}"), &m)
            })
            .collect()),
        Target::GenprogMc { n, seed_base } => Ok((0..*n)
            .map(|i| {
                let seed = seed_base + i;
                let m = genprog::generate_concurrent(&genprog::ConcSpec::default(), seed);
                prep(&format!("gen-mc-{seed}"), &m)
            })
            .collect()),
        Target::File { path, raw } => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let m = cwsp_ir::parse::parse_module(&text)
                .map_err(|e| format!("parse error in {path}: {e}"))?;
            Ok(vec![if *raw || raw_mode {
                Subject::Raw(path.clone(), m)
            } else {
                Subject::compile(path, &m)
            }])
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("cwsp-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.autofence {
        if opts.races || opts.interproc {
            eprintln!("cwsp-lint: --autofence cannot be combined with --races/--interproc");
            return ExitCode::from(2);
        }
        opts.persist = true;
    }
    let subjects = match gather(&opts.target, opts.cores, opts.autofence) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("cwsp-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    // One registry accumulates analyzer counters across every subject; it
    // doubles as the ObsSink the analyzer publishes through.
    let mut reg = cwsp_obs::Registry::new();
    let empty = SliceTable::new();
    let lint_opts = AnalyzeOptions {
        interproc: opts.interproc,
        races: opts.races,
        persist: opts.persist,
        cores: opts.cores,
    };
    let layered = opts.races || opts.interproc || opts.persist;
    // One shared cache across every subject: with `--incremental`, repeated
    // function bodies (genprog sweeps regenerate shared helpers; re-linting
    // the same target is the common CI pattern) are served from it.
    let mut cache = opts.incremental.then(AnalysisCache::new);
    let mut conc: Option<RaceStats> = None;
    let mut persist: Option<PersistCounters> = None;
    let mut reports: Vec<Report> = Vec::with_capacity(subjects.len());
    for s in &subjects {
        let (name, module, slices): (&str, &Module, &SliceTable) = match s {
            Subject::Artifact(n, c) => (n, &c.module, &c.slices),
            Subject::Raw(n, m) => (n, m, &empty),
        };
        let report = if opts.autofence {
            // Translation validation: run the pass, then re-prove I6 from
            // scratch over its output (the pass and the analyzer share no
            // placement logic). Any diagnostic here is a certification
            // failure.
            let t0 = std::time::Instant::now();
            let mut fenced = module.clone();
            cwsp_compiler::autofence::run(&mut fenced);
            let (diags, pc) = persist::check_module(&fenced);
            publish_persist_counters(&pc, &mut reg);
            let agg = persist.get_or_insert_with(PersistCounters::default);
            agg.functions += pc.functions;
            agg.tracked_stores += pc.tracked_stores;
            agg.flushes += pc.flushes;
            agg.fences += pc.fences;
            agg.commit_points += pc.commit_points;
            agg.errors += pc.errors;
            agg.warnings += pc.warnings;
            let mut report = Report {
                module: name.to_string(),
                diagnostics: diags,
                ..Report::default()
            };
            report.counters.functions = pc.functions;
            report.normalize();
            report.counters.analysis_ns = t0.elapsed().as_nanos() as u64;
            publish_report(&report, &mut reg);
            report
        } else if layered {
            let (report, stats, pc) = match cache.as_mut() {
                Some(c) => analyze_with_cache(module, slices, &lint_opts, c),
                None => analyze_with(module, slices, &lint_opts),
            };
            publish_report(&report, &mut reg);
            if let Some(st) = stats {
                publish_race_stats(&st, &mut reg);
                let agg = conc.get_or_insert_with(RaceStats::default);
                agg.contexts += st.contexts;
                agg.accesses += st.accesses;
                agg.pairs_checked += st.pairs_checked;
                agg.races += st.races;
                agg.i5_escapes += st.i5_escapes;
            }
            if let Some(pc) = pc {
                publish_persist_counters(&pc, &mut reg);
                let agg = persist.get_or_insert_with(PersistCounters::default);
                agg.functions += pc.functions;
                agg.tracked_stores += pc.tracked_stores;
                agg.flushes += pc.flushes;
                agg.fences += pc.fences;
                agg.commit_points += pc.commit_points;
                agg.errors += pc.errors;
                agg.warnings += pc.warnings;
            }
            report
        } else {
            match cache.as_mut() {
                Some(c) => analyze_incremental_observed(module, slices, c, &mut reg),
                None => analyze_observed(module, slices, &mut reg),
            }
        };
        reports.push(report);
    }

    // Human-readable rendering: one line per clean module, full diagnostics
    // otherwise.
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (s, r) in subjects.iter().zip(&reports) {
        let name = match s {
            Subject::Artifact(n, _) | Subject::Raw(n, _) => n,
        };
        errors += r.count(Severity::Error);
        warnings += r.count(Severity::Warning);
        if r.diagnostics.is_empty() {
            println!(
                "{name}: clean ({} regions proven)",
                r.counters.regions_proven
            );
        } else {
            print!("{}", r.render_text());
        }
    }
    if let Some(c) = &cache {
        let st = c.stats();
        println!(
            "incremental cache: {} hits, {} misses, {} invalidations",
            st.hits, st.misses, st.invalidations
        );
    }
    eprintln!(
        "cwsp-lint: {} module(s), {errors} error(s), {warnings} warning(s)",
        reports.len()
    );

    if let Some(dest) = &opts.json {
        let mut doc = format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"tool\":\"cwsp-lint {}\",",
            env!("CARGO_PKG_VERSION")
        );
        if let Some(c) = &cache {
            let st = c.stats();
            doc.push_str(&format!(
                "\"incremental\":{{\"hits\":{},\"misses\":{},\"invalidations\":{}}},",
                st.hits, st.misses, st.invalidations
            ));
        }
        doc.push_str("\"reports\":[");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&r.to_json());
        }
        doc.push_str("]}");
        match dest {
            Some(path) => {
                if let Some(dir) = std::path::Path::new(path).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = std::fs::write(path, &doc) {
                    eprintln!("cwsp-lint: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
            }
            None => println!("{doc}"),
        }
    }

    publish_harness(
        &reg,
        &reports,
        conc.as_ref(),
        persist.as_ref(),
        cache.as_ref(),
    );

    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Publish a report's summary counters through the registry — the layered
/// `analyze_with` path has no sink parameter, so the front-end mirrors what
/// `analyze_observed` publishes (plus the race diagnostics now included).
fn publish_report(report: &Report, reg: &mut cwsp_obs::Registry) {
    use cwsp_obs::sink::ObsSink;
    reg.count("analyzer.functions", report.counters.functions as u64);
    reg.count(
        "analyzer.regions_total",
        report.counters.regions_total as u64,
    );
    reg.count(
        "analyzer.regions_proven",
        report.counters.regions_proven as u64,
    );
    reg.count("analyzer.diags_error", report.count(Severity::Error) as u64);
    reg.count(
        "analyzer.diags_warning",
        report.count(Severity::Warning) as u64,
    );
    reg.count("analyzer.diags_info", report.count(Severity::Info) as u64);
}

/// Publish the race detector's aggregate counters through the registry.
fn publish_race_stats(st: &RaceStats, reg: &mut cwsp_obs::Registry) {
    use cwsp_obs::sink::ObsSink;
    reg.count("analyzer.concurrency.contexts", st.contexts as u64);
    reg.count("analyzer.concurrency.accesses", st.accesses as u64);
    reg.count("analyzer.concurrency.pairs_checked", st.pairs_checked);
    reg.count("analyzer.concurrency.races", st.races as u64);
    reg.count("analyzer.concurrency.i5_escapes", st.i5_escapes as u64);
}

/// Publish the I6 durability-ordering counters through the registry.
fn publish_persist_counters(pc: &PersistCounters, reg: &mut cwsp_obs::Registry) {
    use cwsp_obs::sink::ObsSink;
    reg.count("analyzer.persistency.functions", pc.functions as u64);
    reg.count(
        "analyzer.persistency.tracked_stores",
        pc.tracked_stores as u64,
    );
    reg.count("analyzer.persistency.flushes", pc.flushes as u64);
    reg.count("analyzer.persistency.fences", pc.fences as u64);
    reg.count(
        "analyzer.persistency.commit_points",
        pc.commit_points as u64,
    );
    reg.count("analyzer.persistency.errors", pc.errors as u64);
    reg.count("analyzer.persistency.warnings", pc.warnings as u64);
}

/// Merge the accumulated analyzer counters into the harness report as a
/// top-level `analyzer` section (sibling of `figures`). The concurrency and
/// incremental stats nest *inside* this entry; `merge_harness_section`
/// deep-merges object sections, so sibling subsections written by other
/// tools (the fuzz farm's `analyzer.fuzz`, `flight.*`) survive this write.
fn publish_harness(
    reg: &cwsp_obs::Registry,
    reports: &[Report],
    conc: Option<&RaceStats>,
    persist: Option<&PersistCounters>,
    cache: Option<&AnalysisCache>,
) {
    let total_ns: u64 = reports.iter().map(|r| r.counters.analysis_ns).sum();
    let count = |name: &str| Value::Int(reg.counter_value(name));
    let mut fields = vec![
        ("modules".into(), Value::Int(reports.len() as u64)),
        ("functions".into(), count("analyzer.functions")),
        ("regions_total".into(), count("analyzer.regions_total")),
        ("regions_proven".into(), count("analyzer.regions_proven")),
        ("diags_error".into(), count("analyzer.diags_error")),
        ("diags_warning".into(), count("analyzer.diags_warning")),
        ("diags_info".into(), count("analyzer.diags_info")),
        (
            "analysis_ms".into(),
            Value::Float((total_ns as f64 / 1e6 * 100.0).round() / 100.0),
        ),
    ];
    if let Some(st) = conc {
        fields.push((
            "concurrency".into(),
            Value::Obj(vec![
                ("contexts".into(), Value::Int(st.contexts as u64)),
                ("accesses".into(), Value::Int(st.accesses as u64)),
                ("pairs_checked".into(), Value::Int(st.pairs_checked)),
                ("races".into(), Value::Int(st.races as u64)),
                ("i5_escapes".into(), Value::Int(st.i5_escapes as u64)),
            ]),
        ));
    }
    if let Some(pc) = persist {
        fields.push((
            "persistency".into(),
            Value::Obj(vec![
                ("functions".into(), Value::Int(pc.functions as u64)),
                (
                    "tracked_stores".into(),
                    Value::Int(pc.tracked_stores as u64),
                ),
                ("flushes".into(), Value::Int(pc.flushes as u64)),
                ("fences".into(), Value::Int(pc.fences as u64)),
                ("commit_points".into(), Value::Int(pc.commit_points as u64)),
                ("errors".into(), Value::Int(pc.errors as u64)),
                ("warnings".into(), Value::Int(pc.warnings as u64)),
            ]),
        ));
    }
    if let Some(c) = cache {
        let st = c.stats();
        fields.push((
            "incremental".into(),
            Value::Obj(vec![
                ("hits".into(), Value::Int(st.hits)),
                ("misses".into(), Value::Int(st.misses)),
                ("invalidations".into(), Value::Int(st.invalidations)),
            ]),
        ));
    }
    let entry = Value::Obj(fields);
    engine::merge_harness_section("analyzer", entry);
}
