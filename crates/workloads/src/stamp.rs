//! STAMP stand-ins (3 apps): kmeans, ssca2, vacation.
//!
//! Transactional-memory kernels: kmeans accumulates centroid updates (dense
//! RMW bursts inside critical sections), ssca2 performs random graph-edge
//! updates, vacation mixes tree lookups with reservation updates.

use crate::footprint::*;
use crate::kernels::*;
use crate::{app, arena, checksum, Suite, Workload};

fn w(name: &'static str, module: cwsp_ir::module::Module) -> Workload {
    Workload {
        name,
        suite: Suite::Stamp,
        module,
        window: 120_000,
    }
}

/// Build all three STAMP workloads.
pub fn all() -> Vec<Workload> {
    vec![
        w(
            "kmeans",
            app("kmeans", |m, b, mut bb| {
                let points = arena(m, "points", L2);
                let centroids = arena(m, "centroids", L1);
                let lock = arena(m, "lock", 1);
                let out = arena(m, "out", 1);
                bb = reduction(b, bb, points, L2, 3, 2_500, out);
                sync_point(b, bb, lock);
                bb = rmw_sweep(b, bb, centroids, L1, 1, 2_500);
                sync_point(b, bb, lock);
                bb = rmw_sweep(b, bb, centroids, L1, 1, 2_000);
                checksum(b, bb, centroids);
                bb
            }),
        ),
        w(
            "ssca2",
            app("ssca2", |m, b, mut bb| {
                let graph = arena(m, "graph", DRAM);
                let lock = arena(m, "lock", 1);
                bb = random_walk(b, bb, graph, DRAM, 2_600, 0x55CA, 2);
                sync_point(b, bb, lock);
                bb = random_walk(b, bb, graph, DRAM, 1_300, 0x55CB, 2);
                checksum(b, bb, graph);
                bb
            }),
        ),
        w(
            "vacation",
            app("vacation", |m, b, mut bb| {
                let db = arena(m, "reservations", DRAM);
                let lock = arena(m, "lock", 1);
                bb = pointer_chase(b, bb, db, DRAM, 1_600, 0xACA);
                sync_point(b, bb, lock);
                bb = tx_update(b, bb, db, DRAM / 8, 6, 3, 1_100, 0xACB);
                checksum(b, bb, db);
                bb
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_apps_exist_and_run() {
        let ws = all();
        assert_eq!(ws.len(), 3);
        for w in &ws {
            let out = cwsp_ir::interp::run(&w.module, 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(out.steps > 5_000, "{}", w.name);
        }
    }
}
