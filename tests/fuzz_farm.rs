//! Crash-durability and bug-finding contracts of the differential fuzz farm.
//!
//! Two guarantees under test: a campaign interrupted at any point resumes
//! with **no lost and no duplicated corpus entries** (corpus, shard
//! progress, and coverage commit in one atomic spine batch per module), and
//! the injection self-checks keep catching their planted bugs, minimizing
//! each to a ≤10-instruction reproducer.

use cwsp_bench::fuzz::{self, FuzzConfig};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cwsp-fuzz-farm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn interrupted_campaign_resumes_without_loss_or_duplication() {
    let dir = tmp_dir("resume");
    let cfg = FuzzConfig {
        shards: 3,
        budget: 24,
        schedules: 2,
        ..FuzzConfig::default()
    };

    // Phase 1: a partial run stands in for a SIGKILLed one — only the spine
    // state carries over, exactly as after a kill (every per-seed batch is
    // atomic, so a real kill can differ only by the module in flight, which
    // is re-run on resume).
    let partial = FuzzConfig { budget: 10, ..cfg };
    let first = fuzz::run(&dir, &partial).unwrap();
    assert_eq!(first.completed, 10);
    assert!(first.divergences.is_empty(), "{:?}", first.divergences);
    assert_eq!(
        fuzz::run_fp(&partial),
        fuzz::run_fp(&cfg),
        "budget is not part of the campaign identity"
    );

    // Phase 2: resume to the full budget.
    let second = fuzz::run(&dir, &cfg).unwrap();
    assert_eq!(second.resumed, 10, "prior corpus entries are skipped");
    assert_eq!(second.completed, 14, "only the missing seeds are run");
    assert!(second.divergences.is_empty(), "{:?}", second.divergences);
    assert_eq!(second.corpus_len, 24);

    // The spine-backed audit: every seed present exactly once.
    let check = fuzz::manifest_check(&dir, &cfg).unwrap();
    assert!(check.is_complete(), "corpus incomplete: {check:?}");
    assert_eq!(check.present, 24);
    assert_eq!(check.duplicated, 0);
    assert_eq!(check.divergences, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_bugs_are_caught_and_minimized_to_ten_instructions() {
    let dir = tmp_dir("inject");
    // inject_every=1: every seed is an injection self-check, alternating
    // dropped-ckpt and unsynchronized-store.
    let cfg = FuzzConfig {
        shards: 2,
        budget: 8,
        inject_every: 1,
        schedules: 2,
        ..FuzzConfig::default()
    };
    let report = fuzz::run(&dir, &cfg).unwrap();
    assert!(report.divergences.is_empty(), "{:?}", report.divergences);
    assert!(report.injected >= 6, "too few injections ran: {report:?}");
    assert_eq!(
        report.injected, report.injected_caught,
        "an injected bug escaped the analyzer"
    );
    assert!(
        report.max_min_insts > 0 && report.max_min_insts <= 10,
        "reproducer not minimal: {} insts",
        report.max_min_insts
    );
    let _ = std::fs::remove_dir_all(&dir);
}
