//! Static compilation statistics (feeds the paper's region-characteristics
//! reporting, e.g. Fig 19's instructions-per-region and §IX's checkpoint
//! accounting).

use cwsp_ir::inst::Inst;
use cwsp_ir::module::Module;

/// Aggregate statistics over a compiled module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Instructions in the module before transformation.
    pub insts_before: usize,
    /// Instructions after (boundaries + checkpoints added, pruned ckpts gone).
    pub insts_after: usize,
    /// Explicit region boundaries inserted.
    pub boundaries_inserted: usize,
    /// Boundaries that cut an antidependence (§IV-A).
    pub antidep_cuts: usize,
    /// Structural boundaries (loop headers, joins, calls, syncs).
    pub structural_boundaries: usize,
    /// Checkpoints present after pruning.
    pub ckpts_final: usize,
    /// Checkpoints deleted by the pruner (§IV-C).
    pub ckpts_pruned: usize,
    /// Total registers saved across all call sites.
    pub call_saves: usize,
    /// Live-in restores resolved as constants by recovery slices.
    pub const_restores: usize,
    /// Live-in restores that read checkpoint slots.
    pub slot_restores: usize,
    /// Same-instruction register updates split by the renaming pre-pass.
    pub updates_split: usize,
    /// Instructions constant-folded by the pre-pass optimizer.
    pub opt_folded: usize,
    /// Instructions removed by dead-code elimination.
    pub opt_dce: usize,
}

impl CompileStats {
    /// Count checkpoints and instructions in `module` into this record.
    pub fn finalize_counts(&mut self, module: &Module) {
        self.insts_after = module.inst_count();
        self.ckpts_final = module
            .iter_functions()
            .flat_map(|(_, f)| f.blocks.iter())
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Ckpt { .. }))
            .count();
    }

    /// Fraction of checkpoint candidates the pruner removed.
    pub fn prune_ratio(&self) -> f64 {
        let total = self.ckpts_final + self.ckpts_pruned;
        if total == 0 {
            0.0
        } else {
            self.ckpts_pruned as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_ratio_handles_zero() {
        let s = CompileStats::default();
        assert_eq!(s.prune_ratio(), 0.0);
    }

    #[test]
    fn prune_ratio_computes_fraction() {
        let s = CompileStats {
            ckpts_final: 3,
            ckpts_pruned: 1,
            ..Default::default()
        };
        assert!((s.prune_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn finalize_counts_sees_ckpts() {
        use cwsp_ir::builder::FunctionBuilder;
        use cwsp_ir::types::Reg;
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let _r = b.mov(e, cwsp_ir::inst::Operand::imm(1));
        b.push(e, Inst::Ckpt { reg: Reg(0) });
        b.push(e, Inst::Halt);
        let id = m.add_function(b.build());
        m.set_entry(id);
        let mut s = CompileStats::default();
        s.finalize_counts(&m);
        assert_eq!(s.ckpts_final, 1);
        assert_eq!(s.insts_after, 3);
    }
}
