//! Incremental analysis: a per-function summary cache with SCC-directed
//! invalidation.
//!
//! ROADMAP item 5 scales the static-vs-oracle differential from hundreds of
//! modules to a continuous fuzzing farm — infeasible if every one-function
//! mutation forces whole-module re-analysis. The observation that makes
//! incrementality *sound* here: the per-function pass sequence
//! ([`crate::analyze_function`] — validation, structure, idempotence,
//! checkpoint coverage, lints) reads exactly three inputs:
//!
//! 1. the function body itself,
//! 2. the module's global layout (alias analysis and address resolution),
//! 3. the recovery slices of the regions whose boundaries sit in the body.
//!
//! It never inspects another function's body (a `Call` only *positions* a
//! region root). So the diagnostics of a function can be keyed by a content
//! fingerprint over those three inputs and replayed verbatim on a hit —
//! [`analyze_incremental`] is byte-identical to a from-scratch
//! [`crate::analyze`] by construction, a guarantee the repository's
//! differential suite enforces over every workload and a genprog corpus.
//!
//! The *interprocedural* facts (mod/ref + sync [`FuncSummary`]s feeding
//! `I2-callee-clobbers-slot` and the race detector's lock inference) do
//! depend on callees, transitively. [`summaries_incremental`] handles them
//! with merkle-style invalidation over the [`CallGraph`] SCC condensation:
//! each component's fingerprint folds its members' body fingerprints with
//! the fingerprints of the components it calls into, so a mutation
//! invalidates exactly its own component and the components above it
//! (bottom-up propagation) — re-analysis is O(changed functions +
//! dependents), with untouched subtrees served from cache. Body summaries
//! (the `ConstProp`-expensive part) are cached separately by body
//! fingerprint, so a dependent component re-runs only the cheap absorption
//! fixed point.
//!
//! Cache entries age out after [`KEEP_GENERATIONS`] runs *of their own
//! module* without a hit — a function deleted between runs stops refreshing
//! its entry and is evicted (counted in [`IncrStats::evicted`]). Aging is
//! per-module, not global: one cache streaming a whole corpus (the lint
//! front-end, the fuzz farm) must not evict module A's entries just because
//! hundreds of other modules passed through in between.

use crate::callgraph::CallGraph;
use crate::diag::{Diagnostic, Report};
use crate::summaries::{body_summary, FuncSummary, Summaries};
use cwsp_compiler::slice::SliceTable;
use cwsp_ir::function::Function;
use cwsp_ir::fxhash::FxHasher;
use cwsp_ir::inst::Inst;
use cwsp_ir::module::Module;
use cwsp_ir::pretty::fmt_function;
use cwsp_obs::sink::{NullSink, ObsSink};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::hash::Hasher;
use std::time::Instant;

/// Version salt folded into every fingerprint; bump whenever the pass
/// sequence, the diagnostic format, or the summary lattice changes shape so
/// stale entries from an older analyzer can never replay.
/// Version 2: [`FuncSummary`] grew the `has_out` commit-point flag for the
/// I6 durability-ordering pass.
const FMT_VERSION: u64 = 2;

/// Runs of an entry's own module it may go unused before eviction.
const KEEP_GENERATIONS: u64 = 4;

/// Cache traffic counters, cumulative over the cache's lifetime. Published
/// through [`ObsSink`] as `analyzer.incr.*` (per-run deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// Functions whose diagnostics were replayed from cache.
    pub hits: u64,
    /// Functions re-analyzed (no entry under their fingerprint).
    pub misses: u64,
    /// Misses where the same (module, function) name was previously cached
    /// under a *different* fingerprint — i.e. the function changed.
    pub invalidations: u64,
    /// Entries dropped by generation-based eviction (deleted or long-unseen
    /// functions).
    pub evicted: u64,
    /// Functions whose transitive summaries were served from an SCC entry.
    pub summary_hits: u64,
    /// Functions whose SCC had to recompute its summary fixed point.
    pub summary_misses: u64,
}

/// Last use of a cache entry: which module touched it, at that module's
/// how-many-eth run. Eviction compares an entry's stamp only against *its
/// own* module's run counter, so unrelated modules streaming through the
/// cache never age it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Stamp {
    mid: u32,
    run: u64,
}

struct DiagEntry {
    diags: Vec<Diagnostic>,
    stamp: Stamp,
}

struct BodyEntry {
    sum: FuncSummary,
    stamp: Stamp,
}

struct SccEntry {
    /// Transitive summaries, in the component's member order.
    sums: Vec<FuncSummary>,
    stamp: Stamp,
}

struct NameEntry {
    fp: u64,
    stamp: Stamp,
}

/// The per-function analysis-summary cache behind [`analyze_incremental`].
///
/// One cache may serve many modules (the lint front-end and the fuzz farm
/// stream modules through a single instance): entries are keyed purely by
/// content, so identical helper functions hit across modules, while the
/// (module, function)-name index only drives invalidation accounting and
/// stale-entry eviction.
#[derive(Default)]
pub struct AnalysisCache {
    diags: HashMap<u64, DiagEntry>,
    bodies: HashMap<u64, BodyEntry>,
    sccs: HashMap<u64, SccEntry>,
    names: HashMap<(String, String), NameEntry>,
    /// Interned module names (the `mid` of a [`Stamp`]).
    module_ids: HashMap<String, u32>,
    /// Per-module run counters, indexed by module id.
    module_runs: Vec<u64>,
    /// Stamp of the run in progress (set by [`Self::begin_run`]).
    cur: Stamp,
    stats: IncrStats,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative traffic counters.
    pub fn stats(&self) -> IncrStats {
        self.stats
    }

    /// Number of cached per-function diagnostic entries.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether the cache holds no diagnostic entries.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Whether the cache is still tracking `func` of `module` by name —
    /// false once a deleted function's record has been evicted.
    pub fn tracks_function(&self, module: &str, func: &str) -> bool {
        self.names
            .contains_key(&(module.to_string(), func.to_string()))
    }

    /// Open a run of `module`: intern its name and bump its (and only its)
    /// run counter. Every stamp written until the next `begin_run` carries
    /// this (module, run) pair.
    fn begin_run(&mut self, module: &str) {
        let next = self.module_ids.len() as u32;
        let mid = *self.module_ids.entry(module.to_string()).or_insert(next);
        if mid as usize >= self.module_runs.len() {
            self.module_runs.push(0);
        }
        self.module_runs[mid as usize] += 1;
        self.cur = Stamp {
            mid,
            run: self.module_runs[mid as usize],
        };
    }

    /// Record a (module, function) → fingerprint observation, counting an
    /// invalidation when the name re-appears under new content.
    fn note_name(&mut self, module: &str, func: &str, fp: u64) {
        let stamp = self.cur;
        match self.names.entry((module.to_string(), func.to_string())) {
            Entry::Occupied(mut e) => {
                let ne = e.get_mut();
                if ne.fp != fp {
                    self.stats.invalidations += 1;
                    ne.fp = fp;
                }
                ne.stamp = stamp;
            }
            Entry::Vacant(v) => {
                v.insert(NameEntry { fp, stamp });
            }
        }
    }

    /// Drop entries of the *current* module unused for more than
    /// [`KEEP_GENERATIONS`] of its runs. Called automatically at the end of
    /// every incremental run; functions deleted between runs stop
    /// refreshing their entries and age out here. Entries last used by
    /// other modules are never touched.
    fn evict_stale(&mut self) {
        let cur = self.cur;
        let live = |s: Stamp| s.mid != cur.mid || cur.run.saturating_sub(s.run) <= KEEP_GENERATIONS;
        let before = self.diags.len() + self.bodies.len() + self.sccs.len();
        self.diags.retain(|_, e| live(e.stamp));
        self.bodies.retain(|_, e| live(e.stamp));
        self.sccs.retain(|_, e| live(e.stamp));
        self.names.retain(|_, e| live(e.stamp));
        self.stats.evicted +=
            (before - (self.diags.len() + self.bodies.len() + self.sccs.len())) as u64;
    }

    /// Body summary of `fid`, served from cache by body fingerprint.
    fn body_summary(&mut self, module: &Module, ctx: u64, f: &Function) -> FuncSummary {
        let fp = body_fp(ctx, f);
        let stamp = self.cur;
        match self.bodies.entry(fp) {
            Entry::Occupied(mut e) => {
                e.get_mut().stamp = stamp;
                e.get().sum.clone()
            }
            Entry::Vacant(v) => {
                let sum = body_summary(module, f);
                v.insert(BodyEntry {
                    sum: sum.clone(),
                    stamp,
                });
                sum
            }
        }
    }
}

/// Digest of the module-level context the per-function passes read: the
/// global layout (names, sizes, assigned addresses, initializers). Any
/// change here invalidates every function of the module — address
/// resolution and alias facts may shift under all of them.
fn ctx_digest(module: &Module) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(FMT_VERSION);
    for g in module.globals() {
        h.write(g.name.as_bytes());
        h.write_u64(g.words);
        h.write_u64(g.addr);
        h.write_usize(g.init.len());
        for &w in &g.init {
            h.write_u64(w);
        }
    }
    h.finish()
}

/// Content fingerprint of one function body under `ctx` — the key for body
/// summaries, and the leaf the SCC merkle folds.
fn body_fp(ctx: u64, f: &Function) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(ctx);
    h.write(fmt_function(f).as_bytes());
    h.finish()
}

/// Full fingerprint for the per-function *diagnostic* entry: body, context,
/// and the recovery slices of the regions whose boundaries sit in the body
/// (the checkpoint-coverage pass reads exactly those).
fn diag_fp(ctx: u64, f: &Function, slices: &SliceTable) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(body_fp(ctx, f));
    for (_, block) in f.iter_blocks() {
        for inst in &block.insts {
            if let Inst::Boundary { id } = inst {
                h.write_u32(id.0);
                match slices.get(*id) {
                    Some(s) => h.write(format!("{:?}", s.restores).as_bytes()),
                    None => h.write_u8(0),
                }
            }
        }
    }
    h.finish()
}

/// [`crate::analyze`] served through `cache`: unchanged functions replay
/// their cached diagnostics, changed or unseen functions are re-analyzed
/// and cached. Output is byte-identical to a from-scratch analysis.
pub fn analyze_incremental(
    module: &Module,
    slices: &SliceTable,
    cache: &mut AnalysisCache,
) -> Report {
    analyze_incremental_observed(module, slices, cache, &mut NullSink)
}

/// [`analyze_incremental`], publishing the standard analyzer counters plus
/// per-run `analyzer.incr.{hits,misses,invalidations}` through `sink`.
pub fn analyze_incremental_observed(
    module: &Module,
    slices: &SliceTable,
    cache: &mut AnalysisCache,
    sink: &mut dyn ObsSink,
) -> Report {
    let t0 = Instant::now();
    let stats0 = cache.stats;
    cache.begin_run(&module.name);
    let mut report = Report {
        module: module.name.clone(),
        ..Default::default()
    };

    crate::check_module_level(module, &mut report);

    let ctx = ctx_digest(module);
    for (_, f) in module.iter_functions() {
        report.counters.functions += 1;
        let fp = diag_fp(ctx, f, slices);
        let stamp = cache.cur;
        if let Some(e) = cache.diags.get_mut(&fp) {
            e.stamp = stamp;
            report.diagnostics.extend(e.diags.iter().cloned());
            cache.stats.hits += 1;
        } else {
            let start = report.diagnostics.len();
            crate::analyze_function(module, f, slices, &mut report.diagnostics, sink, t0);
            let diags = report.diagnostics[start..].to_vec();
            cache.diags.insert(fp, DiagEntry { diags, stamp });
            cache.stats.misses += 1;
        }
        cache.note_name(&module.name, &f.name, fp);
    }

    report.normalize();

    // A region counts as proven when no error-severity finding names it —
    // identical to the from-scratch accounting.
    let mut bad_regions: HashSet<u32> = HashSet::new();
    for d in report.errors() {
        if let Some(r) = d.region {
            bad_regions.insert(r);
        }
    }
    report.counters.regions_proven = report
        .counters
        .regions_total
        .saturating_sub(bad_regions.len());
    report.counters.analysis_ns = t0.elapsed().as_nanos() as u64;

    cache.evict_stale();

    if sink.enabled() {
        use crate::diag::Severity;
        sink.count("analyzer.functions", report.counters.functions as u64);
        sink.count(
            "analyzer.regions_total",
            report.counters.regions_total as u64,
        );
        sink.count(
            "analyzer.regions_proven",
            report.counters.regions_proven as u64,
        );
        sink.count("analyzer.diags_error", report.count(Severity::Error) as u64);
        sink.count(
            "analyzer.diags_warning",
            report.count(Severity::Warning) as u64,
        );
        sink.count("analyzer.diags_info", report.count(Severity::Info) as u64);
        sink.count("analyzer.incr.hits", cache.stats.hits - stats0.hits);
        sink.count("analyzer.incr.misses", cache.stats.misses - stats0.misses);
        sink.count(
            "analyzer.incr.invalidations",
            cache.stats.invalidations - stats0.invalidations,
        );
        sink.span("analyzer", "total", 0, report.counters.analysis_ns);
    }
    report
}

/// [`Summaries::compute`] served through `cache` with SCC-merkle
/// invalidation: a component recomputes its absorption fixed point only
/// when its own bodies or a (transitive) callee component changed; body
/// summaries are additionally cached by body fingerprint so dependents skip
/// the expensive per-body scan.
pub(crate) fn summaries_incremental(
    module: &Module,
    cg: &CallGraph,
    cache: &mut AnalysisCache,
) -> Summaries {
    let n = module.function_count();
    let ctx = ctx_digest(module);
    let mut by_func: Vec<FuncSummary> = vec![FuncSummary::default(); n];
    let mut scc_fp_of: Vec<u64> = vec![0; n];
    let stamp = cache.cur;
    for scc in cg.sccs_bottom_up() {
        // Merkle fingerprint: member bodies, then the fingerprints of the
        // components this one calls into (already computed — bottom-up).
        let mut h = FxHasher::default();
        h.write_u64(FMT_VERSION);
        h.write_u64(ctx);
        let members: HashSet<_> = scc.iter().copied().collect();
        for &fid in scc {
            if fid.index() < n {
                h.write_u64(body_fp(ctx, module.function(fid)));
            }
        }
        for &fid in scc {
            for &callee in cg.callees(fid) {
                if !members.contains(&callee) && callee.index() < n {
                    h.write_u64(scc_fp_of[callee.index()]);
                }
            }
        }
        let scc_fp = h.finish();
        for &fid in scc {
            if fid.index() < n {
                scc_fp_of[fid.index()] = scc_fp;
            }
        }

        let cached = match cache.sccs.get_mut(&scc_fp) {
            Some(e) if e.sums.len() == scc.len() => {
                e.stamp = stamp;
                Some(e.sums.clone())
            }
            _ => None,
        };
        if let Some(sums) = cached {
            for (i, &fid) in scc.iter().enumerate() {
                if fid.index() < n {
                    by_func[fid.index()] = sums[i].clone();
                }
            }
            cache.stats.summary_hits += scc.len() as u64;
            continue;
        }

        // Recompute this component: seed bodies (cache-served), then the
        // same callee-absorption fixed point `Summaries::compute` runs.
        for &fid in scc {
            if fid.index() < n {
                by_func[fid.index()] = cache.body_summary(module, ctx, module.function(fid));
            }
        }
        loop {
            let mut changed = false;
            for &fid in scc {
                if fid.index() >= n {
                    continue;
                }
                for &callee in cg.callees(fid) {
                    if callee == fid || callee.index() >= n {
                        continue;
                    }
                    let callee_sum = by_func[callee.index()].clone();
                    changed |= by_func[fid.index()].absorb(&callee_sum);
                }
            }
            if !changed {
                break;
            }
        }
        cache.sccs.insert(
            scc_fp,
            SccEntry {
                sums: scc
                    .iter()
                    .filter(|f| f.index() < n)
                    .map(|f| by_func[f.index()].clone())
                    .collect(),
                stamp,
            },
        );
        cache.stats.summary_misses += scc.len() as u64;
    }
    Summaries::from_parts(by_func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalyzeOptions};
    use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{MemRef, Operand};

    fn demo_module(extra: u64) -> Module {
        let mut m = Module::new("incr-demo");
        let g = m.add_global("buf", 8);
        let base = m.global_addr(g);
        let mut helper = FunctionBuilder::new("helper", 0);
        let he = helper.entry();
        let hv = helper.vreg();
        helper.push(he, Inst::load(hv, MemRef::abs(base)));
        helper.push(
            he,
            Inst::Ret {
                val: Some(hv.into()),
            },
        );
        let helper_id = m.add_function(helper.build());
        let mut main = FunctionBuilder::new("main", 0);
        let e = main.entry();
        let r = main.vreg();
        main.push(e, Inst::store(Operand::imm(extra), MemRef::abs(base)));
        main.push(
            e,
            Inst::Call {
                func: helper_id,
                args: vec![],
                ret: Some(r),
                save_regs: vec![],
            },
        );
        main.push(e, Inst::Out { val: r.into() });
        main.push(e, Inst::Halt);
        let id = m.add_function(main.build());
        m.set_entry(id);
        m
    }

    fn norm_text(mut r: Report) -> String {
        r.counters.analysis_ns = 0;
        format!("{}\n{}", r.render_text(), r.to_json())
    }

    #[test]
    fn incremental_matches_full_on_compiled_module() {
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&demo_module(7));
        let mut cache = AnalysisCache::new();
        let full = analyze(&compiled.module, &compiled.slices);
        let cold = analyze_incremental(&compiled.module, &compiled.slices, &mut cache);
        let warm = analyze_incremental(&compiled.module, &compiled.slices, &mut cache);
        assert_eq!(norm_text(full.clone()), norm_text(cold));
        assert_eq!(norm_text(full), norm_text(warm));
        let st = cache.stats();
        assert_eq!(
            st.misses,
            compiled.module.function_count() as u64,
            "cold run analyzes all"
        );
        assert_eq!(
            st.hits,
            compiled.module.function_count() as u64,
            "warm run replays all"
        );
    }

    #[test]
    fn mutation_invalidates_only_the_changed_function() {
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&demo_module(7));
        let mut cache = AnalysisCache::new();
        let _ = analyze_incremental(&compiled.module, &compiled.slices, &mut cache);
        let before = cache.stats();
        // Mutate main only (same name, new content): one miss + one
        // invalidation, every other function hits.
        let mut mutated = compiled.module.clone();
        let entry = mutated.entry().unwrap();
        let blocks = &mut mutated.function_mut(entry).blocks;
        blocks[0].insts.insert(
            0,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        let full = analyze(&mutated, &compiled.slices);
        let inc = analyze_incremental(&mutated, &compiled.slices, &mut cache);
        assert_eq!(norm_text(full), norm_text(inc));
        let st = cache.stats();
        assert_eq!(
            st.misses - before.misses,
            1,
            "only the mutated function re-analyzed"
        );
        assert_eq!(st.invalidations - before.invalidations, 1);
        assert_eq!(
            st.hits - before.hits,
            compiled.module.function_count() as u64 - 1
        );
    }

    #[test]
    fn deleted_function_is_evicted_after_grace_generations() {
        let with_helper = demo_module(3);
        let mut cache = AnalysisCache::new();
        let empty = SliceTable::new();
        let _ = analyze_incremental(&with_helper, &empty, &mut cache);
        assert!(cache.tracks_function("incr-demo", "helper"));
        let entries_with_helper = cache.len();
        // A rebuilt module without the helper: the stale entry stops being
        // refreshed and ages out after the grace window.
        let mut without = Module::new("incr-demo");
        let g = without.add_global("buf", 8);
        let base = without.global_addr(g);
        let mut main = FunctionBuilder::new("main", 0);
        let e = main.entry();
        main.push(e, Inst::store(Operand::imm(3), MemRef::abs(base)));
        main.push(e, Inst::Halt);
        let id = without.add_function(main.build());
        without.set_entry(id);
        for _ in 0..(KEEP_GENERATIONS + 1) {
            let _ = analyze_incremental(&without, &empty, &mut cache);
        }
        assert!(cache.stats().evicted > 0, "stale entries evicted");
        assert!(
            !cache.tracks_function("incr-demo", "helper"),
            "deleted function no longer tracked"
        );
        assert!(cache.len() < entries_with_helper);
    }

    #[test]
    fn unrelated_modules_streaming_through_do_not_age_entries() {
        // One cache serving a corpus: module A's entries must survive any
        // number of *other* modules passing through — aging is per-module.
        let a = demo_module(1);
        let empty = SliceTable::new();
        let mut cache = AnalysisCache::new();
        let _ = analyze_incremental(&a, &empty, &mut cache);
        let a_cold = cache.stats();
        for extra in 0..(3 * KEEP_GENERATIONS) {
            let mut other = demo_module(100 + extra);
            other.name = format!("other-{extra}");
            let _ = analyze_incremental(&other, &empty, &mut cache);
        }
        let before = cache.stats();
        let _ = analyze_incremental(&a, &empty, &mut cache);
        let st = cache.stats();
        assert_eq!(
            st.hits - before.hits,
            a.function_count() as u64,
            "module A fully hits after {} other-module runs",
            3 * KEEP_GENERATIONS
        );
        assert_eq!(st.misses, before.misses, "no function of A re-analyzed");
        let _ = a_cold;
    }

    #[test]
    fn incremental_summaries_match_full_and_hit_on_unchanged_callees() {
        let m = demo_module(5);
        let cg = CallGraph::compute(&m);
        let full = Summaries::compute(&m, &cg);
        let mut cache = AnalysisCache::new();
        cache.begin_run("incr-demo");
        let inc = summaries_incremental(&m, &cg, &mut cache);
        for (fid, _) in m.iter_functions() {
            assert_eq!(full.get(fid), inc.get(fid));
        }
        let miss0 = cache.stats().summary_misses;
        assert_eq!(miss0, m.function_count() as u64);
        // Mutate the caller: the leaf component is untouched and hits.
        let mut m2 = m.clone();
        let entry = m2.entry().unwrap();
        m2.function_mut(entry).blocks[0].insts.insert(
            0,
            Inst::Out {
                val: Operand::imm(9),
            },
        );
        let cg2 = CallGraph::compute(&m2);
        let full2 = Summaries::compute(&m2, &cg2);
        cache.begin_run("incr-demo");
        let inc2 = summaries_incremental(&m2, &cg2, &mut cache);
        for (fid, _) in m2.iter_functions() {
            assert_eq!(full2.get(fid), inc2.get(fid));
        }
        let st = cache.stats();
        assert_eq!(st.summary_hits, 1, "helper SCC served from cache");
        assert_eq!(st.summary_misses - miss0, 1, "only main's SCC recomputed");
    }

    #[test]
    fn layered_incremental_matches_analyze_with() {
        let compiled = CwspCompiler::new(CompileOptions::default()).compile(&demo_module(2));
        let opts = AnalyzeOptions {
            interproc: true,
            races: false,
            persist: true,
            cores: 2,
        };
        let (full, _, pc) = crate::analyze_with(&compiled.module, &compiled.slices, &opts);
        assert!(pc.is_some(), "persist layer ran");
        let mut cache = AnalysisCache::new();
        for _ in 0..2 {
            let (inc, _, inc_pc) =
                crate::analyze_with_cache(&compiled.module, &compiled.slices, &opts, &mut cache);
            assert_eq!(norm_text(full.clone()), norm_text(inc));
            assert_eq!(pc, inc_pc, "cached persist counters identical");
        }
    }
}
