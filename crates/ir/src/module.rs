//! Modules: the unit of compilation and execution.

use crate::function::Function;
use crate::layout;
use crate::types::Word;
use std::fmt;

/// Identifier of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Dense index for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Identifier of a global data object within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// A global data object: a named, word-granular array in the global segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Human-readable name.
    pub name: String,
    /// Size in 8-byte words.
    pub words: u64,
    /// Absolute base address assigned at [`Module::add_global`] time.
    pub addr: Word,
    /// Optional initial contents (`init[i]` goes to word `i`); missing words
    /// are zero.
    pub init: Vec<Word>,
}

/// A compilation/execution unit: functions plus global data.
///
/// Globals are laid out eagerly from [`layout::GLOBAL_BASE`] by a bump
/// allocator, so [`Module::global_addr`] is usable immediately after
/// [`Module::add_global`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name (diagnostics only).
    pub name: String,
    functions: Vec<Function>,
    globals: Vec<Global>,
    next_global_addr: Word,
    entry: Option<FuncId>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
            next_global_addr: layout::GLOBAL_BASE,
            entry: None,
        }
    }

    /// Add a zero-initialized global of `words` 8-byte words; returns its id.
    pub fn add_global(&mut self, name: impl Into<String>, words: u64) -> GlobalId {
        self.add_global_init(name, words, Vec::new())
    }

    /// Add a global with initial contents (padded with zeros to `words`).
    ///
    /// # Panics
    /// Panics if `init.len() > words`.
    pub fn add_global_init(
        &mut self,
        name: impl Into<String>,
        words: u64,
        init: Vec<Word>,
    ) -> GlobalId {
        assert!(init.len() as u64 <= words, "initializer longer than global");
        let id = GlobalId(self.globals.len() as u32);
        let addr = self.next_global_addr;
        // 64-byte align each global so distinct globals never share a
        // cacheline (keeps the alias story and the cache model clean).
        self.next_global_addr += (words.max(1) * 8 + 63) & !63;
        self.globals.push(Global {
            name: name.into(),
            words,
            addr,
            init,
        });
        id
    }

    /// Absolute base address of global `g`.
    ///
    /// # Panics
    /// Panics if `g` is out of range.
    pub fn global_addr(&self, g: GlobalId) -> Word {
        self.globals[g.0 as usize].addr
    }

    /// The global table.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// Add a function; returns its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// The function with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function (used by compiler passes).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Iterate `(FuncId, &Function)` in id order.
    pub fn iter_functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Look up a function id by name.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Set the entry function executed by the interpreter.
    pub fn set_entry(&mut self, f: FuncId) {
        self.entry = Some(f);
    }

    /// The entry function, if set.
    pub fn entry(&self) -> Option<FuncId> {
        self.entry
    }

    /// Resolve a possibly [`layout::GLOBAL_TAG`]-tagged address to an absolute
    /// address. Untagged addresses — and values that merely *look* tagged
    /// (e.g. small negative constants produced by wrapping arithmetic) but do
    /// not name a real global — pass through unchanged.
    #[inline]
    pub fn resolve_addr(&self, addr: Word) -> Word {
        if layout::is_tagged_global(addr) {
            let (id, off) = layout::untag_global(addr);
            if let Some(g) = self.globals.get(id as usize) {
                return g.addr + off;
            }
        }
        addr
    }

    /// Validate every function (see [`Function::validate`]) and that an entry
    /// point is set.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.entry.is_none() {
            return Err(format!("module {}: no entry function", self.name));
        }
        for (_, f) in self.iter_functions() {
            f.validate()?;
        }
        Ok(())
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.inst_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::Inst;

    #[test]
    fn globals_are_laid_out_disjoint_and_aligned() {
        let mut m = Module::new("t");
        let a = m.add_global("a", 3); // 24B -> padded to 64
        let b = m.add_global("b", 1);
        assert_eq!(m.global_addr(a), layout::GLOBAL_BASE);
        assert_eq!(m.global_addr(b), layout::GLOBAL_BASE + 64);
        assert_eq!(m.global_addr(b) % 64, 0);
    }

    #[test]
    fn resolve_tagged_addr() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 4);
        let tagged = layout::GLOBAL_TAG | ((g.0 as Word) << 32) | 16;
        assert_eq!(m.resolve_addr(tagged), m.global_addr(g) + 16);
        assert_eq!(m.resolve_addr(12345), 12345);
    }

    #[test]
    #[should_panic(expected = "initializer longer")]
    fn oversized_init_panics() {
        let mut m = Module::new("t");
        m.add_global_init("g", 1, vec![1, 2]);
    }

    #[test]
    fn find_and_entry() {
        let mut m = Module::new("t");
        let mut f = FunctionBuilder::new("main", 0);
        let e = f.entry();
        f.push(e, Inst::Halt);
        let id = m.add_function(f.build());
        assert_eq!(m.find_function("main"), Some(id));
        assert_eq!(m.find_function("nope"), None);
        assert!(m.validate().is_err(), "no entry yet");
        m.set_entry(id);
        assert!(m.validate().is_ok());
        assert_eq!(m.entry(), Some(id));
        assert_eq!(m.inst_count(), 1);
    }
}
