//! The end-to-end cWSP compilation pipeline.

use crate::callsave::compute_call_saves;
use crate::checkpoint::{insert_checkpoints, CkptMode};
use crate::prune::prune_and_build_slices;
use crate::region::form_regions;
use crate::slice::SliceTable;
use crate::split::split_same_reg_updates;
use crate::stats::CompileStats;
use cwsp_ir::module::Module;
use cwsp_obs::{NullSink, ObsSink};
use std::time::Instant;

/// Compilation options (the compiler side of the Fig 15 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Apply checkpoint pruning (§IV-C). When `false`, checkpoints are placed
    /// iDO-style — all live registers at every region end — which is the
    /// "before +Pruning" configuration of Fig 15.
    pub pruning: bool,
    /// When pruning, also rematerialize via expressions over remaining
    /// checkpoint slots (the full Penny tier); `false` restricts recovery
    /// slices to constants + slot loads (the `ablation_pruning_tiers`
    /// experiment).
    pub expr_remat: bool,
    /// Run classic scalar optimizations (constant folding, copy propagation,
    /// DCE) before the persistence passes — the paper's `-O3` analogue.
    pub optimize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            pruning: true,
            expr_remat: true,
            optimize: true,
        }
    }
}

/// A compiled program: the transformed module plus recovery metadata.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The region-partitioned, checkpoint-instrumented module.
    pub module: Module,
    /// Recovery slices, one per explicit region boundary (§VII).
    pub slices: SliceTable,
    /// Static statistics.
    pub stats: CompileStats,
}

/// The cWSP compiler (§IV). Construct with options, then [`CwspCompiler::compile`].
///
/// # Example
/// ```
/// use cwsp_compiler::pipeline::{CompileOptions, CwspCompiler};
/// use cwsp_ir::prelude::*;
///
/// let mut m = Module::new("m");
/// let mut b = FunctionBuilder::new("main", 0);
/// let e = b.entry();
/// let r = b.load(e, MemRef::abs(64));
/// b.store(e, r.into(), MemRef::abs(64));
/// b.push(e, Inst::Halt);
/// let f = m.add_function(b.build());
/// m.set_entry(f);
///
/// let out = CwspCompiler::new(CompileOptions::default()).compile(&m);
/// assert_eq!(out.stats.antidep_cuts, 1); // the load/store WAR was cut
/// ```
#[derive(Debug, Clone, Default)]
pub struct CwspCompiler {
    options: CompileOptions,
}

impl CwspCompiler {
    /// Create a compiler with the given options.
    pub fn new(options: CompileOptions) -> Self {
        CwspCompiler { options }
    }

    /// The configured options.
    pub fn options(&self) -> CompileOptions {
        self.options
    }

    /// Compile `input` into a region-partitioned, recoverable program.
    ///
    /// The input module is not modified; hand-written boundaries (e.g. the
    /// simulated kernel entry path, §VI) are preserved and renumbered.
    ///
    /// # Panics
    /// Panics if the transformed module fails structural validation — that
    /// would be a compiler bug, not a user error.
    pub fn compile(&self, input: &Module) -> Compiled {
        self.compile_observed(input, &mut NullSink)
    }

    /// [`CwspCompiler::compile`], publishing per-pass telemetry into `sink`:
    /// one span per pass (wall time, `compiler` track) and the pass's IR
    /// delta as counts (`compiler.regions_formed`, `compiler.ckpts_pruned`,
    /// `compiler.slices_emitted`, ...). With the default
    /// [`NullSink`] this is exactly `compile` — timestamps are
    /// not even taken when `sink.enabled()` is false.
    ///
    /// # Panics
    /// Same contract as [`CwspCompiler::compile`].
    pub fn compile_observed(&self, input: &Module, sink: &mut dyn ObsSink) -> Compiled {
        let observed = sink.enabled();
        let t0 = observed.then(Instant::now);
        // Wall-clock offset of the pass clock, in ns since compile start.
        let now_ns = |t0: &Option<Instant>| -> u64 {
            t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
        };
        let pass = |sink: &mut dyn ObsSink, name: &str, start_ns: u64| {
            if observed {
                let end = now_ns(&t0);
                sink.span("compiler", name, start_ns, end.saturating_sub(start_ns));
            }
        };

        let mut module = input.clone();
        let mut stats = CompileStats {
            insts_before: module.inst_count(),
            ..Default::default()
        };

        if self.options.optimize {
            let s = now_ns(&t0);
            let info = crate::opt::optimize(&mut module);
            stats.opt_folded = info.folded;
            stats.opt_dce = info.dce_removed;
            pass(sink, "optimize", s);
            if observed {
                sink.count("compiler.opt_folded", info.folded as u64);
                sink.count("compiler.opt_dce", info.dce_removed as u64);
            }
        }
        let s = now_ns(&t0);
        stats.call_saves = compute_call_saves(&mut module);
        pass(sink, "compute_call_saves", s);
        let s = now_ns(&t0);
        stats.updates_split = split_same_reg_updates(&mut module);
        pass(sink, "split_same_reg_updates", s);

        let s = now_ns(&t0);
        let region_info = form_regions(&mut module);
        stats.boundaries_inserted = region_info.boundaries;
        stats.antidep_cuts = region_info.antidep_cuts;
        stats.structural_boundaries = region_info.structural;
        pass(sink, "form_regions", s);
        if observed {
            sink.count("compiler.regions_formed", region_info.boundaries as u64);
            sink.count("compiler.antidep_cuts", region_info.antidep_cuts as u64);
        }

        let mode = if self.options.pruning {
            CkptMode::DefSite
        } else {
            CkptMode::PerBoundary
        };
        let s = now_ns(&t0);
        insert_checkpoints(&mut module, mode);
        pass(sink, "insert_checkpoints", s);

        let s = now_ns(&t0);
        let (slices, prune_info) =
            prune_and_build_slices(&mut module, self.options.pruning, self.options.expr_remat);
        stats.ckpts_pruned = prune_info.ckpts_pruned;
        stats.const_restores = prune_info.const_restores;
        stats.slot_restores = prune_info.slot_restores;
        stats.finalize_counts(&module);
        pass(sink, "prune_and_build_slices", s);
        if observed {
            sink.count("compiler.ckpts_pruned", prune_info.ckpts_pruned as u64);
            sink.count("compiler.slices_emitted", slices.len() as u64);
        }

        let s = now_ns(&t0);
        module
            .validate()
            .unwrap_or_else(|e| panic!("cWSP compiler produced invalid IR: {e}"));
        pass(sink, "validate", s);
        Compiled {
            module,
            slices,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, Inst, MemRef, Operand};

    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let g = m.add_global("g", 4);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(30), |b, bb, i| {
            let v = b.load(bb, MemRef::global(g, 0));
            let s = b.bin(bb, BinOp::Add, v.into(), i.into());
            b.store(bb, s.into(), MemRef::global(g, 0));
        });
        let v = b.load(exit, MemRef::global(g, 0));
        b.push(
            exit,
            Inst::Ret {
                val: Some(v.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        m
    }

    #[test]
    fn pipeline_preserves_semantics_pruned_and_unpruned() {
        let m = sample_module();
        let oracle = cwsp_ir::interp::run(&m, 100_000).unwrap();
        for pruning in [true, false] {
            let c = CwspCompiler::new(CompileOptions {
                pruning,
                ..Default::default()
            })
            .compile(&m);
            let out = cwsp_ir::interp::run(&c.module, 100_000).unwrap();
            assert_eq!(out.return_value, oracle.return_value, "pruning={pruning}");
        }
    }

    #[test]
    fn pruning_reduces_dynamic_checkpoint_stores() {
        // The meaningful metric is NVM write traffic: count executed Ckpt
        // effects under both configurations.
        let m = sample_module();
        let dynamic_ckpts = |module: &Module| {
            let mut mem = cwsp_ir::memory::Memory::new();
            let mut i = cwsp_ir::interp::Interp::new(module, 0, &mut mem).unwrap();
            let mut n = 0u64;
            while !i.is_halted() {
                let e = i.step(&mut mem).unwrap();
                if e.kind == cwsp_ir::interp::EffectKind::Ckpt {
                    n += 1;
                }
            }
            n
        };
        let pruned = CwspCompiler::new(CompileOptions {
            pruning: true,
            ..Default::default()
        })
        .compile(&m);
        let unpruned = CwspCompiler::new(CompileOptions {
            pruning: false,
            ..Default::default()
        })
        .compile(&m);
        let (p, u) = (
            dynamic_ckpts(&pruned.module),
            dynamic_ckpts(&unpruned.module),
        );
        assert!(p < u, "pruned {p} !< unpruned {u}");
    }

    #[test]
    fn every_boundary_has_a_slice() {
        let m = sample_module();
        let c = CwspCompiler::new(CompileOptions::default()).compile(&m);
        for (_, f) in c.module.iter_functions() {
            for block in &f.blocks {
                for inst in &block.insts {
                    if let Inst::Boundary { id } = inst {
                        assert!(c.slices.get(*id).is_some(), "missing slice for {id}");
                    }
                }
            }
        }
    }

    #[test]
    fn compile_observed_reports_passes_and_ir_deltas() {
        let m = sample_module();
        let mut sink = cwsp_obs::MemSink::default();
        let c = CwspCompiler::new(CompileOptions::default()).compile_observed(&m, &mut sink);
        // Every pipeline pass shows up as a span on the compiler track.
        for pass in [
            "optimize",
            "compute_call_saves",
            "split_same_reg_updates",
            "form_regions",
            "insert_checkpoints",
            "prune_and_build_slices",
            "validate",
        ] {
            assert_eq!(sink.spans_named(pass).len(), 1, "missing span for {pass}");
        }
        // IR deltas match the returned stats.
        assert_eq!(
            sink.count_total("compiler.regions_formed"),
            c.stats.boundaries_inserted as u64
        );
        assert_eq!(
            sink.count_total("compiler.slices_emitted"),
            c.slices.len() as u64
        );
        // And the observed compile is the same compile.
        let plain = CwspCompiler::new(CompileOptions::default()).compile(&m);
        assert_eq!(plain.stats, c.stats);
    }

    #[test]
    fn input_module_is_untouched() {
        let m = sample_module();
        let before = m.inst_count();
        let _ = CwspCompiler::new(CompileOptions::default()).compile(&m);
        assert_eq!(m.inst_count(), before);
    }
}
