//! Forward constant propagation over a function's CFG.
//!
//! The slice pruner replaces checkpoint restores with rematerialized
//! constants when its own reaching-definition analysis proves a live-in is
//! compile-time known. A verifier must not trust the pass it checks, so this
//! is an *independent* implementation: a classic forward dataflow on the
//! flat lattice `⊤ (unvisited) > Const(c) > Unknown`, iterated to fixpoint
//! in reverse post-order.
//!
//! Entry state mirrors the machine: parameter registers hold caller-supplied
//! (unknown) values; every other register is zero-initialized by the
//! interpreter, hence `Const(0)`.

use cwsp_ir::cfg;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::{Inst, Operand};
use cwsp_ir::layout;
use cwsp_ir::types::{Reg, Word};

/// Abstract register value on the flat constant lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CVal {
    /// Not provably constant.
    Unknown,
    /// Provably this constant on every path.
    Const(Word),
}

impl CVal {
    fn meet(self, other: CVal) -> CVal {
        match (self, other) {
            (CVal::Const(a), CVal::Const(b)) if a == b => CVal::Const(a),
            _ => CVal::Unknown,
        }
    }
}

/// Per-function constant-propagation result: abstract register state at each
/// block entry (`None` = block unreachable, the lattice ⊤).
#[derive(Debug, Clone)]
pub struct ConstProp {
    block_in: Vec<Option<Vec<CVal>>>,
}

fn eval_operand(state: &[CVal], op: Operand) -> CVal {
    match op {
        // Tagged global references resolve to a module-dependent address;
        // the analysis is per-function, so treat them as unknown.
        Operand::Imm(v) if layout::is_tagged_global(v) => CVal::Unknown,
        Operand::Imm(v) => CVal::Const(v),
        Operand::Reg(r) => state.get(r.index()).copied().unwrap_or(CVal::Unknown),
    }
}

fn transfer(state: &mut [CVal], inst: &Inst) {
    let set = |state: &mut [CVal], r: Reg, v: CVal| {
        if let Some(slot) = state.get_mut(r.index()) {
            *slot = v;
        }
    };
    match inst {
        Inst::Mov { dst, src } => {
            let v = eval_operand(state, *src);
            set(state, *dst, v);
        }
        Inst::Binary { op, dst, lhs, rhs } => {
            let v = match (eval_operand(state, *lhs), eval_operand(state, *rhs)) {
                (CVal::Const(a), CVal::Const(b)) => CVal::Const(op.eval(a, b)),
                _ => CVal::Unknown,
            };
            set(state, *dst, v);
        }
        Inst::Load { dst, .. } | Inst::AtomicRmw { dst, .. } => {
            set(state, *dst, CVal::Unknown);
        }
        Inst::Call { ret, save_regs, .. } => {
            // The restore phase reloads `save_regs` from the frame; the
            // reloaded value equals the spilled one, but proving that would
            // couple this analysis to call semantics — stay conservative.
            if let Some(r) = ret {
                set(state, *r, CVal::Unknown);
            }
            for r in save_regs {
                set(state, *r, CVal::Unknown);
            }
        }
        _ => {}
    }
}

impl ConstProp {
    /// Run the analysis to fixpoint on `f`.
    pub fn compute(f: &Function) -> Self {
        let nregs = f.reg_count as usize;
        let entry_state: Vec<CVal> = (0..nregs)
            .map(|r| {
                if (r as u32) < f.param_count {
                    CVal::Unknown
                } else {
                    CVal::Const(0)
                }
            })
            .collect();
        let mut block_in: Vec<Option<Vec<CVal>>> = vec![None; f.blocks.len()];
        block_in[f.entry().index()] = Some(entry_state);

        let rpo = cfg::reverse_post_order(f);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let Some(mut state) = block_in[b.index()].clone() else {
                    continue;
                };
                for inst in &f.block(b).insts {
                    transfer(&mut state, inst);
                }
                for s in cfg::successors(f, b) {
                    match &mut block_in[s.index()] {
                        cur @ None => {
                            *cur = Some(state.clone());
                            changed = true;
                        }
                        Some(cur) => {
                            for (c, n) in cur.iter_mut().zip(&state) {
                                let met = c.meet(*n);
                                if met != *c {
                                    *c = met;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        ConstProp { block_in }
    }

    /// Abstract value of `r` immediately before instruction `idx` of block
    /// `b`; `None` when the block is unreachable.
    pub fn value_before(&self, f: &Function, b: BlockId, idx: usize, r: Reg) -> Option<CVal> {
        let mut state = self.block_in[b.index()].clone()?;
        for inst in f.block(b).insts.iter().take(idx) {
            transfer(&mut state, inst);
        }
        Some(state.get(r.index()).copied().unwrap_or(CVal::Unknown))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{BinOp, MemRef};

    #[test]
    fn folds_straight_line_constants() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(10));
        let r1 = b.bin(e, BinOp::Mul, r0.into(), Operand::imm(3));
        b.push(e, Inst::Halt);
        let f = b.build();
        let cp = ConstProp::compute(&f);
        assert_eq!(cp.value_before(&f, e, 2, r1), Some(CVal::Const(30)));
        assert_eq!(cp.value_before(&f, e, 0, r0), Some(CVal::Const(0)));
    }

    #[test]
    fn params_are_unknown_and_others_zero() {
        let mut b = FunctionBuilder::new("f", 2);
        let e = b.entry();
        let extra = b.vreg();
        b.push(e, Inst::Halt);
        let f = b.build();
        let cp = ConstProp::compute(&f);
        assert_eq!(cp.value_before(&f, e, 0, Reg(0)), Some(CVal::Unknown));
        assert_eq!(cp.value_before(&f, e, 0, Reg(1)), Some(CVal::Unknown));
        assert_eq!(cp.value_before(&f, e, 0, extra), Some(CVal::Const(0)));
    }

    #[test]
    fn load_and_call_results_are_unknown() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.vreg();
        b.push(e, Inst::load(r0, MemRef::abs(64)));
        b.push(e, Inst::Halt);
        let f = b.build();
        let cp = ConstProp::compute(&f);
        assert_eq!(cp.value_before(&f, e, 1, r0), Some(CVal::Unknown));
    }

    #[test]
    fn diamond_meets_to_unknown_on_disagreement() {
        // entry: condbr p ? a : b; a: r1 = 1; b: r1 = 2; join
        let mut bld = FunctionBuilder::new("f", 1);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let join = bld.block();
        let r1 = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: a,
                if_false: b2,
            },
        );
        bld.push(
            a,
            Inst::Mov {
                dst: r1,
                src: Operand::imm(1),
            },
        );
        bld.push(a, Inst::Br { target: join });
        bld.push(
            b2,
            Inst::Mov {
                dst: r1,
                src: Operand::imm(2),
            },
        );
        bld.push(b2, Inst::Br { target: join });
        bld.push(join, Inst::Halt);
        let f = bld.build();
        let cp = ConstProp::compute(&f);
        assert_eq!(cp.value_before(&f, join, 0, r1), Some(CVal::Unknown));
    }

    #[test]
    fn diamond_meets_to_const_on_agreement() {
        let mut bld = FunctionBuilder::new("f", 1);
        let e = bld.entry();
        let a = bld.block();
        let b2 = bld.block();
        let join = bld.block();
        let r1 = bld.vreg();
        bld.push(
            e,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: a,
                if_false: b2,
            },
        );
        for arm in [a, b2] {
            bld.push(
                arm,
                Inst::Mov {
                    dst: r1,
                    src: Operand::imm(7),
                },
            );
            bld.push(arm, Inst::Br { target: join });
        }
        bld.push(join, Inst::Halt);
        let f = bld.build();
        let cp = ConstProp::compute(&f);
        assert_eq!(cp.value_before(&f, join, 0, r1), Some(CVal::Const(7)));
    }

    #[test]
    fn unreachable_block_reports_none() {
        let mut bld = FunctionBuilder::new("f", 0);
        let e = bld.entry();
        let dead = bld.block();
        bld.push(e, Inst::Halt);
        bld.push(dead, Inst::Halt);
        let f = bld.build();
        let cp = ConstProp::compute(&f);
        assert_eq!(cp.value_before(&f, dead, 0, Reg(0)), None);
    }

    #[test]
    fn tagged_global_immediates_are_unknown() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r0 = b.mov(e, Operand::imm(layout::GLOBAL_TAG | 8));
        b.push(e, Inst::Halt);
        let f = b.build();
        let cp = ConstProp::compute(&f);
        assert_eq!(cp.value_before(&f, e, 1, r0), Some(CVal::Unknown));
    }
}
