//! Fundamental value and identifier types shared across the workspace.

use std::fmt;

/// The machine word: every IR value, register, and memory cell is a `u64`.
///
/// Arithmetic in the IR is wrapping (two's-complement); signed operations
/// reinterpret the bits as `i64`. This matches the 8-byte persist granularity
/// that cWSP's persist path carries (§V-A2).
pub type Word = u64;

/// A function-local virtual register.
///
/// Registers are dense small integers assigned by [`crate::builder::FunctionBuilder`].
/// The cWSP compiler checkpoints *live-out* registers to per-register NVM slots
/// (§IV-B); the slot address for register `r` is
/// [`crate::layout::ckpt_slot_addr`]`(core, r)`.
///
/// # Example
/// ```
/// use cwsp_ir::Reg;
/// let r = Reg(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(format!("{r}"), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl Reg {
    /// The dense index of this register (usable for bit-set/array indexing).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a *static* region: the index of the region-boundary
/// instruction (or function entry) that begins it.
///
/// Static region ids key compiler-side metadata — most importantly the
/// recovery slice (§IV-C / §VII) generated for the region. During execution
/// each *dynamic* region instance additionally receives a monotonically
/// increasing sequence number ([`DynRegionId`]) that the region boundary table
/// and the memory-controller undo logs are ordered by (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rg{}", self.0)
    }
}

/// A dynamic region instance id: "a hardware-managed counter that atomically
/// increases to ensure unique ID allocation across all cores" (§V-B1).
///
/// Undo logs are reverted in reverse `DynRegionId` order during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DynRegionId(pub u64);

impl fmt::Display for DynRegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dyn{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg(0).to_string(), "r0");
        assert_eq!(Reg(41).index(), 41);
    }

    #[test]
    fn region_ids_order_and_hash() {
        assert!(RegionId(1) < RegionId(2));
        assert!(DynRegionId(9) < DynRegionId(10));
        let set: HashSet<_> = [Reg(1), Reg(1), Reg(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RegionId(7).to_string(), "Rg7");
        assert_eq!(DynRegionId(3).to_string(), "dyn3");
    }
}
