//! I6 — durability ordering: every NVM-visible store is flushed
//! ([`Inst::FlushLine`]) and fenced ([`Inst::PFence`]) before any event that
//! assumes it durable.
//!
//! This is the static half of the repository's *translation validation* of
//! `cwsp_compiler::autofence`: the pass inserts flush/fence operations, and
//! this analyzer — sharing no code with the pass — re-proves the epoch
//! persistency discipline on all paths. A pass bug (dropped flush, dropped
//! fence, mis-placed commit) surfaces as an `I6-*` error with a path
//! witness, exactly like the I1–I5 families.
//!
//! # The per-line persistency lattice
//!
//! Each tracked store key walks a PMVerify-style FSM:
//!
//! ```text
//!   (clean) --store--> Dirty --flush--> Flushed --pfence--> (clean/durable)
//! ```
//!
//! Keys are [`LineKey`]s: constant-resolvable addresses track at *line*
//! granularity (a `flush` writes back the whole 64-byte line), symbolic
//! addresses track word-exact as (base register, offset) — a flush with the
//! identical memory reference provably covers the store, anything weaker
//! does not. When a symbolic key's base register is redefined while the key
//! is still dirty, no later flush can be proven to target it; the key is
//! re-keyed to its store site ([`LineKey::Orphan`]) and stays dirty forever.
//!
//! # Commit points
//!
//! A *commit point* is any event whose semantics assume prior stores
//! durable. Two flavors, mirroring [`Scheme::AutoFence`] machine semantics:
//!
//! * **draining** — `fence`, `atomic`, `halt`: the hardware stalls until the
//!   persist path empties, so `Flushed` keys become durable for free; only
//!   `Dirty` (never-flushed) keys are violations (`I6-unflushed-store`).
//! * **non-draining** — `out` (publication), `boundary` (region close),
//!   `ret` (the modular contract: a function returns drained), and calls to
//!   *persist-impure* callees: here `Dirty` keys are `I6-unflushed-store`
//!   and `Flushed` keys are `I6-unfenced-flush` errors.
//!
//! Callee purity comes from the interprocedural [`Summaries`]: a callee that
//! transitively performs no store, atomic, fence, boundary, output, or
//! checkpoint-range write cannot interfere with the caller's persistency
//! state, so the call is not a commit point and the state flows across it.
//!
//! The dataflow is a forward may-analysis of *non-durability* over the
//! reachable CFG (union at joins, `Dirty` wins over `Flushed`), the same
//! `block_in: Vec<Option<State>>` fixpoint shape as [`crate::sync`]. Each
//! fact is reported once, at the first commit point it reaches; the state
//! resets after a commit so one root cause yields one diagnostic per path
//! shape, not a cascade.
//!
//! Redundant operations are surfaced as warnings (`I6-redundant-flush` for a
//! flush whose key is already clean or flushed, `I6-redundant-fence` for a
//! pfence with nothing flushed) — the autofence pass's redundancy
//! elimination keeps its output warning-free, which the fuzz farm checks.
//!
//! [`Inst::FlushLine`]: cwsp_ir::inst::Inst::FlushLine
//! [`Inst::PFence`]: cwsp_ir::inst::Inst::PFence
//! [`Scheme::AutoFence`]: https://docs.rs/ (see `cwsp_sim::scheme::Scheme`)

use crate::callgraph::CallGraph;
use crate::consts::ConstProp;
use crate::diag::{Diagnostic, Invariant, Location, PathWitness, Severity, WitnessStep};
use crate::summaries::{FuncSummary, Summaries};
use cwsp_ir::cfg;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::inst::{Inst, MemRef, Operand};
use cwsp_ir::layout;
use cwsp_ir::module::{FuncId, Module};
use cwsp_ir::types::Word;
use std::collections::BTreeMap;

/// Aggregate counters over one module's I6 analysis — the
/// `analyzer.persistency` section of the lint JSON envelope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistCounters {
    /// Functions analyzed.
    pub functions: usize,
    /// NVM-visible stores tracked through the lattice.
    pub tracked_stores: usize,
    /// `flush` operations seen.
    pub flushes: usize,
    /// `pfence` operations seen.
    pub fences: usize,
    /// Commit points classified (draining + non-draining).
    pub commit_points: usize,
    /// Error-severity I6 findings.
    pub errors: usize,
    /// Warning-severity I6 findings (redundant flush/fence).
    pub warnings: usize,
}

/// What a persistency fact is keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LineKey {
    /// Constant-resolved address, line-granular (`addr & !63`).
    Line(Word),
    /// Unresolved address: (base register index, byte offset) — word-exact.
    Sym(u32, i64),
    /// A symbolic store whose base register was clobbered while dirty,
    /// keyed by the store site: no flush can be proven to cover it.
    Orphan(u32, usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    Dirty,
    Flushed,
}

/// One lattice fact: the FSM state plus the sites that created it (for
/// witness construction and deterministic merging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fact {
    st: PState,
    /// (block, idx) of the dirtying store.
    store: (u32, usize),
    /// (block, idx) of the flush, once `Flushed`.
    flush: Option<(u32, usize)>,
}

type State = BTreeMap<LineKey, Fact>;

/// Union-join: a fact present on *any* inflowing path is a hazard on that
/// path. `Dirty` beats `Flushed`; ties keep the smaller site pair so the
/// fixpoint (and therefore the report) is deterministic.
fn join(into: &mut State, from: &State) -> bool {
    let mut changed = false;
    for (k, f) in from {
        match into.get_mut(k) {
            None => {
                into.insert(*k, *f);
                changed = true;
            }
            Some(cur) => {
                let m = meet(*cur, *f);
                if m != *cur {
                    *cur = m;
                    changed = true;
                }
            }
        }
    }
    changed
}

fn meet(a: Fact, b: Fact) -> Fact {
    let rank = |f: &Fact| matches!(f.st, PState::Dirty) as u8;
    match rank(&a).cmp(&rank(&b)) {
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Equal => {
            if (a.store, a.flush) <= (b.store, b.flush) {
                a
            } else {
                b
            }
        }
    }
}

/// How a commit point treats `Flushed` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Commit {
    /// Hardware stalls until the persist path drains: flushed keys become
    /// durable, only never-flushed ones are violations.
    Draining(&'static str),
    /// No drain: both dirty and merely-flushed keys are violations.
    Strict(&'static str),
}

/// Per-function analysis context, shared by the fixpoint and report walks.
struct Ctx<'a> {
    module: &'a Module,
    f: &'a Function,
    consts: ConstProp,
    /// Per-`FuncId` persist-purity of callees.
    pure_call: &'a [bool],
}

impl Ctx<'_> {
    /// The lattice key of a memory reference at (b, i), or `None` for
    /// accesses into the reserved checkpoint/metadata ranges (recovery
    /// plumbing, not program durability).
    fn key_of(&self, b: BlockId, i: usize, m: &MemRef) -> Option<LineKey> {
        match crate::races::resolve_addr(self.module, &self.consts, self.f, b, i, m) {
            Some(a) => {
                if layout::is_ckpt_addr(a) || layout::is_hw_meta_addr(a) {
                    None
                } else {
                    Some(LineKey::Line(a & !63))
                }
            }
            None => match m.base {
                Operand::Reg(r) => Some(LineKey::Sym(r.0, m.offset)),
                // A constant base always resolves above.
                Operand::Imm(_) => None,
            },
        }
    }

    /// Classify `inst` as a commit point, if it is one.
    fn commit_kind(&self, inst: &Inst) -> Option<Commit> {
        match inst {
            Inst::Fence => Some(Commit::Draining("synchronization fence")),
            Inst::AtomicRmw { .. } => Some(Commit::Draining("atomic synchronization")),
            Inst::Halt => Some(Commit::Draining("program halt")),
            Inst::Out { .. } => Some(Commit::Strict("output publication")),
            Inst::Boundary { .. } => Some(Commit::Strict("region close")),
            Inst::Ret { .. } => Some(Commit::Strict("function return")),
            Inst::Call { func, .. } => {
                if self.pure_call.get(func.index()).copied().unwrap_or(false) {
                    None
                } else {
                    Some(Commit::Strict("call to persist-impure callee"))
                }
            }
            _ => None,
        }
    }
}

fn describe(key: LineKey) -> String {
    match key {
        LineKey::Line(l) => format!("line {l:#x}"),
        LineKey::Sym(r, off) if off >= 0 => format!("[r{r}+{off}]"),
        LineKey::Sym(r, off) => format!("[r{r}{off}]"),
        LineKey::Orphan(b, i) => format!("store at b{b}:{i} (address register clobbered)"),
    }
}

/// One-instruction transfer. `diags`/`counters` are only written when
/// `emit` (the report walk); the fixpoint runs the same function silently.
#[allow(clippy::too_many_arguments)]
fn transfer(
    ctx: &Ctx<'_>,
    state: &mut State,
    b: BlockId,
    i: usize,
    inst: &Inst,
    emit: bool,
    diags: &mut Vec<Diagnostic>,
    counters: &mut PersistCounters,
) {
    match inst {
        Inst::Store { addr, .. } => {
            if let Some(k) = ctx.key_of(b, i, addr) {
                if emit {
                    counters.tracked_stores += 1;
                }
                // Overwrite: the previous value of this word/line is
                // architecturally dead, its durability no longer required.
                state.insert(
                    k,
                    Fact {
                        st: PState::Dirty,
                        store: (b.0, i),
                        flush: None,
                    },
                );
            }
        }
        Inst::FlushLine { addr } => {
            if emit {
                counters.flushes += 1;
            }
            if let Some(k) = ctx.key_of(b, i, addr) {
                match state.get_mut(&k) {
                    Some(f) if f.st == PState::Dirty => {
                        f.st = PState::Flushed;
                        f.flush = Some((b.0, i));
                    }
                    _ => {
                        if emit {
                            counters.warnings += 1;
                            diags.push(Diagnostic {
                                severity: Severity::Warning,
                                invariant: Invariant::DurabilityOrder,
                                code: "I6-redundant-flush",
                                message: format!(
                                    "flush of {} covers no dirty store on any path \
                                     (already flushed or never written)",
                                    describe(k)
                                ),
                                location: loc(ctx.f, b, i),
                                region: None,
                                witness: None,
                            });
                        }
                    }
                }
            }
        }
        Inst::PFence => {
            if emit {
                counters.fences += 1;
            }
            let had_flushed = state.values().any(|f| f.st == PState::Flushed);
            if !had_flushed && emit {
                counters.warnings += 1;
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    invariant: Invariant::DurabilityOrder,
                    code: "I6-redundant-fence",
                    message: "pfence orders no outstanding flush on any path".into(),
                    location: loc(ctx.f, b, i),
                    region: None,
                    witness: None,
                });
            }
            state.retain(|_, f| f.st != PState::Flushed);
        }
        _ => {
            if let Some(kind) = ctx.commit_kind(inst) {
                if emit {
                    counters.commit_points += 1;
                    let (desc, strict) = match kind {
                        Commit::Draining(d) => (d, false),
                        Commit::Strict(d) => (d, true),
                    };
                    for (k, f) in state.iter() {
                        let (code, problem) = match f.st {
                            PState::Dirty => (
                                "I6-unflushed-store",
                                "was never flushed toward the persist path",
                            ),
                            PState::Flushed if strict => (
                                "I6-unfenced-flush",
                                "was flushed but no pfence ordered it durable",
                            ),
                            // A draining commit makes flushed keys durable.
                            PState::Flushed => continue,
                        };
                        counters.errors += 1;
                        let mut steps = vec![WitnessStep {
                            block: f.store.0,
                            idx: f.store.1,
                            note: format!("store dirties {}", describe(*k)),
                        }];
                        if let Some((fb, fi)) = f.flush {
                            steps.push(WitnessStep {
                                block: fb,
                                idx: fi,
                                note: format!(
                                    "{} flushed here — write-back issued, not yet durable",
                                    describe(*k)
                                ),
                            });
                        }
                        steps.push(WitnessStep {
                            block: b.0,
                            idx: i,
                            note: format!("{desc} assumes prior stores durable"),
                        });
                        diags.push(Diagnostic {
                            severity: Severity::Error,
                            invariant: Invariant::DurabilityOrder,
                            code,
                            message: format!("{} {} before {}", describe(*k), problem, desc),
                            location: loc(ctx.f, b, i),
                            region: None,
                            witness: Some(PathWitness::elided(steps, 14)),
                        });
                    }
                }
                // One report per fact: the state resets at a commit, whether
                // or not the facts were clean.
                state.clear();
            }
        }
    }
    // A redefinition of a symbolic key's base register severs the only
    // provable link between the key and any later flush of the same memref.
    let defs = defs_of(inst);
    if !defs.is_empty() {
        let stale: Vec<LineKey> = state
            .keys()
            .filter(|k| matches!(k, LineKey::Sym(r, _) if defs.contains(r)))
            .copied()
            .collect();
        for k in stale {
            let f = state.remove(&k).expect("key just listed");
            let orphan = LineKey::Orphan(f.store.0, f.store.1);
            match state.get_mut(&orphan) {
                Some(cur) => *cur = meet(*cur, f),
                None => {
                    state.insert(orphan, f);
                }
            }
        }
    }
}

/// Registers defined by `inst` (including call-saved restores), as raw
/// indices — the kill set for symbolic keys.
fn defs_of(inst: &Inst) -> Vec<u32> {
    let mut d: Vec<u32> = inst.def().map(|r| r.0).into_iter().collect();
    if let Inst::Call { save_regs, .. } = inst {
        d.extend(save_regs.iter().map(|r| r.0));
    }
    d
}

fn loc(f: &Function, b: BlockId, i: usize) -> Location {
    Location {
        function: f.name.clone(),
        block: b.0,
        inst: Some(i),
    }
}

/// Analyze one function, appending diagnostics and accumulating counters.
fn check_function(
    module: &Module,
    f: &Function,
    pure_call: &[bool],
    out: &mut Vec<Diagnostic>,
    counters: &mut PersistCounters,
) {
    if f.validate().is_err() {
        // I4-invalid-function is reported by the core pass sequence; a
        // malformed CFG cannot be traversed meaningfully here.
        return;
    }
    counters.functions += 1;
    let ctx = Ctx {
        module,
        f,
        consts: ConstProp::compute(f),
        pure_call,
    };
    let rpo = cfg::reverse_post_order(f);
    let nb = f.blocks.len();
    let mut block_in: Vec<Option<State>> = vec![None; nb];
    block_in[f.entry().0 as usize] = Some(State::new());
    // Fixpoint: forward may-analysis over the reachable CFG.
    let mut scratch = Vec::new();
    let mut scratch_counters = PersistCounters::default();
    loop {
        let mut changed = false;
        for &b in &rpo {
            let Some(mut st) = block_in[b.0 as usize].clone() else {
                continue;
            };
            for (i, inst) in f.blocks[b.0 as usize].insts.iter().enumerate() {
                transfer(
                    &ctx,
                    &mut st,
                    b,
                    i,
                    inst,
                    false,
                    &mut scratch,
                    &mut scratch_counters,
                );
            }
            for s in cfg::successors(f, b) {
                match &mut block_in[s.0 as usize] {
                    None => {
                        block_in[s.0 as usize] = Some(st.clone());
                        changed = true;
                    }
                    Some(cur) => changed |= join(cur, &st),
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Report walk over the converged in-states (deterministic: each block
    // visited once, in RPO).
    for &b in &rpo {
        let Some(mut st) = block_in[b.0 as usize].clone() else {
            continue;
        };
        for (i, inst) in f.blocks[b.0 as usize].insts.iter().enumerate() {
            transfer(&ctx, &mut st, b, i, inst, true, out, counters);
        }
    }
}

/// Persist-purity of a callee: it cannot disturb (or depend on) the caller's
/// persistency state. Implied by — and strictly weaker than — the autofence
/// pass's syntactic purity, so a pass-fenced call set always covers the
/// commit points this analysis demands (translation validation soundness).
fn persist_pure(s: &FuncSummary) -> bool {
    s.stores.is_empty()
        && !s.stores_unknown
        && s.sync_addrs.is_empty()
        && !s.sync_unknown
        && !s.has_fence
        && !s.has_out
        && !s.has_boundary
        && !s.writes_ckpt_range
}

/// I6 over a whole module with precomputed interprocedural summaries.
pub fn check_module_with(module: &Module, sums: &Summaries) -> (Vec<Diagnostic>, PersistCounters) {
    let pure_call: Vec<bool> = (0..module.function_count())
        .map(|i| persist_pure(sums.get(FuncId(i as u32))))
        .collect();
    let mut diags = Vec::new();
    let mut counters = PersistCounters::default();
    for (_, f) in module.iter_functions() {
        check_function(module, f, &pure_call, &mut diags, &mut counters);
    }
    (diags, counters)
}

/// I6 over a whole module, computing the call graph and summaries locally —
/// the standalone entry (`cwsp-lint --persist`, tests, fuzz oracles).
pub fn check_module(module: &Module) -> (Vec<Diagnostic>, PersistCounters) {
    let cg = CallGraph::compute(module);
    let sums = Summaries::compute(module, &cg);
    check_module_with(module, &sums)
}

/// Whether `diags` contains no error-severity I6 finding — the
/// translation-validation acceptance predicate.
pub fn i6_clean(diags: &[Diagnostic]) -> bool {
    !diags
        .iter()
        .any(|d| d.severity == Severity::Error && d.invariant == Invariant::DurabilityOrder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::MemRef;
    use cwsp_ir::layout::GLOBAL_BASE;
    use cwsp_ir::types::Reg;

    fn single(f: FunctionBuilder) -> Module {
        let mut m = Module::new("t");
        let id = m.add_function(f.build());
        m.set_entry(id);
        m
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn flushed_and_fenced_store_is_clean() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let g = MemRef::abs(GLOBAL_BASE);
        b.push(e, Inst::store(Operand::imm(1), g));
        b.push(e, Inst::FlushLine { addr: g });
        b.push(e, Inst::PFence);
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let (diags, c) = check_module(&single(b));
        assert!(i6_clean(&diags), "{diags:?}");
        assert!(diags.is_empty(), "no warnings either: {diags:?}");
        assert_eq!((c.tracked_stores, c.flushes, c.fences), (1, 1, 1));
        assert!(c.commit_points >= 2, "out + halt");
    }

    #[test]
    fn unflushed_store_at_publication_is_an_error_with_witness() {
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let (diags, _) = check_module(&single(b));
        assert!(!i6_clean(&diags));
        let d = diags
            .iter()
            .find(|d| d.code == "I6-unflushed-store")
            .expect("unflushed-store reported");
        assert!(
            d.message
                .contains(&format!("line {:#x}", GLOBAL_BASE & !63)),
            "message names the line: {}",
            d.message
        );
        let w = d.witness.as_ref().expect("path witness attached");
        assert_eq!(w.steps.first().map(|s| s.idx), Some(0), "starts at store");
        assert!(w.steps.last().unwrap().note.contains("durable"));
    }

    #[test]
    fn flushed_but_unfenced_store_is_an_error_at_strict_commits_only() {
        // flush without pfence, then halt (a draining commit): clean.
        let g = MemRef::abs(GLOBAL_BASE);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), g));
        b.push(e, Inst::FlushLine { addr: g });
        b.push(e, Inst::Halt);
        let (diags, _) = check_module(&single(b));
        assert!(i6_clean(&diags), "halt drains: {diags:?}");

        // Same, but publishing first: unfenced-flush error.
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), g));
        b.push(e, Inst::FlushLine { addr: g });
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let (diags, _) = check_module(&single(b));
        assert_eq!(codes(&diags), vec!["I6-unfenced-flush"], "{diags:?}");
        let w = diags[0].witness.as_ref().unwrap();
        assert_eq!(w.steps.len(), 3, "store, flush, commit: {w:?}");
    }

    #[test]
    fn dirty_on_one_path_only_is_still_an_error() {
        // entry -> (store in then-branch) -> join -> out
        let g = MemRef::abs(GLOBAL_BASE);
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let t = b.block();
        let j = b.block();
        b.push(
            e,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: t,
                if_false: j,
            },
        );
        b.push(t, Inst::store(Operand::imm(1), g));
        b.push(t, Inst::Br { target: j });
        b.push(
            j,
            Inst::Out {
                val: Operand::imm(0),
            },
        );
        b.push(j, Inst::Halt);
        let (diags, _) = check_module(&single(b));
        assert!(codes(&diags).contains(&"I6-unflushed-store"), "{diags:?}");
    }

    #[test]
    fn symbolic_store_covered_by_identical_memref_flush() {
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let m = MemRef::reg(Reg(0), 8);
        b.push(e, Inst::store(Operand::imm(1), m));
        b.push(e, Inst::FlushLine { addr: m });
        b.push(e, Inst::PFence);
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let (diags, _) = check_module(&single(b));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn clobbered_base_register_orphans_the_dirty_store() {
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), MemRef::reg(Reg(0), 0)));
        // r0 redefined: the later flush names a *different* address.
        b.push(
            e,
            Inst::Mov {
                dst: Reg(0),
                src: Operand::imm(9),
            },
        );
        b.push(
            e,
            Inst::FlushLine {
                addr: MemRef::reg(Reg(0), 0),
            },
        );
        b.push(e, Inst::PFence);
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let (diags, _) = check_module(&single(b));
        assert!(
            diags.iter().any(|d| d.code == "I6-unflushed-store"
                && d.message.contains("address register clobbered")),
            "{diags:?}"
        );
    }

    #[test]
    fn redundant_flush_and_fence_warn() {
        let g = MemRef::abs(GLOBAL_BASE);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), g));
        b.push(e, Inst::FlushLine { addr: g });
        b.push(e, Inst::FlushLine { addr: g }); // already flushed
        b.push(e, Inst::PFence);
        b.push(e, Inst::PFence); // nothing left to order
        b.push(e, Inst::Halt);
        let (diags, c) = check_module(&single(b));
        assert!(i6_clean(&diags));
        assert_eq!(
            codes(&diags),
            vec!["I6-redundant-flush", "I6-redundant-fence"],
            "{diags:?}"
        );
        assert_eq!(c.warnings, 2);
        assert_eq!(c.errors, 0);
    }

    #[test]
    fn draining_commits_reset_state_and_atomics_count() {
        // store; fence (drains dirty? no — dirty errors); check the error
        // is unflushed-store even at a draining commit.
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), MemRef::abs(GLOBAL_BASE)));
        b.push(e, Inst::Fence);
        // After the fence the fact is consumed: no second report at halt.
        b.push(e, Inst::Halt);
        let (diags, _) = check_module(&single(b));
        assert_eq!(codes(&diags), vec!["I6-unflushed-store"]);
    }

    #[test]
    fn pure_call_preserves_state_but_impure_call_commits() {
        let g = MemRef::abs(GLOBAL_BASE);
        // Pure helper: arithmetic only.
        let mut m = Module::new("t");
        let mut pure = FunctionBuilder::new("pure", 1);
        let pe = pure.entry();
        pure.push(
            pe,
            Inst::Ret {
                val: Some(Reg(0).into()),
            },
        );
        let pure_id = m.add_function(pure.build());
        // Impure helper: stores.
        let mut imp = FunctionBuilder::new("imp", 0);
        let ie = imp.entry();
        imp.push(
            ie,
            Inst::store(Operand::imm(2), MemRef::abs(GLOBAL_BASE + 64)),
        );
        imp.push(ie, Inst::Ret { val: None });
        let imp_id = m.add_function(imp.build());

        let mut main = FunctionBuilder::new("main", 0);
        let e = main.entry();
        main.push(e, Inst::store(Operand::imm(1), g));
        main.push(
            e,
            Inst::Call {
                func: pure_id,
                args: vec![Operand::imm(3)],
                ret: None,
                save_regs: vec![],
            },
        );
        main.push(e, Inst::FlushLine { addr: g });
        main.push(e, Inst::PFence);
        main.push(
            e,
            Inst::Call {
                func: imp_id,
                args: vec![],
                ret: None,
                save_regs: vec![],
            },
        );
        main.push(e, Inst::Halt);
        let main_id = m.add_function(main.build());
        m.set_entry(main_id);
        let (diags, _) = check_module(&m);
        // The dirty fact survives the pure call, is flushed+fenced before
        // the impure one: main is clean. `imp` itself has an unflushed
        // store hitting its `ret` commit.
        let main_diags: Vec<_> = diags
            .iter()
            .filter(|d| d.location.function == "main" && d.severity == Severity::Error)
            .collect();
        assert!(main_diags.is_empty(), "{diags:?}");
        assert!(
            diags.iter().any(|d| d.location.function == "imp"
                && d.code == "I6-unflushed-store"
                && d.message.contains("function return")),
            "{diags:?}"
        );
    }

    #[test]
    fn loop_carried_dirty_state_reaches_the_loop_commit() {
        // header: store; out; backedge — the out inside the loop sees the
        // store from the previous iteration via the join.
        let g = MemRef::abs(GLOBAL_BASE);
        let mut b = FunctionBuilder::new("main", 1);
        let e = b.entry();
        let h = b.block();
        let x = b.block();
        b.push(e, Inst::Br { target: h });
        b.push(h, Inst::store(Operand::imm(1), g));
        b.push(
            h,
            Inst::CondBr {
                cond: Reg(0).into(),
                if_true: h,
                if_false: x,
            },
        );
        b.push(
            x,
            Inst::Out {
                val: Operand::imm(0),
            },
        );
        b.push(x, Inst::Halt);
        let (diags, _) = check_module(&single(b));
        assert!(codes(&diags).contains(&"I6-unflushed-store"), "{diags:?}");
    }

    #[test]
    fn line_granularity_one_flush_covers_two_const_words() {
        // Two stores into the same 64-byte line; one flush of either word
        // cleans the line key.
        let a = MemRef::abs(GLOBAL_BASE);
        let b2 = MemRef::abs(GLOBAL_BASE + 8);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        b.push(e, Inst::store(Operand::imm(1), a));
        b.push(e, Inst::store(Operand::imm(2), b2));
        b.push(e, Inst::FlushLine { addr: b2 });
        b.push(e, Inst::PFence);
        b.push(
            e,
            Inst::Out {
                val: Operand::imm(1),
            },
        );
        b.push(e, Inst::Halt);
        let (diags, _) = check_module(&single(b));
        assert!(diags.is_empty(), "{diags:?}");
    }
}
