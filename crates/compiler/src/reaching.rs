//! Reaching-definitions analysis.
//!
//! The checkpoint pruner (§IV-C) needs to know, for each region boundary and
//! each live-in register, *which definitions* can supply the register's value
//! there. A boundary whose live-in has a single constant-foldable reaching
//! definition can rematerialize the value in its recovery slice instead of
//! loading the checkpoint slot — and checkpoints that no boundary loads can
//! be pruned.

use crate::liveness::defs;
use cwsp_ir::cfg;
use cwsp_ir::function::{BlockId, Function};
use cwsp_ir::types::Reg;
use std::collections::{HashMap, HashSet};

/// A definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DefSite {
    /// The implicit definition at function entry (parameters and the
    /// zero-initialized state of never-written registers).
    Entry,
    /// Instruction `idx` of `block`.
    Inst(BlockId, usize),
}

/// Reaching definitions for one function.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// `reach_in[b][r]` = definition sites of `r` reaching the entry of `b`.
    reach_in: Vec<HashMap<Reg, HashSet<DefSite>>>,
}

impl ReachingDefs {
    /// Compute reaching definitions with a forward worklist dataflow.
    pub fn compute(f: &Function) -> Self {
        let nblocks = f.blocks.len();
        // gen/kill summarized per block as "last def site of r in block".
        let mut last_def: Vec<HashMap<Reg, DefSite>> = vec![HashMap::new(); nblocks];
        for (bid, block) in f.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                for d in defs(inst) {
                    last_def[bid.index()].insert(d, DefSite::Inst(bid, i));
                }
            }
        }
        let mut reach_in: Vec<HashMap<Reg, HashSet<DefSite>>> = vec![HashMap::new(); nblocks];
        // Entry: every register reaches as DefSite::Entry.
        for r in 0..f.reg_count {
            reach_in[f.entry().index()]
                .entry(Reg(r))
                .or_default()
                .insert(DefSite::Entry);
        }
        let rpo = cfg::reverse_post_order(f);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                // out = (in - killed) + last defs
                let mut out = reach_in[b.index()].clone();
                for (r, site) in &last_def[b.index()] {
                    let e = out.entry(*r).or_default();
                    e.clear();
                    e.insert(*site);
                }
                for s in cfg::successors(f, b) {
                    for (r, sites) in &out {
                        let e = reach_in[s.index()].entry(*r).or_default();
                        for site in sites {
                            if e.insert(*site) {
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        ReachingDefs { reach_in }
    }

    /// Definition sites of `r` reaching the point immediately before
    /// instruction `idx` of block `b`.
    pub fn at(&self, f: &Function, b: BlockId, idx: usize, r: Reg) -> HashSet<DefSite> {
        let mut sites = self.reach_in[b.index()]
            .get(&r)
            .cloned()
            .unwrap_or_default();
        for (i, inst) in f.block(b).insts.iter().enumerate().take(idx) {
            if defs(inst).contains(&r) {
                sites.clear();
                sites.insert(DefSite::Inst(b, i));
            }
        }
        if sites.is_empty() {
            // Conservatively: uninitialized register (entry zero state).
            sites.insert(DefSite::Entry);
        }
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{BinOp, Inst, Operand};

    #[test]
    fn straight_line_single_def() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(1)); // def at (e, 0)
        let _u = b.bin(e, BinOp::Add, r.into(), Operand::imm(1)); // (e, 1)
        b.push(e, Inst::Halt);
        let f = b.build();
        let rd = ReachingDefs::compute(&f);
        let sites = rd.at(&f, e, 1, r);
        assert_eq!(sites.len(), 1);
        assert!(sites.contains(&DefSite::Inst(e, 0)));
        // Before the def, only Entry reaches.
        let before = rd.at(&f, e, 0, r);
        assert_eq!(before.into_iter().collect::<Vec<_>>(), vec![DefSite::Entry]);
    }

    #[test]
    fn merge_produces_two_sites() {
        // entry: condbr -> a | b; a: r=1; br join; b: r=2; br join; join: use r
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let ba = b.block();
        let bb = b.block();
        let join = b.block();
        let c = b.vreg();
        let r = b.vreg();
        b.push(
            e,
            Inst::CondBr {
                cond: c.into(),
                if_true: ba,
                if_false: bb,
            },
        );
        b.push(
            ba,
            Inst::Mov {
                dst: r,
                src: Operand::imm(1),
            },
        );
        b.push(ba, Inst::Br { target: join });
        b.push(
            bb,
            Inst::Mov {
                dst: r,
                src: Operand::imm(2),
            },
        );
        b.push(bb, Inst::Br { target: join });
        b.push(
            join,
            Inst::Ret {
                val: Some(r.into()),
            },
        );
        let f = b.build();
        let rd = ReachingDefs::compute(&f);
        let sites = rd.at(&f, join, 0, r);
        assert_eq!(sites.len(), 2, "{sites:?}");
    }

    #[test]
    fn loop_carried_defs_merge_with_init() {
        use cwsp_ir::builder::build_counted_loop;
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let (header, exit) = build_counted_loop(&mut b, e, Operand::imm(3), |_, _, _| {});
        b.push(exit, Inst::Halt);
        let f = b.build();
        let rd = ReachingDefs::compute(&f);
        // the induction variable has two reaching defs at the header: the
        // init mov and the latch increment.
        let i = Reg(0);
        let sites = rd.at(&f, header, 0, i);
        assert_eq!(sites.len(), 2, "{sites:?}");
    }

    #[test]
    fn kill_within_block() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.entry();
        let r = b.vreg();
        b.push(
            e,
            Inst::Mov {
                dst: r,
                src: Operand::imm(1),
            },
        );
        b.push(
            e,
            Inst::Mov {
                dst: r,
                src: Operand::imm(2),
            },
        );
        b.push(
            e,
            Inst::Ret {
                val: Some(r.into()),
            },
        );
        let f = b.build();
        let rd = ReachingDefs::compute(&f);
        let sites = rd.at(&f, e, 2, r);
        assert_eq!(sites.len(), 1);
        assert!(
            sites.contains(&DefSite::Inst(e, 1)),
            "second def kills first"
        );
    }
}
