//! Same-instruction register-update splitting.
//!
//! An instruction like `r = r + 1` both reads and writes `r`. Cutting a
//! region boundary immediately before it is *not* sufficient for recovery:
//! the checkpoint placed after the definition overwrites `r`'s NVM slot, and
//! if the region is the oldest unpersisted one (whose stores are in-place,
//! not undo-logged), a crash after the checkpoint persists would make the
//! recovery slice restore the *new* value and re-execution would double-apply
//! the update.
//!
//! De Kruijf et al. solve this with SSA-style register renaming; we apply the
//! minimal equivalent: rewrite `r = r ⊕ x` into `t = r ⊕ x; r = t` with a
//! fresh `t`. The region-formation pass then cuts before the copy. The
//! post-cut region defines `r` at its entry (so `r` is not live-in and its
//! slot is never read by that region's slice) and restores `t` from `t`'s own
//! slot — which the region never writes. See DESIGN.md §3.1.

use cwsp_ir::inst::Inst;
use cwsp_ir::module::Module;
use cwsp_ir::types::Reg;

/// Split every same-instruction register update in `module`. Returns the
/// number of instructions rewritten.
pub fn split_same_reg_updates(module: &mut Module) -> usize {
    let mut total = 0;
    for fid in 0..module.function_count() {
        let f = module.function_mut(cwsp_ir::module::FuncId(fid as u32));
        let mut next_reg = f.reg_count;
        for block in &mut f.blocks {
            let mut i = 0;
            while i < block.insts.len() {
                let inst = &mut block.insts[i];
                let needs_split = match inst {
                    Inst::Binary { dst, lhs, rhs, .. } => [lhs.as_reg(), rhs.as_reg()]
                        .iter()
                        .flatten()
                        .any(|r| r == dst),
                    Inst::Load { dst, addr } => addr.base.as_reg() == Some(*dst),
                    Inst::AtomicRmw {
                        dst,
                        addr,
                        src,
                        expected,
                        ..
                    } => [addr.base.as_reg(), src.as_reg(), expected.as_reg()]
                        .iter()
                        .flatten()
                        .any(|r| r == dst),
                    _ => false,
                };
                if needs_split {
                    let t = Reg(next_reg);
                    next_reg += 1;
                    let old_dst = match inst {
                        Inst::Binary { dst, .. }
                        | Inst::Load { dst, .. }
                        | Inst::AtomicRmw { dst, .. } => {
                            let old = *dst;
                            *dst = t;
                            old
                        }
                        _ => unreachable!(),
                    };
                    block.insts.insert(
                        i + 1,
                        Inst::Mov {
                            dst: old_dst,
                            src: t.into(),
                        },
                    );
                    total += 1;
                    i += 1; // skip the inserted copy
                }
                i += 1;
            }
        }
        f.reg_count = next_reg;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::{build_counted_loop, FunctionBuilder};
    use cwsp_ir::inst::{BinOp, MemRef, Operand};

    #[test]
    fn increment_is_split() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(1));
        b.push(
            e,
            Inst::Binary {
                op: BinOp::Add,
                dst: r,
                lhs: r.into(),
                rhs: Operand::imm(1),
            },
        );
        b.push(
            e,
            Inst::Ret {
                val: Some(r.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        let n = split_same_reg_updates(&mut m);
        assert_eq!(n, 1);
        assert!(m.validate().is_ok(), "{:?}", m.validate());
        // Semantics preserved, and the update instruction no longer reads its
        // own destination.
        assert_eq!(cwsp_ir::interp::run(&m, 100).unwrap().return_value, Some(2));
        let f = m.function(m.entry().unwrap());
        for block in &f.blocks {
            for inst in &block.insts {
                if let Some(d) = inst.def() {
                    if !matches!(inst, Inst::Mov { .. } | Inst::Call { .. }) {
                        assert!(!inst.uses().contains(&d), "{inst:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn self_pointer_load_is_split() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r = b.mov(e, Operand::imm(64));
        b.push(
            e,
            Inst::Load {
                dst: r,
                addr: MemRef::reg(r, 0),
            },
        );
        b.push(
            e,
            Inst::Ret {
                val: Some(r.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        assert_eq!(split_same_reg_updates(&mut m), 1);
        assert!(m.validate().is_ok());
        assert_eq!(cwsp_ir::interp::run(&m, 100).unwrap().return_value, Some(0));
    }

    #[test]
    fn hand_written_increment_loop_split_preserves_semantics() {
        // A hand-rolled loop with the classic `i = i + 1` latch (the builder
        // helper emits the safe two-phase form, so build this one manually).
        let mut m = Module::new("t");
        let g = m.add_global("g", 1);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let header = b.block();
        let body = b.block();
        let exit = b.block();
        let i = b.vreg();
        b.push(
            e,
            Inst::Mov {
                dst: i,
                src: Operand::imm(0),
            },
        );
        b.push(e, Inst::Br { target: header });
        let c = b.bin(header, BinOp::CmpLtU, i.into(), Operand::imm(10));
        b.push(
            header,
            Inst::CondBr {
                cond: c.into(),
                if_true: body,
                if_false: exit,
            },
        );
        let v = b.load(body, MemRef::global(g, 0));
        let s = b.bin(body, BinOp::Add, v.into(), i.into());
        b.store(body, s.into(), MemRef::global(g, 0));
        b.push(
            body,
            Inst::Binary {
                op: BinOp::Add,
                dst: i,
                lhs: i.into(),
                rhs: Operand::imm(1),
            },
        );
        b.push(body, Inst::Br { target: header });
        let r = b.load(exit, MemRef::global(g, 0));
        b.push(
            exit,
            Inst::Ret {
                val: Some(r.into()),
            },
        );
        let f = m.add_function(b.build());
        m.set_entry(f);
        let oracle = cwsp_ir::interp::run(&m, 10_000).unwrap();
        let n = split_same_reg_updates(&mut m);
        assert!(n >= 1, "the latch increment must be split");
        let after = cwsp_ir::interp::run(&m, 10_000).unwrap();
        assert_eq!(after.return_value, oracle.return_value);
    }

    #[test]
    fn builder_loops_need_no_splitting() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 1);
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let (_, exit) = build_counted_loop(&mut b, e, Operand::imm(10), |b, bb, i| {
            b.store(bb, i.into(), MemRef::global(g, 0));
        });
        b.push(exit, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        assert_eq!(
            split_same_reg_updates(&mut m),
            0,
            "two-phase form already safe"
        );
    }

    #[test]
    fn untouched_instructions_stay_put() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let a = b.mov(e, Operand::imm(1));
        let _ = b.bin(e, BinOp::Add, a.into(), Operand::imm(2)); // fresh dst
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let before = m.inst_count();
        assert_eq!(split_same_reg_updates(&mut m), 0);
        assert_eq!(m.inst_count(), before);
    }
}
