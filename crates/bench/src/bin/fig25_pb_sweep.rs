//! Figure 25: persist-buffer size sensitivity (paper: ≤ 1.07 even at 20
//! entries; 50 is the default for maximal performance).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig25_pb_sweep", run);
}

fn run() {
    let apps = cwsp_workloads::all();
    println!("\n=== Fig 25: PB size sweep ===");
    for pb in [20usize, 40, 50, 60] {
        let cfg = SimConfig {
            pb_entries: pb,
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| {
            slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
        });
        println!("-- PB-{pb}");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
