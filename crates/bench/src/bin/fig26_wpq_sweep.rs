//! Figure 26: WPQ size sensitivity (paper: 1.11 average at 8 entries with
//! SPLASH3 up to 1.31; 24 suffices).

use cwsp_bench::{measure_all, slowdown, suite_gmeans};
use cwsp_compiler::pipeline::CompileOptions;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;

fn main() {
    cwsp_bench::harness_main("fig26_wpq_sweep", run);
}

fn run() {
    let apps = cwsp_workloads::all();
    println!("\n=== Fig 26: WPQ size sweep ===");
    for wpq in [2usize, 4, 8, 16, 24, 32] {
        let cfg = SimConfig {
            wpq_entries: wpq,
            ..SimConfig::default()
        };
        let results = measure_all(&apps, |w| {
            slowdown(w, &cfg, Scheme::cwsp(), CompileOptions::default())
        });
        println!("-- WPQ-{wpq}");
        for (suite, v) in suite_gmeans(&results) {
            println!("   {suite:<12} {v:>8.3} x");
        }
    }
}
