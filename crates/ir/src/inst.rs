//! IR instructions.
//!
//! The instruction set is deliberately small: word-sized ALU operations,
//! word-sized loads/stores with base+offset addressing, control flow, calls,
//! atomics/fences (the multicore synchronization points of §VIII), output, and
//! the two instructions the cWSP compiler inserts — [`Inst::Boundary`] (region
//! boundary) and [`Inst::Ckpt`] (live-out register checkpoint, §IV-B).

use crate::function::BlockId;
use crate::module::{FuncId, GlobalId};
use crate::types::{Reg, RegionId, Word};

/// A register-or-immediate operand.
///
/// # Example
/// ```
/// use cwsp_ir::{Operand, Reg};
/// let a: Operand = Reg(1).into();
/// let b = Operand::imm(7);
/// assert!(a.as_reg().is_some());
/// assert!(b.as_reg().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Value held in a virtual register.
    Reg(Reg),
    /// An immediate 64-bit constant.
    Imm(Word),
}

impl Operand {
    /// Shorthand for an immediate operand.
    #[inline]
    pub fn imm(v: Word) -> Self {
        Operand::Imm(v)
    }

    /// The register, if this operand reads one.
    #[inline]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

/// A memory reference: `base + offset`, where `base` is a register or
/// immediate and `offset` a signed byte displacement.
///
/// Addresses must be 8-byte aligned at execution time; the interpreter traps
/// otherwise. Static base kinds (globals, checkpoint slots) are resolved to
/// absolute immediates by [`crate::module::Module`] layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base address value.
    pub base: Operand,
    /// Signed byte offset added to the base.
    pub offset: i64,
}

impl MemRef {
    /// A memory reference through a register base.
    pub fn reg(base: Reg, offset: i64) -> Self {
        MemRef {
            base: base.into(),
            offset,
        }
    }

    /// A memory reference to an absolute address.
    pub fn abs(addr: Word) -> Self {
        MemRef {
            base: Operand::imm(addr),
            offset: 0,
        }
    }

    /// A memory reference to word `word_idx` of global `g`.
    ///
    /// Resolved against [`crate::layout::GLOBAL_BASE`]-relative placement by the
    /// interpreter via [`crate::module::Module::global_addr`]; at the IR level the
    /// global is encoded as an absolute immediate once the module is frozen.
    pub fn global(g: GlobalId, word_idx: i64) -> Self {
        MemRef {
            base: Operand::imm(crate::layout::GLOBAL_TAG | ((g.0 as Word) << 32)),
            offset: word_idx * 8,
        }
    }
}

/// Binary ALU / comparison opcodes. Comparisons produce 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division. Division by zero yields all-ones (hardware-style).
    DivU,
    /// Unsigned remainder. Remainder by zero yields the dividend.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 63).
    Shl,
    /// Logical shift right (shift amount masked to 63).
    ShrL,
    /// Arithmetic shift right (shift amount masked to 63).
    ShrA,
    /// Equality comparison (1 if equal).
    CmpEq,
    /// Inequality comparison.
    CmpNe,
    /// Unsigned less-than.
    CmpLtU,
    /// Signed less-than.
    CmpLtS,
    /// Unsigned min (models conditional-move idioms without branches).
    MinU,
    /// Unsigned max.
    MaxU,
}

impl BinOp {
    /// Evaluate the operation on two words.
    ///
    /// # Example
    /// ```
    /// use cwsp_ir::BinOp;
    /// assert_eq!(BinOp::Add.eval(u64::MAX, 1), 0); // wrapping
    /// assert_eq!(BinOp::CmpLtS.eval((-1i64) as u64, 0), 1);
    /// ```
    pub fn eval(self, a: Word, b: Word) -> Word {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::DivU => a.checked_div(b).unwrap_or(Word::MAX),
            BinOp::RemU => a.checked_rem(b).unwrap_or(a),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::ShrL => a.wrapping_shr((b & 63) as u32),
            BinOp::ShrA => ((a as i64).wrapping_shr((b & 63) as u32)) as Word,
            BinOp::CmpEq => (a == b) as Word,
            BinOp::CmpNe => (a != b) as Word,
            BinOp::CmpLtU => (a < b) as Word,
            BinOp::CmpLtS => ((a as i64) < (b as i64)) as Word,
            BinOp::MinU => a.min(b),
            BinOp::MaxU => a.max(b),
        }
    }
}

/// Atomic read-modify-write opcodes (synchronization points, §VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// Atomic fetch-add; destination receives the *old* value.
    FetchAdd,
    /// Atomic exchange; destination receives the old value.
    Swap,
    /// Atomic compare-and-swap: if `mem == expected` store `src`;
    /// destination receives the old value either way.
    Cas,
}

/// One IR instruction.
///
/// Instructions the *compiler* inserts ([`Inst::Boundary`], [`Inst::Ckpt`]) may
/// also be written by hand, which is how the simulated kernel-entry assembly of
/// §VI delineates its regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = op(lhs, rhs)`.
    Binary {
        op: BinOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = src` (register copy or immediate materialization).
    Mov { dst: Reg, src: Operand },
    /// `dst = mem[addr]` (8-byte word load).
    Load { dst: Reg, addr: MemRef },
    /// `mem[addr] = src` (8-byte word store). This is the instruction whose
    /// committed data rides the persist path (§V-A).
    Store { src: Operand, addr: MemRef },
    /// Unconditional branch.
    Br { target: BlockId },
    /// Branch to `if_true` when `cond != 0`, else `if_false`.
    CondBr {
        cond: Operand,
        if_true: BlockId,
        if_false: BlockId,
    },
    /// Call `func` with `args`.
    ///
    /// Semantics (mirroring real-hardware calling conventions so that all
    /// cross-frame state lives in persistent memory):
    /// 1. *Spill phase*: a frame record (caller resume point, previous frame
    ///    base), the registers in `save_regs` (live across the call — filled in
    ///    by the compiler's call-save pass), and the argument values are stored
    ///    to stack memory.
    /// 2. Control transfers to `func`'s entry, a region boundary. The callee's
    ///    parameter registers are loaded from the stack frame.
    /// 3. On `Ret`, the return value is stored to the frame, and the *restore
    ///    phase* (start of the caller's post-call region) reloads `save_regs`
    ///    and the return value from memory.
    Call {
        func: FuncId,
        args: Vec<Operand>,
        ret: Option<Reg>,
        save_regs: Vec<Reg>,
    },
    /// Return from the current function.
    Ret { val: Option<Operand> },
    /// Atomic read-modify-write. Acts as a synchronization point: the cWSP
    /// compiler places region boundaries around it, and the simulator drains
    /// outstanding regions before committing it (§VIII).
    AtomicRmw {
        op: AtomicOp,
        dst: Reg,
        addr: MemRef,
        src: Operand,
        expected: Operand,
    },
    /// Memory fence; a synchronization point like atomics.
    Fence,
    /// Region boundary inserted by the cWSP compiler (or by hand in the
    /// simulated kernel assembly, §VI). Begins static region `id`.
    Boundary { id: RegionId },
    /// Checkpoint of a live-out register to its NVM slot (§IV-B). Semantically
    /// a store to [`crate::layout::ckpt_slot_addr`]; kept distinct so passes and
    /// statistics can recognize it.
    Ckpt { reg: Reg },
    /// Emit a word to the program's observable output stream. Output is held
    /// in a per-region I/O redo buffer and released when the region persists
    /// (§VIII "I/O and Device States").
    Out { val: Operand },
    /// Write back the cache line containing `addr` toward NVM (clwb-style).
    /// Architecturally a no-op; under `Scheme::AutoFence` the simulator
    /// enqueues the line on the persist path. Inserted by
    /// `compiler::autofence`.
    FlushLine { addr: MemRef },
    /// Persist-ordering fence: earlier flushed lines become durable before
    /// any later persist-side event. Unlike [`Inst::Fence`] it is *not* a
    /// synchronization point — region formation ignores it.
    PFence,
    /// Stop the program.
    Halt,
}

impl Inst {
    /// Shorthand constructor for [`Inst::Binary`].
    pub fn binary(op: BinOp, dst: Reg, lhs: Operand, rhs: Operand) -> Self {
        Inst::Binary { op, dst, lhs, rhs }
    }

    /// Shorthand constructor for [`Inst::Load`].
    pub fn load(dst: Reg, addr: MemRef) -> Self {
        Inst::Load { dst, addr }
    }

    /// Shorthand constructor for [`Inst::Store`].
    pub fn store(src: Operand, addr: MemRef) -> Self {
        Inst::Store { src, addr }
    }

    /// The register this instruction defines (writes), if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Binary { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::AtomicRmw { dst, .. } => Some(*dst),
            Inst::Call { ret, .. } => *ret,
            _ => None,
        }
    }

    /// The registers this instruction uses (reads), in evaluation order.
    pub fn uses(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        let mut op = |o: &Operand| {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        };
        match self {
            Inst::Binary { lhs, rhs, .. } => {
                op(lhs);
                op(rhs);
            }
            Inst::Mov { src, .. } => op(src),
            Inst::Load { addr, .. } => op(&addr.base),
            Inst::Store { src, addr } => {
                op(src);
                op(&addr.base);
            }
            Inst::CondBr { cond, .. } => op(cond),
            Inst::Call {
                args, save_regs, ..
            } => {
                for a in args {
                    op(a);
                }
                // The spill phase reads the saved registers.
                out.extend(save_regs.iter().copied());
            }
            Inst::Ret { val: Some(v) } => op(v),
            Inst::AtomicRmw {
                addr,
                src,
                expected,
                ..
            } => {
                op(&addr.base);
                op(src);
                op(expected);
            }
            Inst::Ckpt { reg } => out.push(*reg),
            Inst::Out { val } => op(val),
            Inst::FlushLine { addr } => op(&addr.base),
            Inst::Br { .. }
            | Inst::Ret { val: None }
            | Inst::Fence
            | Inst::PFence
            | Inst::Boundary { .. }
            | Inst::Halt => {}
        }
        out
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. } | Inst::Halt
        )
    }

    /// Whether this instruction is a synchronization point (atomic or fence),
    /// which the region-formation pass treats as an initial boundary (§IV-A).
    pub fn is_sync(&self) -> bool {
        matches!(self, Inst::AtomicRmw { .. } | Inst::Fence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Sub.eval(1, 2), u64::MAX);
        assert_eq!(BinOp::DivU.eval(7, 2), 3);
        assert_eq!(BinOp::DivU.eval(7, 0), u64::MAX);
        assert_eq!(BinOp::RemU.eval(7, 0), 7);
        assert_eq!(BinOp::Shl.eval(1, 64), 1, "shift amount masked");
        assert_eq!(BinOp::ShrA.eval(u64::MAX, 1), u64::MAX);
        assert_eq!(BinOp::ShrL.eval(u64::MAX, 63), 1);
        assert_eq!(BinOp::CmpEq.eval(4, 4), 1);
        assert_eq!(BinOp::CmpNe.eval(4, 4), 0);
        assert_eq!(BinOp::CmpLtU.eval(1, u64::MAX), 1);
        assert_eq!(BinOp::CmpLtS.eval(1, u64::MAX), 0, "-1 < 1 signed");
        assert_eq!(BinOp::MinU.eval(3, 9), 3);
        assert_eq!(BinOp::MaxU.eval(3, 9), 9);
    }

    #[test]
    fn def_use_sets() {
        let i = Inst::binary(BinOp::Add, Reg(2), Reg(0).into(), Reg(1).into());
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.uses(), vec![Reg(0), Reg(1)]);

        let s = Inst::store(Reg(3).into(), MemRef::reg(Reg(4), 8));
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg(3), Reg(4)]);

        let c = Inst::Call {
            func: FuncId(0),
            args: vec![Reg(1).into(), Operand::imm(5)],
            ret: Some(Reg(9)),
            save_regs: vec![Reg(7)],
        };
        assert_eq!(c.def(), Some(Reg(9)));
        assert_eq!(c.uses(), vec![Reg(1), Reg(7)]);
    }

    #[test]
    fn terminators_and_sync() {
        assert!(Inst::Halt.is_terminator());
        assert!(Inst::Ret { val: None }.is_terminator());
        assert!(!Inst::Fence.is_terminator());
        assert!(Inst::Fence.is_sync());
        let rmw = Inst::AtomicRmw {
            op: AtomicOp::FetchAdd,
            dst: Reg(0),
            addr: MemRef::abs(64),
            src: Operand::imm(1),
            expected: Operand::imm(0),
        };
        assert!(rmw.is_sync());
        assert_eq!(rmw.uses(), vec![]);
    }

    #[test]
    fn flush_and_pfence_are_not_sync_points() {
        let fl = Inst::FlushLine {
            addr: MemRef::reg(Reg(3), 16),
        };
        assert_eq!(fl.def(), None);
        assert_eq!(fl.uses(), vec![Reg(3)]);
        assert!(!fl.is_sync() && !fl.is_terminator());
        assert_eq!(Inst::PFence.def(), None);
        assert!(Inst::PFence.uses().is_empty());
        assert!(!Inst::PFence.is_sync() && !Inst::PFence.is_terminator());
    }

    #[test]
    fn memref_constructors() {
        let m = MemRef::reg(Reg(1), -8);
        assert_eq!(m.offset, -8);
        let a = MemRef::abs(4096);
        assert_eq!(a.base, Operand::imm(4096));
    }
}
