//! The cWSP persist hardware on the core side: the persist buffer (PB), the
//! region boundary table (RBT), and the FIFO persist path (§III-B, §V).
//!
//! * **PB** — Intel's write-combining buffer repurposed as a volatile persist
//!   buffer: one entry per committed store `(region, addr, data, log-bit)`,
//!   drained in FIFO order onto the persist path. The WB-delay mechanism CAM
//!   searches it by cacheline.
//! * **RBT** — one entry per in-flight dynamic region: `Region ID`,
//!   `PendingWrs`, `MCBitVec`, and the recovery metadata ("RS Pointer"). The
//!   head is the oldest unpersisted — non-speculative — region; everything
//!   younger is speculative and undo-logged at the MCs (§V-B).
//! * **Persist path** — a latency/bandwidth-modelled FIFO from cores to
//!   memory controllers. cWSP sends 8-byte entries; cacheline schemes
//!   (Capri, ReplayCache) send 64 bytes per entry, an 8× bandwidth demand.

use crate::cache::line_of;
use cwsp_ir::interp::ResumePoint;
use cwsp_ir::types::{DynRegionId, RegionId, Word};
use std::collections::VecDeque;

/// One persist-buffer entry (Figure 9's PB fields plus a host-side sequence
/// number used for in-order deallocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbEntry {
    /// Host-side sequence number (monotonic per core).
    pub seq: u64,
    /// Dynamic region that issued the store.
    pub region: DynRegionId,
    /// 8-byte-aligned store address.
    pub addr: Word,
    /// Store data.
    pub data: Word,
    /// Whether the store is speculative and must be undo-logged at the MC.
    pub log_bit: bool,
    /// Whether the entry has been sent down the persist path.
    pub sent: bool,
}

/// The per-core persist buffer.
#[derive(Debug, Clone, Default)]
pub struct PersistBuffer {
    cap: usize,
    entries: VecDeque<PbEntry>,
    next_seq: u64,
}

impl PersistBuffer {
    /// An empty PB with `cap` entries.
    pub fn new(cap: usize) -> Self {
        PersistBuffer {
            cap,
            entries: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// Whether a new entry can be allocated.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.cap
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty (everything persisted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocate an entry for a committed store; returns its sequence number.
    ///
    /// # Panics
    /// Panics when full — callers must check [`PersistBuffer::has_space`]
    /// (the core stalls instead).
    pub fn push(&mut self, region: DynRegionId, addr: Word, data: Word, log_bit: bool) -> u64 {
        assert!(self.has_space(), "PB overflow — core must stall");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(PbEntry {
            seq,
            region,
            addr,
            data,
            log_bit,
            sent: false,
        });
        seq
    }

    /// The oldest unsent entry, if any (the persist path sends in order).
    pub fn next_unsent(&mut self) -> Option<&mut PbEntry> {
        self.entries.iter_mut().find(|e| !e.sent)
    }

    /// Deallocate `seq` (its data reached the WPQ). Acks arrive in FIFO order
    /// (the path is a FIFO), so every entry up to and including `seq` is done
    /// and popped from the head.
    pub fn complete(&mut self, seq: u64) {
        while self.entries.front().is_some_and(|head| head.seq <= seq) {
            self.entries.pop_front();
        }
    }

    /// CAM search: does any entry touch `line` (64-byte granularity)? Used by
    /// the WB-delay mechanism (§V-A1).
    pub fn matches_line(&self, line: Word) -> bool {
        self.entries.iter().any(|e| line_of(e.addr) == line)
    }

    /// Whether any entry still awaits its persist-path send.
    pub fn has_unsent(&self) -> bool {
        self.entries.iter().any(|e| !e.sent)
    }

    /// Every live entry in issue order — the persist-buffer slice of the
    /// crash forensics frontier (sent entries are on the wire; unsent ones
    /// never left the core).
    pub fn entries(&self) -> impl Iterator<Item = &PbEntry> {
        self.entries.iter()
    }
}

/// One RBT entry (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbtEntry {
    /// Globally unique dynamic region id.
    pub dyn_id: DynRegionId,
    /// Static region id (None for implicit call/return regions).
    pub static_region: Option<RegionId>,
    /// Recovery entry point of this region ("RS Pointer" + context).
    pub resume: ResumePoint,
    /// Number of stores issued by this region that have not reached a WPQ.
    pub pending: u32,
    /// Bit per memory controller this region has stored to (`MCBitVec`).
    pub mc_mask: u8,
    /// Whether the region has ended (its closing boundary committed).
    pub closed: bool,
}

/// The per-core region boundary table.
#[derive(Debug, Clone, Default)]
pub struct RegionBoundaryTable {
    cap: usize,
    entries: VecDeque<RbtEntry>,
}

impl RegionBoundaryTable {
    /// An empty RBT with `cap` entries.
    pub fn new(cap: usize) -> Self {
        RegionBoundaryTable {
            cap,
            entries: VecDeque::new(),
        }
    }

    /// Whether a new region can be opened.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.cap
    }

    /// Number of in-flight regions.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether no region is being tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Close the currently open (tail) region, if any.
    pub fn close_tail(&mut self) {
        if let Some(t) = self.entries.back_mut() {
            t.closed = true;
        }
    }

    /// Open a new region.
    ///
    /// # Panics
    /// Panics when full — callers must stall instead.
    pub fn open(&mut self, entry: RbtEntry) {
        assert!(self.has_space(), "RBT overflow — core must stall");
        self.entries.push_back(entry);
    }

    /// Account a committed store of the open (tail) region.
    pub fn on_store(&mut self, mc: usize) {
        if let Some(t) = self.entries.back_mut() {
            t.pending += 1;
            t.mc_mask |= 1 << mc;
        }
    }

    /// Account an ack from a WPQ for a store of region `dyn_id`.
    pub fn on_ack(&mut self, dyn_id: DynRegionId) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.dyn_id == dyn_id) {
            e.pending = e.pending.saturating_sub(1);
        }
    }

    /// Pop the head if it is fully persisted (closed and no pending stores).
    /// The next entry, if any, becomes the new non-speculative head; its
    /// recovery metadata must be persisted by the caller (§V-B step 4).
    pub fn try_retire(&mut self) -> Option<RbtEntry> {
        let head = self.entries.front()?;
        if head.closed && head.pending == 0 {
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// Replace the head entry (used when the recovery point advances past a
    /// committed synchronization instruction inside the open head region).
    pub fn replace_head(&mut self, entry: RbtEntry) {
        if let Some(h) = self.entries.front_mut() {
            *h = entry;
        }
    }

    /// The current head (oldest unpersisted region), if any.
    pub fn head(&self) -> Option<&RbtEntry> {
        self.entries.front()
    }

    /// The currently open region (tail), if any.
    pub fn tail(&self) -> Option<&RbtEntry> {
        self.entries.back()
    }

    /// Whether the tail is speculative: any region older than it is still
    /// unpersisted. Stores of the head region are non-speculative.
    pub fn tail_is_speculative(&self) -> bool {
        self.entries.len() > 1
    }

    /// Whether everything up to the open tail has persisted and the tail has
    /// no pending stores — the drain condition for synchronization points
    /// (§VIII).
    pub fn drained(&self) -> bool {
        self.entries.len() <= 1 && self.entries.front().is_none_or(|e| e.pending == 0)
    }
}

/// An entry travelling down the persist path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEntry {
    /// Cycle at which the entry reaches its memory controller.
    pub arrives_at: u64,
    /// Issuing core.
    pub core: usize,
    /// PB sequence number (for the ack).
    pub pb_seq: u64,
    /// Dynamic region of the store.
    pub region: DynRegionId,
    /// Store address.
    pub addr: Word,
    /// Store data.
    pub data: Word,
    /// Undo-log bit.
    pub log_bit: bool,
    /// Target memory controller.
    pub mc: usize,
}

/// The bandwidth/latency-modelled FIFO persist path, shared by all cores.
#[derive(Debug, Clone)]
pub struct PersistPath {
    latency: u64,
    bytes_per_cycle: f64,
    granularity: u64,
    tokens: f64,
    in_flight: VecDeque<PathEntry>,
}

impl PersistPath {
    /// A path with one-way `latency` cycles, `bytes_per_cycle` bandwidth, and
    /// `granularity` bytes per entry.
    pub fn new(latency: u64, bytes_per_cycle: f64, granularity: u64) -> Self {
        PersistPath {
            latency,
            bytes_per_cycle,
            granularity,
            tokens: 0.0,
            in_flight: VecDeque::new(),
        }
    }

    /// Advance one cycle: accrue bandwidth tokens (capped at one entry burst).
    pub fn tick(&mut self) {
        self.tokens = (self.tokens + self.bytes_per_cycle).min(4.0 * self.granularity as f64);
    }

    /// Advance `cycles` idle cycles at once. Bit-identical to `cycles` calls
    /// to [`PersistPath::tick`]: the same per-cycle add-then-cap sequence is
    /// replayed (the loop exits early once the cap is reached, after which
    /// further ticks are no-ops).
    pub fn advance(&mut self, cycles: u64) {
        let cap = 4.0 * self.granularity as f64;
        for _ in 0..cycles {
            if self.tokens >= cap {
                break;
            }
            self.tokens = (self.tokens + self.bytes_per_cycle).min(cap);
        }
    }

    /// How many further [`PersistPath::tick`]s are needed before one entry's
    /// worth of tokens is available. 0 when a send is possible right now;
    /// `u64::MAX` when bandwidth is zero. Replays the exact per-cycle token
    /// arithmetic, so the returned count is the precise send-ready tick.
    pub fn cycles_until_tokens(&self) -> u64 {
        let need = self.granularity as f64;
        if self.tokens >= need {
            return 0;
        }
        if self.bytes_per_cycle <= 0.0 {
            return u64::MAX;
        }
        let cap = 4.0 * self.granularity as f64;
        let mut t = self.tokens;
        let mut n = 0u64;
        while t < need {
            t = (t + self.bytes_per_cycle).min(cap);
            n += 1;
        }
        n
    }

    /// The cycle at which the head in-flight entry arrives, if any.
    pub fn next_arrival_cycle(&self) -> Option<u64> {
        self.in_flight.front().map(|e| e.arrives_at)
    }

    /// Try to admit an entry at `cycle`; consumes bandwidth tokens.
    #[allow(clippy::too_many_arguments)]
    pub fn try_send(
        &mut self,
        cycle: u64,
        core: usize,
        pb_seq: u64,
        region: DynRegionId,
        addr: Word,
        data: Word,
        log_bit: bool,
        mc: usize,
        numa_skew: u64,
    ) -> bool {
        if self.tokens < self.granularity as f64 {
            return false;
        }
        self.tokens -= self.granularity as f64;
        self.in_flight.push_back(PathEntry {
            arrives_at: cycle + self.latency + numa_skew,
            core,
            pb_seq,
            region,
            addr,
            data,
            log_bit,
            mc,
        });
        true
    }

    /// The head entry if it has arrived by `cycle` (FIFO: entries behind a
    /// blocked head wait, preserving per-core order).
    pub fn peek_arrival(&self, cycle: u64) -> Option<&PathEntry> {
        self.in_flight.front().filter(|e| e.arrives_at <= cycle)
    }

    /// Pop the head entry (after the MC accepted it).
    pub fn pop_arrival(&mut self) -> Option<PathEntry> {
        self.in_flight.pop_front()
    }

    /// Entries currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::function::BlockId;
    use cwsp_ir::interp::{ResumeKind, ResumePoint};
    use cwsp_ir::module::FuncId;

    fn rp() -> ResumePoint {
        ResumePoint {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
            frame_base: 0,
            sp: 0,
            kind: ResumeKind::Normal,
        }
    }

    fn entry(dyn_id: u64) -> RbtEntry {
        RbtEntry {
            dyn_id: DynRegionId(dyn_id),
            static_region: None,
            resume: rp(),
            pending: 0,
            mc_mask: 0,
            closed: false,
        }
    }

    #[test]
    fn pb_fifo_alloc_send_complete() {
        let mut pb = PersistBuffer::new(2);
        assert!(pb.has_space() && pb.is_empty());
        let s0 = pb.push(DynRegionId(0), 64, 1, false);
        let s1 = pb.push(DynRegionId(0), 128, 2, true);
        assert!(!pb.has_space());
        assert_eq!(pb.occupancy(), 2);
        // send in order
        let e = pb.next_unsent().unwrap();
        assert_eq!(e.seq, s0);
        e.sent = true;
        assert_eq!(pb.next_unsent().unwrap().seq, s1);
        // completion frees head entries in order
        pb.complete(s0);
        assert_eq!(pb.occupancy(), 1);
        pb.complete(s1);
        assert!(pb.is_empty());
    }

    #[test]
    #[should_panic(expected = "PB overflow")]
    fn pb_overflow_panics() {
        let mut pb = PersistBuffer::new(1);
        pb.push(DynRegionId(0), 0, 0, false);
        pb.push(DynRegionId(0), 8, 0, false);
    }

    #[test]
    fn pb_cam_matches_by_line() {
        let mut pb = PersistBuffer::new(4);
        pb.push(DynRegionId(0), 0x1008, 1, false);
        assert!(pb.matches_line(0x1000));
        assert!(!pb.matches_line(0x1040));
    }

    #[test]
    fn rbt_lifecycle_and_retirement() {
        let mut rbt = RegionBoundaryTable::new(2);
        rbt.open(entry(0));
        rbt.on_store(0);
        rbt.on_store(1);
        assert_eq!(rbt.head().unwrap().pending, 2);
        assert_eq!(rbt.head().unwrap().mc_mask, 0b11);
        assert!(rbt.try_retire().is_none(), "not closed yet");
        rbt.close_tail();
        assert!(rbt.try_retire().is_none(), "stores pending");
        rbt.on_ack(DynRegionId(0));
        rbt.on_ack(DynRegionId(0));
        let retired = rbt.try_retire().unwrap();
        assert_eq!(retired.dyn_id, DynRegionId(0));
        assert!(rbt.is_empty());
    }

    #[test]
    fn rbt_speculation_semantics() {
        let mut rbt = RegionBoundaryTable::new(4);
        rbt.open(entry(0));
        assert!(!rbt.tail_is_speculative(), "head region is non-speculative");
        rbt.close_tail();
        rbt.open(entry(1));
        assert!(rbt.tail_is_speculative());
        assert!(!rbt.drained());
        assert_eq!(rbt.occupancy(), 2);
    }

    #[test]
    fn rbt_drained_conditions() {
        let mut rbt = RegionBoundaryTable::new(4);
        assert!(rbt.drained(), "empty table is drained");
        rbt.open(entry(0));
        assert!(rbt.drained(), "single region with no pending stores");
        rbt.on_store(0);
        assert!(!rbt.drained());
        rbt.on_ack(DynRegionId(0));
        assert!(rbt.drained());
    }

    #[test]
    fn path_latency_and_bandwidth() {
        // 2 bytes/cycle, 8-byte entries → one send per 4 cycles.
        let mut p = PersistPath::new(10, 2.0, 8);
        assert!(
            !p.try_send(0, 0, 0, DynRegionId(0), 0, 0, false, 0, 0),
            "no tokens yet"
        );
        for _ in 0..4 {
            p.tick();
        }
        assert!(p.try_send(4, 0, 0, DynRegionId(0), 0, 0, false, 0, 0));
        assert!(
            !p.try_send(4, 0, 1, DynRegionId(0), 8, 0, false, 0, 0),
            "tokens spent"
        );
        assert!(p.peek_arrival(13).is_none(), "latency 10 not yet elapsed");
        assert!(p.peek_arrival(14).is_some());
        let e = p.pop_arrival().unwrap();
        assert_eq!(e.arrives_at, 14);
        assert!(p.is_empty());
    }

    #[test]
    fn path_numa_skew_delays_arrival() {
        let mut p = PersistPath::new(10, 8.0, 8);
        p.tick();
        assert!(p.try_send(0, 0, 0, DynRegionId(0), 0, 0, false, 1, 12));
        assert_eq!(p.pop_arrival().unwrap().arrives_at, 22);
    }

    #[test]
    fn path_64b_granularity_consumes_8x_tokens() {
        let mut p = PersistPath::new(1, 2.0, 64);
        for _ in 0..31 {
            p.tick();
        }
        assert!(!p.try_send(0, 0, 0, DynRegionId(0), 0, 0, false, 0, 0));
        p.tick();
        assert!(p.try_send(0, 0, 0, DynRegionId(0), 0, 0, false, 0, 0));
    }
}
