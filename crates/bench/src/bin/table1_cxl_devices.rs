//! Table I: the CXL memory devices modelled for §IX-C.

use cwsp_sim::config::CXL_DEVICES;

fn main() {
    cwsp_bench::harness_main("table1_cxl_devices", run);
}

fn run() {
    println!("=== Table I: CXL memory devices ===");
    println!(
        "{:<16} {:<11} {:<12} {:>14} {:>18}",
        "Device", "CXL IP", "Technology", "Max BW (GB/s)", "Latency (r/w ns)"
    );
    for d in CXL_DEVICES {
        println!(
            "{:<16} {:<11} {:<12} {:>14.1} {:>11.0}/{:.0}",
            d.name, d.ip, d.technology, d.max_bandwidth_gbps, d.read_ns, d.write_ns
        );
    }
}
