//! The flight recorder: a crash-survivable binary journal of persist-path
//! events.
//!
//! Every event on a store's road to durability — issue into the persist
//! buffer, dirty-line eviction, WPQ enqueue, NVM media commit, region
//! open/close, checkpoint, sync commit — is appended as a fixed 32-byte
//! record with a cycle timestamp and (function, region, core) attribution.
//! Records buffer in one 4 KiB page and flush through `cwsp_store::spill`,
//! so an injected crash (or a `SIGKILL` mid-run, with `CWSP_FLIGHT_DIR`
//! set) leaves every flushed page readable by the forensics layer.
//!
//! Gating follows the `NullSink` discipline: the recorder lives behind an
//! `Option` in the machine, so recorder-off paths cost exactly one branch
//! per hook site (enforced by the stats-invariance tests in
//! `tests/flight_forensics.rs`).
//!
//! Record encoding (4 little-endian u64 words):
//!
//! ```text
//! w0: kind[0..8] | core[8..16] | mc[16..24] | logged[24] | (func+1)[32..64]
//! w1: cycle        w2: addr        w3: dynamic region id (MAX = none)
//! ```
//!
//! A journal starts with a `Header` record (`w1` = magic `"CWSPFLT1"`,
//! `w2` = format version); partial tail pages are padded with `Pad`
//! records (all-zero words), which readers skip.

use cwsp_store::spill::{SpillStore, PAGE_BYTES, PAGE_WORDS};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Journal magic: ASCII `"CWSPFLT1"` as a big-endian word.
pub const FLIGHT_MAGIC: u64 = 0x4357_5350_464C_5431;
/// Journal format version.
pub const FLIGHT_VERSION: u64 = 1;
/// Words per record.
pub const RECORD_WORDS: usize = 4;
/// Bytes per record.
pub const RECORD_BYTES: usize = RECORD_WORDS * 8;
/// Records per flushed page.
pub const RECORDS_PER_PAGE: usize = PAGE_WORDS / RECORD_WORDS;
/// Default journal budget: 64 Ki pages = 256 MiB ≈ 8.4 M records. Past the
/// budget, records are counted as dropped instead of appended — a flight
/// recorder must never fill the disk of a long-running fleet.
pub const DEFAULT_CAP_PAGES: usize = 1 << 16;

/// Region field value meaning "no region attribution".
pub const REGION_NONE: u64 = u64::MAX;

/// What happened, on a store's road to durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// Zero padding in a partially filled tail page (skipped by readers).
    Pad = 0,
    /// First record of every journal; carries magic + version.
    Header = 1,
    /// A store entered the per-core persist buffer.
    StoreIssue = 2,
    /// A dirty cacheline was evicted into the write buffer.
    LineEvict = 3,
    /// A store was accepted into a memory controller's WPQ (the ADR
    /// domain: persistent from this point on).
    WpqEnqueue = 4,
    /// A WPQ slot drained to NVM media.
    NvmCommit = 5,
    /// A persist region opened.
    RegionOpen = 6,
    /// A persist region retired.
    RegionClose = 7,
    /// A checkpoint store was executed.
    Checkpoint = 8,
    /// An atomic/fence committed after draining (resume point advanced
    /// past it, so recovery will not replay it).
    SyncCommit = 9,
    /// The simulated power failure.
    PowerFail = 10,
}

impl FlightKind {
    /// Decode a kind byte; unknown values read as `None` so newer journals
    /// degrade gracefully under older readers.
    pub fn from_u8(b: u8) -> Option<FlightKind> {
        Some(match b {
            0 => FlightKind::Pad,
            1 => FlightKind::Header,
            2 => FlightKind::StoreIssue,
            3 => FlightKind::LineEvict,
            4 => FlightKind::WpqEnqueue,
            5 => FlightKind::NvmCommit,
            6 => FlightKind::RegionOpen,
            7 => FlightKind::RegionClose,
            8 => FlightKind::Checkpoint,
            9 => FlightKind::SyncCommit,
            10 => FlightKind::PowerFail,
            _ => return None,
        })
    }

    /// Short stable name for text/JSON rendering.
    pub fn as_str(&self) -> &'static str {
        match self {
            FlightKind::Pad => "pad",
            FlightKind::Header => "header",
            FlightKind::StoreIssue => "store_issue",
            FlightKind::LineEvict => "line_evict",
            FlightKind::WpqEnqueue => "wpq_enqueue",
            FlightKind::NvmCommit => "nvm_commit",
            FlightKind::RegionOpen => "region_open",
            FlightKind::RegionClose => "region_close",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::SyncCommit => "sync_commit",
            FlightKind::PowerFail => "power_fail",
        }
    }
}

/// One decoded journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Event kind.
    pub kind: FlightKind,
    /// Issuing core (0 for machine-wide events).
    pub core: u8,
    /// Memory controller (WPQ/commit events; 0 otherwise).
    pub mc: u8,
    /// Whether the store was undo-logged at WPQ accept (speculative).
    pub logged: bool,
    /// Static function index attribution, when known.
    pub func: Option<u32>,
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Store/line address (event-dependent).
    pub addr: u64,
    /// Dynamic region id, or [`REGION_NONE`].
    pub region: u64,
}

impl FlightRecord {
    /// A record with everything defaulted except the kind and cycle.
    pub fn new(kind: FlightKind, cycle: u64) -> FlightRecord {
        FlightRecord {
            kind,
            core: 0,
            mc: 0,
            logged: false,
            func: None,
            cycle,
            addr: 0,
            region: REGION_NONE,
        }
    }

    fn encode(&self) -> [u64; RECORD_WORDS] {
        let mut w0 = self.kind as u64;
        w0 |= (self.core as u64) << 8;
        w0 |= (self.mc as u64) << 16;
        if self.logged {
            w0 |= 1 << 24;
        }
        if let Some(f) = self.func {
            w0 |= ((f as u64) + 1) << 32;
        }
        [w0, self.cycle, self.addr, self.region]
    }

    fn decode(w: [u64; RECORD_WORDS]) -> Option<FlightRecord> {
        let kind = FlightKind::from_u8((w[0] & 0xFF) as u8)?;
        let func_plus1 = (w[0] >> 32) as u32;
        Some(FlightRecord {
            kind,
            core: ((w[0] >> 8) & 0xFF) as u8,
            mc: ((w[0] >> 16) & 0xFF) as u8,
            logged: (w[0] >> 24) & 1 == 1,
            func: func_plus1.checked_sub(1),
            cycle: w[1],
            addr: w[2],
            region: w[3],
        })
    }
}

// Process-wide flight telemetry, mirroring `cwsp_store::tier`: recorders
// report here so the harness can publish `flight.*` fields without holding
// a recorder handle.
static JOURNALS: AtomicU64 = AtomicU64::new(0);
static RECORDS: AtomicU64 = AtomicU64::new(0);
static PAGES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Immutable snapshot of process-wide flight telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// Whether `CWSP_FLIGHT` enables the recorder for new machines.
    pub enabled: bool,
    /// Journals opened.
    pub journals: u64,
    /// Records appended (excluding header/padding).
    pub records: u64,
    /// Pages flushed through the spill store.
    pub pages: u64,
    /// Bytes flushed.
    pub bytes: u64,
    /// Records dropped after the page budget was exhausted.
    pub dropped: u64,
}

/// Snapshot the process-wide flight telemetry.
pub fn snapshot() -> FlightSnapshot {
    FlightSnapshot {
        enabled: enabled_by_env(),
        journals: JOURNALS.load(Ordering::Relaxed),
        records: RECORDS.load(Ordering::Relaxed),
        pages: PAGES.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
    }
}

/// Publish the flight telemetry into a metrics registry under `flight.*`.
pub fn publish(reg: &mut crate::Registry) {
    let s = snapshot();
    reg.set_gauge("flight.enabled", if s.enabled { 1.0 } else { 0.0 });
    reg.add_counter("flight.journals", s.journals);
    reg.add_counter("flight.records", s.records);
    reg.add_counter("flight.pages", s.pages);
    reg.add_counter("flight.bytes", s.bytes);
    reg.add_counter("flight.dropped", s.dropped);
}

/// Whether `CWSP_FLIGHT` asks for the recorder (`1`/`on`/`true`/`yes`).
pub fn enabled_by_env() -> bool {
    matches!(
        std::env::var("CWSP_FLIGHT").as_deref(),
        Ok("1") | Ok("on") | Ok("true") | Ok("yes")
    )
}

/// The journal directory requested by `CWSP_FLIGHT_DIR`, if any. When set,
/// journals are named files that survive the process being killed; when
/// unset, they ride the unlinked spill-file discipline (readable in-process
/// after a simulated crash, gone at process exit).
pub fn journal_dir() -> Option<PathBuf> {
    match std::env::var("CWSP_FLIGHT_DIR") {
        Ok(d) if !d.is_empty() => Some(PathBuf::from(d)),
        _ => None,
    }
}

/// The flight recorder: buffers records in one page and flushes full pages
/// through the spill store.
pub struct FlightRecorder {
    store: Arc<SpillStore>,
    path: Option<PathBuf>,
    page: Box<[u64; PAGE_WORDS]>,
    /// Next free word index in `page`.
    fill: usize,
    /// Flushed page offsets, in append order.
    flushed: Vec<u64>,
    records: u64,
    dropped: u64,
    cap_pages: usize,
}

impl FlightRecorder {
    /// Open a recorder honoring `CWSP_FLIGHT_DIR` for the backing file.
    ///
    /// # Errors
    /// Propagates journal-file creation failures.
    pub fn create() -> std::io::Result<FlightRecorder> {
        FlightRecorder::build(journal_dir().as_deref())
    }

    /// Open a recorder with a named journal file under `dir` (survives the
    /// process being killed), regardless of the environment.
    ///
    /// # Errors
    /// Propagates journal-file creation failures.
    pub fn create_in(dir: &Path) -> std::io::Result<FlightRecorder> {
        FlightRecorder::build(Some(dir))
    }

    fn build(dir: Option<&Path>) -> std::io::Result<FlightRecorder> {
        let (store, path) = match dir {
            Some(dir) => {
                let (s, p) = SpillStore::create_named(dir, "cwsp-flight")?;
                (s, Some(p))
            }
            None => (SpillStore::create()?, None),
        };
        let mut rec = FlightRecorder {
            store,
            path,
            page: Box::new([0u64; PAGE_WORDS]),
            fill: 0,
            flushed: Vec::new(),
            records: 0,
            dropped: 0,
            cap_pages: DEFAULT_CAP_PAGES,
        };
        JOURNALS.fetch_add(1, Ordering::Relaxed);
        let mut hdr = FlightRecord::new(FlightKind::Header, 0);
        hdr.addr = FLIGHT_VERSION;
        hdr.region = 0;
        let mut w = hdr.encode();
        w[1] = FLIGHT_MAGIC;
        rec.push_words(w);
        Ok(rec)
    }

    /// A recorder only if `CWSP_FLIGHT` asks for one (and the journal file
    /// could be created) — the zero-cost-off gate.
    pub fn from_env() -> Option<FlightRecorder> {
        if enabled_by_env() {
            FlightRecorder::create().ok()
        } else {
            None
        }
    }

    /// Shrink the page budget (tests exercise the drop path cheaply).
    pub fn set_cap_pages(&mut self, cap: usize) {
        self.cap_pages = cap.max(1);
    }

    /// The journal file path, when `CWSP_FLIGHT_DIR` pinned one.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Records appended so far (excluding header and padding).
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether no event records have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Records dropped after the page budget filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pages flushed to the spill store so far.
    pub fn pages_flushed(&self) -> u64 {
        self.flushed.len() as u64
    }

    fn push_words(&mut self, w: [u64; RECORD_WORDS]) {
        self.page[self.fill..self.fill + RECORD_WORDS].copy_from_slice(&w);
        self.fill += RECORD_WORDS;
        if self.fill == PAGE_WORDS {
            self.flush_page();
        }
    }

    fn flush_page(&mut self) {
        let off = self.store.append_page(&self.page);
        self.flushed.push(off);
        self.page.fill(0);
        self.fill = 0;
        PAGES.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(PAGE_BYTES as u64, Ordering::Relaxed);
    }

    /// Append one event record. Past the page budget the record is counted
    /// as dropped instead (monotonic `dropped()`), so a runaway workload
    /// degrades to lost telemetry, not unbounded disk.
    pub fn record(&mut self, rec: FlightRecord) {
        if self.flushed.len() >= self.cap_pages {
            self.dropped += 1;
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.records += 1;
        RECORDS.fetch_add(1, Ordering::Relaxed);
        self.push_words(rec.encode());
    }

    /// Flush the partially filled tail page (zero-padded). Called at power
    /// failure and at normal run end; safe to call repeatedly.
    pub fn seal(&mut self) {
        if self.fill > 0 {
            self.flush_page();
        }
    }

    /// Decode every record written so far, reading flushed pages back
    /// through the spill store (the same bytes a post-crash reader sees)
    /// plus the not-yet-flushed tail.
    pub fn records(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.records as usize);
        let mut page = [0u64; PAGE_WORDS];
        for &off in &self.flushed {
            self.store.read_page(off, &mut page);
            decode_page(&page, PAGE_WORDS, &mut out);
        }
        decode_page(&self.page, self.fill, &mut out);
        out
    }
}

fn decode_page(page: &[u64; PAGE_WORDS], fill: usize, out: &mut Vec<FlightRecord>) {
    for chunk in page[..fill].chunks_exact(RECORD_WORDS) {
        let w = [chunk[0], chunk[1], chunk[2], chunk[3]];
        match FlightRecord::decode(w) {
            Some(r) if r.kind == FlightKind::Pad || r.kind == FlightKind::Header => {}
            Some(r) => out.push(r),
            None => {}
        }
    }
}

/// Read a journal file left on disk (e.g. by a killed process). Validates
/// the header magic, tolerates a torn tail page (records past the last
/// complete 32-byte boundary are ignored), and skips padding.
///
/// # Errors
/// I/O failures, or `InvalidData` if the header magic does not match.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<FlightRecord>> {
    let store = SpillStore::open_readonly(path)?;
    let bytes = store.bytes();
    if bytes < RECORD_BYTES as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "journal shorter than one record",
        ));
    }
    let magic = store.read_word(0, 1);
    if magic != FLIGHT_MAGIC
        || FlightKind::from_u8((store.read_word(0, 0) & 0xFF) as u8) != Some(FlightKind::Header)
    {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad flight journal magic",
        ));
    }
    let n_records = (bytes as usize) / RECORD_BYTES;
    let mut out = Vec::new();
    for i in 1..n_records {
        let off = (i * RECORD_BYTES) as u64;
        let w = [
            store.read_word(off, 0),
            store.read_word(off, 1),
            store.read_word(off, 2),
            store.read_word(off, 3),
        ];
        match FlightRecord::decode(w) {
            Some(r) if r.kind == FlightKind::Pad => {}
            Some(r) => out.push(r),
            None => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: FlightKind, core: u8, cycle: u64, addr: u64, region: u64) -> FlightRecord {
        FlightRecord {
            kind,
            core,
            mc: 0,
            logged: false,
            func: Some(3),
            cycle,
            addr,
            region,
        }
    }

    #[test]
    fn record_encoding_round_trips() {
        let r = FlightRecord {
            kind: FlightKind::WpqEnqueue,
            core: 5,
            mc: 2,
            logged: true,
            func: Some(0),
            cycle: 123_456,
            addr: 0xDEAD_BEE8,
            region: 42,
        };
        assert_eq!(FlightRecord::decode(r.encode()), Some(r));
        let none = FlightRecord::new(FlightKind::PowerFail, 9);
        assert_eq!(FlightRecord::decode(none.encode()), Some(none));
    }

    #[test]
    fn journal_round_trips_through_spill_pages() {
        let mut fr = FlightRecorder::create().unwrap();
        // Cross several page boundaries (127 event records fit in the first
        // page after the header).
        let n = 3 * RECORDS_PER_PAGE + 17;
        for i in 0..n {
            fr.record(rec(FlightKind::StoreIssue, 1, i as u64, 8 * i as u64, 7));
        }
        assert!(fr.pages_flushed() >= 3);
        let back = fr.records();
        assert_eq!(back.len(), n);
        for (i, r) in back.iter().enumerate() {
            assert_eq!(r.cycle, i as u64);
            assert_eq!(r.addr, 8 * i as u64);
            assert_eq!(r.func, Some(3));
        }
        // Sealing pads the tail; decode is unchanged.
        fr.seal();
        assert_eq!(fr.records().len(), n);
    }

    #[test]
    fn page_budget_drops_instead_of_growing() {
        let mut fr = FlightRecorder::create().unwrap();
        fr.set_cap_pages(1);
        for i in 0..3 * RECORDS_PER_PAGE {
            fr.record(rec(FlightKind::LineEvict, 0, i as u64, 0, REGION_NONE));
        }
        assert_eq!(fr.pages_flushed(), 1);
        assert!(fr.dropped() > 0);
        assert_eq!(fr.len() + fr.dropped(), 3 * RECORDS_PER_PAGE as u64);
    }

    #[test]
    fn named_journal_is_readable_after_drop() {
        let dir = std::env::temp_dir().join(format!("cwsp-flight-test-{}", std::process::id()));
        let mut fr = FlightRecorder::create_in(&dir).unwrap();
        let path = fr.path().expect("named journal").to_path_buf();
        for i in 0..RECORDS_PER_PAGE + 5 {
            fr.record(rec(FlightKind::NvmCommit, 2, i as u64, 64 * i as u64, 1));
        }
        fr.seal();
        drop(fr);
        let back = read_journal(&path).unwrap();
        assert_eq!(back.len(), RECORDS_PER_PAGE + 5);
        assert_eq!(back[5].addr, 64 * 5);
        assert_eq!(back[5].kind, FlightKind::NvmCommit);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn read_journal_rejects_garbage() {
        let dir = std::env::temp_dir();
        let p = dir.join(format!("cwsp-flight-garbage-{}", std::process::id()));
        std::fs::write(&p, vec![0xA5u8; 96]).unwrap();
        assert!(read_journal(&p).is_err());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn telemetry_counters_accumulate() {
        let before = snapshot();
        let mut fr = FlightRecorder::create().unwrap();
        for i in 0..RECORDS_PER_PAGE + 1 {
            fr.record(rec(FlightKind::StoreIssue, 0, i as u64, 0, 0));
        }
        let after = snapshot();
        assert!(after.journals > before.journals);
        assert!(after.records >= before.records + RECORDS_PER_PAGE as u64);
        assert!(after.pages > before.pages);
        let mut reg = crate::Registry::new();
        publish(&mut reg);
        assert!(reg.counter_value("flight.records") >= after.records);
    }
}
