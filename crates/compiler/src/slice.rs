//! Recovery slices (§IV-C, §VII).
//!
//! A region's recovery slice (RS) restores the region's live-in registers
//! before re-execution. Each live-in comes from one of two sources: its NVM
//! checkpoint slot, or a compile-time rematerialized constant (the pruner's
//! constant folding; DESIGN.md §3.2).

use cwsp_ir::interp::Interp;
use cwsp_ir::layout;
use cwsp_ir::types::{Reg, RegionId, Word};
use std::collections::HashMap;

/// How one live-in register is restored at recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsSource {
    /// Load the register's NVM checkpoint slot
    /// ([`layout::ckpt_slot_addr`]).
    Slot,
    /// Rematerialize a compile-time constant (checkpoint pruned).
    Const(Word),
    /// Rematerialize by re-applying operations over immediates and *other*
    /// registers' checkpoint slots — the general Penny case (§IV-C, Fig 4's
    /// `r3 = shl(slot_r3_of_Rg0, 1)`).
    Expr(RematExpr),
}

/// A rematerialization expression evaluated by the recovery slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RematExpr {
    /// An immediate.
    Const(Word),
    /// Another register's checkpoint slot (that checkpoint is kept).
    Slot(Reg),
    /// Re-apply a binary operation.
    Bin(cwsp_ir::inst::BinOp, Box<RematExpr>, Box<RematExpr>),
}

impl RematExpr {
    /// Evaluate against a memory image for `core`.
    pub fn eval(&self, mem: &cwsp_ir::memory::Memory, core: usize) -> Word {
        match self {
            RematExpr::Const(c) => *c,
            RematExpr::Slot(r) => mem.load(layout::ckpt_slot_addr(core, *r)),
            RematExpr::Bin(op, l, r) => op.eval(l.eval(mem, core), r.eval(mem, core)),
        }
    }

    /// Number of nodes (used to cap slice size).
    pub fn size(&self) -> usize {
        match self {
            RematExpr::Const(_) | RematExpr::Slot(_) => 1,
            RematExpr::Bin(_, l, r) => 1 + l.size() + r.size(),
        }
    }

    /// The slot leaves this expression reads.
    pub fn slot_leaves(&self, out: &mut Vec<Reg>) {
        match self {
            RematExpr::Const(_) => {}
            RematExpr::Slot(r) => out.push(*r),
            RematExpr::Bin(_, l, r) => {
                l.slot_leaves(out);
                r.slot_leaves(out);
            }
        }
    }
}

/// The recovery slice of one static region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverySlice {
    /// `(register, source)` for every live-in of the region.
    pub restores: Vec<(Reg, RsSource)>,
}

impl RecoverySlice {
    /// Number of live-ins restored from NVM slots (a recovery-cost metric).
    pub fn slot_loads(&self) -> usize {
        self.restores
            .iter()
            .filter(|(_, s)| matches!(s, RsSource::Slot))
            .count()
    }

    /// Apply the slice to a resumed interpreter on `core`: the runtime's
    /// "jumps to the region's recovery slice where its live-in registers are
    /// restored" step (§VII).
    pub fn apply(&self, interp: &mut Interp<'_>, mem: &cwsp_ir::memory::Memory, core: usize) {
        for (r, src) in &self.restores {
            let v = match src {
                RsSource::Slot => mem.load(layout::ckpt_slot_addr(core, *r)),
                RsSource::Const(c) => *c,
                RsSource::Expr(e) => e.eval(mem, core),
            };
            interp.set_reg(*r, v);
        }
    }
}

/// Recovery slices for every static region of a compiled module.
#[derive(Debug, Clone, Default)]
pub struct SliceTable {
    slices: HashMap<RegionId, RecoverySlice>,
}

impl SliceTable {
    /// Empty table.
    pub fn new() -> Self {
        SliceTable::default()
    }

    /// Install the slice for `region`.
    pub fn insert(&mut self, region: RegionId, slice: RecoverySlice) {
        self.slices.insert(region, slice);
    }

    /// The slice for `region`, if any (regions with no live-ins may be
    /// absent; treat as empty).
    pub fn get(&self, region: RegionId) -> Option<&RecoverySlice> {
        self.slices.get(&region)
    }

    /// Number of regions with slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Iterate `(region, slice)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&RegionId, &RecoverySlice)> {
        self.slices.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_ir::builder::FunctionBuilder;
    use cwsp_ir::inst::{Inst, Operand};
    use cwsp_ir::module::Module;

    #[test]
    fn apply_restores_from_slot_and_const() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", 0);
        let e = b.entry();
        let r0 = b.vreg();
        let r1 = b.vreg();
        assert_eq!((r0, r1), (Reg(0), Reg(1)));
        b.push(
            e,
            Inst::Mov {
                dst: r0,
                src: Operand::imm(0),
            },
        );
        b.push(
            e,
            Inst::Mov {
                dst: r1,
                src: Operand::imm(0),
            },
        );
        b.push(e, Inst::Halt);
        let f = m.add_function(b.build());
        m.set_entry(f);
        let mut mem = cwsp_ir::memory::Memory::new();
        let mut interp = Interp::new(&m, 3, &mut mem).unwrap();
        // Pretend a checkpoint persisted 99 in r0's slot on core 3.
        mem.store(layout::ckpt_slot_addr(3, Reg(0)), 99);
        let slice = RecoverySlice {
            restores: vec![(Reg(0), RsSource::Slot), (Reg(1), RsSource::Const(7))],
        };
        assert_eq!(slice.slot_loads(), 1);
        slice.apply(&mut interp, &mem, 3);
        assert_eq!(interp.reg(Reg(0)), 99);
        assert_eq!(interp.reg(Reg(1)), 7);
    }

    #[test]
    fn table_roundtrip() {
        let mut t = SliceTable::new();
        assert!(t.is_empty());
        t.insert(
            RegionId(4),
            RecoverySlice {
                restores: vec![(Reg(2), RsSource::Slot)],
            },
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(RegionId(4)).unwrap().restores.len(), 1);
        assert!(t.get(RegionId(5)).is_none());
        assert_eq!(t.iter().count(), 1);
    }
}
