//! The parallel, memoizing experiment engine.
//!
//! Every figure binary used to re-run the same (workload, options, config,
//! scheme) simulations serially: each figure recompiled every workload and
//! re-measured every baseline from scratch. This module centralizes that
//! work:
//!
//! * **Work-stealing pool** — [`par_map`] fans jobs out over
//!   `std::thread::scope` workers (count from `CWSP_JOBS`, default the
//!   machine's available parallelism) while preserving input order in the
//!   returned results, so figure output stays byte-identical to the serial
//!   harness.
//! * **In-process memo** — simulation results are memoized by content
//!   fingerprint (module text + machine config + scheme; see
//!   [`crate::fingerprint`]), sharded to keep lock contention off the hot
//!   path. Baselines and compiled modules are computed once per process no
//!   matter how many figures ask for them.
//! * **On-disk cache** — results persist as JSON under `results/cache/`
//!   (override with `CWSP_CACHE_DIR`, disable with `CWSP_CACHE=0`), so
//!   re-running a figure binary is nearly free once warm. Keys include
//!   [`crate::fingerprint::CACHE_VERSION`]; bump it when simulator semantics
//!   change.
//! * **Harness report** — [`harness_main`] wraps a figure binary's body,
//!   timing it and merging a per-figure entry (wall-clock, jobs, hit rate)
//!   into `results/BENCH_harness.json`.

use crate::fingerprint::{machine_fp, module_fp, options_fp};
use crate::json::{self, Value};
use cwsp_compiler::pipeline::{CompileOptions, Compiled, CwspCompiler};
use cwsp_ir::module::Module;
use cwsp_sim::config::SimConfig;
use cwsp_sim::scheme::Scheme;
use cwsp_sim::stats::SimStats;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

const SHARDS: usize = 16;

type StatsSlot = Arc<OnceLock<SimStats>>;
type CompileSlot = Arc<OnceLock<Arc<Compiled>>>;

/// Monotonic counters describing engine traffic (see [`Engine::counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Simulation results requested.
    pub jobs: u64,
    /// Requests served from the in-process memo.
    pub memo_hits: u64,
    /// Requests served from the on-disk cache.
    pub disk_hits: u64,
    /// Dynamic instructions actually simulated (cache hits contribute 0).
    pub sim_insts: u64,
    /// Per-opcode dynamic instruction mix over the simulated instructions,
    /// indexed like [`cwsp_ir::decoded::OPCODE_NAMES`].
    pub sim_op_mix: [u64; cwsp_ir::decoded::OPCODE_COUNT],
}

impl Counters {
    /// Fraction of requests that did not run a simulation.
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            (self.memo_hits + self.disk_hits) as f64 / self.jobs as f64
        }
    }
}

/// The memoizing engine; one global instance serves all figure binaries
/// (see [`engine`]), and tests can build private instances.
pub struct Engine {
    stats_memo: Vec<Mutex<HashMap<(u64, u64), StatsSlot>>>,
    compile_memo: Vec<Mutex<HashMap<(u64, u64), CompileSlot>>>,
    disk: Option<PathBuf>,
    jobs: AtomicU64,
    memo_hits: AtomicU64,
    disk_hits: AtomicU64,
    sim_insts: AtomicU64,
    sim_op_mix: [AtomicU64; cwsp_ir::decoded::OPCODE_COUNT],
    // Wall-clock ns of every stats() request, in completion order — memo
    // hits included, since the figure binaries' "queue latency" is request
    // to result regardless of which path served it.
    job_latencies_ns: Mutex<Vec<u64>>,
}

impl Engine {
    /// An engine with an explicit disk-cache directory (`None` = memory only).
    pub fn new(disk: Option<PathBuf>) -> Self {
        Engine {
            stats_memo: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            compile_memo: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            disk,
            jobs: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            sim_insts: AtomicU64::new(0),
            sim_op_mix: std::array::from_fn(|_| AtomicU64::new(0)),
            job_latencies_ns: Mutex::new(Vec::new()),
        }
    }

    /// Number of per-job latency samples recorded so far (a cursor for
    /// [`Engine::job_latencies_since`]).
    pub fn job_latency_count(&self) -> usize {
        self.job_latencies_ns.lock().unwrap().len()
    }

    /// Latency samples (ns) recorded after cursor `start`.
    pub fn job_latencies_since(&self, start: usize) -> Vec<u64> {
        let all = self.job_latencies_ns.lock().unwrap();
        all.get(start..).unwrap_or(&[]).to_vec()
    }

    /// Snapshot the traffic counters.
    pub fn counters(&self) -> Counters {
        Counters {
            jobs: self.jobs.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            sim_insts: self.sim_insts.load(Ordering::Relaxed),
            sim_op_mix: std::array::from_fn(|i| self.sim_op_mix[i].load(Ordering::Relaxed)),
        }
    }

    /// Compile `module` under `opts`, memoized by content.
    pub fn compiled(&self, module: &Module, opts: CompileOptions) -> Arc<Compiled> {
        let key = (module_fp(module), options_fp(opts));
        let slot = {
            let mut shard = self.compile_memo[key.0 as usize % SHARDS].lock().unwrap();
            shard.entry(key).or_default().clone()
        };
        slot.get_or_init(|| Arc::new(CwspCompiler::new(opts).compile(module)))
            .clone()
    }

    /// Run `module` on the `cfg`/`scheme` machine, memoized by content and
    /// backed by the disk cache. `name` labels cache files and panics only.
    ///
    /// # Panics
    /// Panics if the simulation traps (same contract as the serial harness).
    pub fn stats(&self, name: &str, module: &Module, cfg: &SimConfig, scheme: Scheme) -> SimStats {
        let t_req = Instant::now();
        let key = (module_fp(module), machine_fp(cfg, scheme));
        self.jobs.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut shard = self.stats_memo[key.0 as usize % SHARDS].lock().unwrap();
            shard.entry(key).or_default().clone()
        };
        if let Some(s) = slot.get() {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            self.record_latency(t_req);
            return s.clone();
        }
        // Which path satisfied this request: our closure simulated, our
        // closure loaded from disk, or another thread got there first (the
        // closure never ran and `get_or_init` just waited).
        enum Outcome {
            Waited,
            Disk,
            Ran,
        }
        let mut outcome = Outcome::Waited;
        let s = slot.get_or_init(|| {
            if let Some(s) = self.disk_load(key) {
                outcome = Outcome::Disk;
                return s;
            }
            outcome = Outcome::Ran;
            let s = crate::run_to_completion(module, cfg, scheme)
                .unwrap_or_else(|e| panic!("{name} {}: {e}", scheme.name()));
            self.disk_store(key, name, &s);
            s
        });
        match outcome {
            Outcome::Waited => {
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Disk => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Ran => {
                self.sim_insts.fetch_add(s.insts, Ordering::Relaxed);
                for (slot, &c) in self.sim_op_mix.iter().zip(&s.op_mix) {
                    slot.fetch_add(c, Ordering::Relaxed);
                }
            }
        }
        self.record_latency(t_req);
        s.clone()
    }

    fn record_latency(&self, t_req: Instant) {
        let ns = t_req.elapsed().as_nanos() as u64;
        self.job_latencies_ns.lock().unwrap().push(ns);
    }

    /// Publish the engine's traffic counters into a metrics registry
    /// (`engine.*` namespace).
    pub fn publish(&self, r: &mut cwsp_obs::Registry) {
        let c = self.counters();
        let id = r.counter("engine.jobs");
        r.add(id, c.jobs);
        let id = r.counter("engine.memo_hits");
        r.add(id, c.memo_hits);
        let id = r.counter("engine.disk_hits");
        r.add(id, c.disk_hits);
        let id = r.counter("engine.sim_insts");
        r.add(id, c.sim_insts);
        let id = r.gauge("engine.hit_rate");
        r.set(id, c.hit_rate());
        let lats = self.job_latencies_since(0);
        let id = r.gauge("engine.queue_latency_us.p50");
        r.set(id, percentile_ns(&lats, 50.0) as f64 / 1000.0);
        let id = r.gauge("engine.queue_latency_us.p99");
        r.set(id, percentile_ns(&lats, 99.0) as f64 / 1000.0);
    }

    fn cache_path(&self, key: (u64, u64)) -> Option<PathBuf> {
        self.disk
            .as_ref()
            .map(|d| d.join(format!("{:016x}{:016x}.json", key.0, key.1)))
    }

    fn disk_load(&self, key: (u64, u64)) -> Option<SimStats> {
        let path = self.cache_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let v = json::parse(&text).ok()?;
        stats_from_json(v.get("stats")?)
    }

    fn disk_store(&self, key: (u64, u64), name: &str, s: &SimStats) {
        let Some(path) = self.cache_path(key) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str(name.to_string())),
            ("stats".into(), stats_to_json(s)),
        ]);
        // Write-then-rename so concurrent figure binaries never observe a
        // torn file.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, doc.to_pretty()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// The process-global engine (disk cache configured from the environment).
pub fn engine() -> &'static Engine {
    static GLOBAL: OnceLock<Engine> = OnceLock::new();
    GLOBAL.get_or_init(|| Engine::new(disk_dir_from_env()))
}

fn disk_dir_from_env() -> Option<PathBuf> {
    if matches!(
        std::env::var("CWSP_CACHE").as_deref(),
        Ok("0") | Ok("off") | Ok("false") | Ok("no")
    ) {
        return None;
    }
    Some(match std::env::var("CWSP_CACHE_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => repo_results_dir().join("cache"),
    })
}

/// `results/` resolved relative to the repository, not the current working
/// directory (tests run with per-crate cwd).
pub fn repo_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Resolved path of the harness report (`CWSP_HARNESS_JSON` overrides the
/// default `results/BENCH_harness.json`).
pub fn harness_json_path() -> PathBuf {
    match std::env::var("CWSP_HARNESS_JSON") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => repo_results_dir().join("BENCH_harness.json"),
    }
}

/// Merge `entry` into the harness report as a **top-level** section (a
/// sibling of `figures`) — for non-figure tools like `cwsp-lint`, whose
/// entries do not follow the per-figure schema.
pub fn merge_harness_section(section: &str, entry: Value) {
    merge_harness_section_at(&harness_json_path(), section, entry);
}

fn merge_harness_section_at(path: &Path, section: &str, entry: Value) {
    let mut doc = read_harness_doc(path);
    doc.set(section, entry);
    write_harness_doc(path, &doc);
}

fn read_harness_doc(path: &Path) -> Value {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|t| json::parse(&t).ok())
        .filter(|v| matches!(v, Value::Obj(_)))
        .unwrap_or_else(|| {
            Value::Obj(vec![
                ("version".into(), Value::Int(1)),
                ("figures".into(), Value::Obj(vec![])),
            ])
        })
}

fn write_harness_doc(path: &Path, doc: &Value) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Write-then-rename so concurrent tools never observe a torn file.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, doc.to_pretty()).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Worker count: `CWSP_JOBS` if set (≥ 1), else available parallelism.
pub fn worker_count() -> usize {
    match std::env::var("CWSP_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

// Pool utilization accounting: per-item busy ns vs. workers × wall ns of
// each par_map call, accumulated process-wide so harness_main can report a
// utilization delta per figure.
static POOL_BUSY_NS: AtomicU64 = AtomicU64::new(0);
static POOL_CAPACITY_NS: AtomicU64 = AtomicU64::new(0);
// Widest pool any par_map in this process actually spawned — the *achieved*
// worker count, as opposed to the configured one (`worker_count()` can be 8
// while every call had one item and ran serial).
static POOL_PEAK_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Widest worker pool actually used so far; 1 when nothing fanned out.
pub fn pool_peak_workers() -> usize {
    POOL_PEAK_WORKERS.load(Ordering::Relaxed).max(1)
}

/// Cumulative `(busy_ns, capacity_ns)` across all [`par_map`] calls so far.
pub fn pool_usage() -> (u64, u64) {
    (
        POOL_BUSY_NS.load(Ordering::Relaxed),
        POOL_CAPACITY_NS.load(Ordering::Relaxed),
    )
}

/// Apply `f` to every item on a scoped worker pool; results come back in
/// input order. Workers pull items off a shared atomic cursor, so long jobs
/// don't serialize behind short ones.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count().min(n.max(1));
    POOL_PEAK_WORKERS.fetch_max(workers, Ordering::Relaxed);
    let t_pool = Instant::now();
    if workers <= 1 {
        let out: Vec<R> = items.iter().map(&f).collect();
        let wall = t_pool.elapsed().as_nanos() as u64;
        POOL_BUSY_NS.fetch_add(wall, Ordering::Relaxed);
        POOL_CAPACITY_NS.fetch_add(wall, Ordering::Relaxed);
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t_item = Instant::now();
                        let r = f(&items[i]);
                        POOL_BUSY_NS
                            .fetch_add(t_item.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        local.push((i, r));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("engine worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    let wall = t_pool.elapsed().as_nanos() as u64;
    POOL_CAPACITY_NS.fetch_add(wall * workers as u64, Ordering::Relaxed);
    out.into_iter()
        .map(|r| r.expect("worker covered every index"))
        .collect()
}

/// `p`-th percentile (nearest-rank) of unsorted ns samples; 0 when empty.
pub fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Wrap a figure binary's body: run it, time it, and merge a per-figure
/// entry into `results/BENCH_harness.json`. With `CWSP_OBS` set (any value
/// but `0`/`off`), also dumps the full metrics registry as JSON to stderr —
/// or to the file `CWSP_OBS` names, when its value contains a path
/// separator.
pub fn harness_main(figure: &str, body: impl FnOnce()) {
    let e = engine();
    let before = e.counters();
    let lat_cursor = e.job_latency_count();
    let pool_before = pool_usage();
    let t0 = Instant::now();
    body();
    let wall = t0.elapsed();
    let after = e.counters();
    let delta = Counters {
        jobs: after.jobs - before.jobs,
        memo_hits: after.memo_hits - before.memo_hits,
        disk_hits: after.disk_hits - before.disk_hits,
        sim_insts: after.sim_insts - before.sim_insts,
        sim_op_mix: std::array::from_fn(|i| after.sim_op_mix[i] - before.sim_op_mix[i]),
    };
    let latencies = e.job_latencies_since(lat_cursor);
    let pool_after = pool_usage();
    let busy = pool_after.0 - pool_before.0;
    let capacity = pool_after.1 - pool_before.1;
    let utilization = if capacity > 0 {
        busy as f64 / capacity as f64
    } else {
        0.0
    };
    let entry = build_harness_entry(&delta, wall, &latencies, utilization);
    merge_harness_entry(&harness_json_path(), figure, entry);
    eprintln!(
        "[harness] {figure}: {:.2}s wall, {} jobs, {} memo + {} disk hits ({}% cached), {} workers",
        wall.as_secs_f64(),
        delta.jobs,
        delta.memo_hits,
        delta.disk_hits,
        (delta.hit_rate() * 100.0).round(),
        worker_count(),
    );
    dump_obs_registry(e);
}

/// When `CWSP_OBS` is on, publish the engine's metrics into a registry and
/// dump it (stderr, or the named file when the value looks like a path).
fn dump_obs_registry(e: &Engine) {
    let dest = match std::env::var("CWSP_OBS") {
        Ok(v) if !v.is_empty() && !matches!(v.as_str(), "0" | "off" | "false" | "no") => v,
        _ => return,
    };
    let mut reg = cwsp_obs::Registry::new();
    e.publish(&mut reg);
    let json = reg.to_json();
    if dest.contains('/') {
        if let Some(dir) = Path::new(&dest).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(err) = std::fs::write(&dest, &json) {
            eprintln!("[obs] failed to write {dest}: {err}");
        }
    } else {
        eprintln!("[obs] {json}");
    }
}

/// Build one figure's telemetry entry for `results/BENCH_harness.json`.
/// Kept separate from [`harness_main`] so the schema is unit-testable; the
/// shape is validated by [`validate_harness_entry`].
fn build_harness_entry(
    delta: &Counters,
    wall: std::time::Duration,
    latencies_ns: &[u64],
    utilization: f64,
) -> Value {
    let secs = wall.as_secs_f64();
    let steps_per_sec = if secs > 0.0 {
        delta.sim_insts as f64 / secs
    } else {
        0.0
    };
    let op_mix = Value::Obj(
        cwsp_ir::decoded::OPCODE_NAMES
            .iter()
            .zip(delta.sim_op_mix)
            .map(|(name, n)| ((*name).to_string(), Value::Int(n)))
            .collect(),
    );
    let lat_us = |p: f64| Value::Float((percentile_ns(latencies_ns, p) as f64 / 1000.0).round());
    let queue_latency = Value::Obj(vec![
        ("p50".into(), lat_us(50.0)),
        ("p90".into(), lat_us(90.0)),
        ("p99".into(), lat_us(99.0)),
    ]);
    Value::Obj(vec![
        ("wall_ms".into(), Value::Int(wall.as_millis() as u64)),
        ("jobs".into(), Value::Int(delta.jobs)),
        ("memo_hits".into(), Value::Int(delta.memo_hits)),
        ("disk_hits".into(), Value::Int(delta.disk_hits)),
        (
            "hit_rate".into(),
            Value::Float((delta.hit_rate() * 1e4).round() / 1e4),
        ),
        ("workers".into(), Value::Int(worker_count() as u64)),
        (
            "workers_achieved".into(),
            Value::Int(pool_peak_workers() as u64),
        ),
        ("sim_insts".into(), Value::Int(delta.sim_insts)),
        (
            "steps_per_sec".into(),
            Value::Float((steps_per_sec * 10.0).round() / 10.0),
        ),
        ("queue_latency_us".into(), queue_latency),
        (
            "worker_utilization".into(),
            Value::Float((utilization * 1e4).round() / 1e4),
        ),
        ("op_mix".into(), op_mix),
    ])
}

/// Validate one figure entry against the harness schema: every required
/// field present with the right JSON type. Returns the first problem found.
///
/// # Errors
/// A human-readable description of the missing or mistyped field.
pub fn validate_harness_entry(entry: &Value) -> Result<(), String> {
    let need_int = |k: &str| -> Result<(), String> {
        entry
            .get(k)
            .ok_or_else(|| format!("missing field `{k}`"))?
            .as_u64()
            .map(|_| ())
            .ok_or_else(|| format!("field `{k}` is not an integer"))
    };
    let need_num = |k: &str| -> Result<(), String> {
        match entry.get(k) {
            Some(Value::Float(_) | Value::Int(_)) => Ok(()),
            Some(_) => Err(format!("field `{k}` is not a number")),
            None => Err(format!("missing field `{k}`")),
        }
    };
    for k in [
        "wall_ms",
        "jobs",
        "memo_hits",
        "disk_hits",
        "workers",
        "sim_insts",
    ] {
        need_int(k)?;
    }
    for k in ["hit_rate", "steps_per_sec", "worker_utilization"] {
        need_num(k)?;
    }
    let q = entry
        .get("queue_latency_us")
        .ok_or("missing field `queue_latency_us`")?;
    for p in ["p50", "p90", "p99"] {
        match q.get(p) {
            Some(Value::Float(_) | Value::Int(_)) => {}
            Some(_) => return Err(format!("queue_latency_us.{p} is not a number")),
            None => return Err(format!("missing queue_latency_us.{p}")),
        }
    }
    let mix = entry.get("op_mix").ok_or("missing field `op_mix`")?;
    match mix {
        Value::Obj(fields) if fields.len() == cwsp_ir::decoded::OPCODE_COUNT => Ok(()),
        Value::Obj(fields) => Err(format!(
            "op_mix has {} opcodes, expected {}",
            fields.len(),
            cwsp_ir::decoded::OPCODE_COUNT
        )),
        _ => Err("op_mix is not an object".into()),
    }
}

fn merge_harness_entry(path: &Path, figure: &str, mut entry: Value) {
    let mut doc = read_harness_doc(path);
    if doc.get("figures").is_none() {
        doc.set("figures", Value::Obj(vec![]));
    }
    if let Value::Obj(fields) = &mut doc {
        if let Some((_, figures)) = fields.iter_mut().find(|(k, _)| k == "figures") {
            // Relative throughput change vs. the entry being replaced, so a
            // refresh records how much the run sped up or regressed. Only
            // meaningful when both runs simulated fresh instructions (a
            // fully-cached run reports ~0 steps/sec and says nothing).
            let prior = figures
                .get(figure)
                .and_then(|e| e.get("steps_per_sec"))
                .and_then(Value::as_f64);
            let fresh = entry.get("steps_per_sec").and_then(Value::as_f64);
            if let (Some(old), Some(new)) = (prior, fresh) {
                if old > 0.0 && new > 0.0 {
                    let delta = (new - old) / old;
                    entry.set(
                        "steps_per_sec_delta",
                        Value::Float((delta * 1e4).round() / 1e4),
                    );
                }
            }
            figures.set(figure, entry);
        }
    }
    write_harness_doc(path, &doc);
}

fn pair_to_json(p: (u64, u64)) -> Value {
    Value::Arr(vec![Value::Int(p.0), Value::Int(p.1)])
}

fn pair_from_json(v: &Value) -> Option<(u64, u64)> {
    let a = v.as_arr()?;
    Some((a.first()?.as_u64()?, a.get(1)?.as_u64()?))
}

/// Serialize stats for the disk cache (every field; see `stats_from_json`).
fn stats_to_json(s: &SimStats) -> Value {
    Value::Obj(vec![
        ("cycles".into(), Value::Int(s.cycles)),
        ("insts".into(), Value::Int(s.insts)),
        ("loads".into(), Value::Int(s.loads)),
        ("stores".into(), Value::Int(s.stores)),
        ("ckpt_stores".into(), Value::Int(s.ckpt_stores)),
        ("frame_stores".into(), Value::Int(s.frame_stores)),
        ("syncs".into(), Value::Int(s.syncs)),
        ("regions".into(), Value::Int(s.regions)),
        ("region_insts".into(), Value::Int(s.region_insts)),
        ("wpq_hits".into(), Value::Int(s.wpq_hits)),
        ("wb_delays".into(), Value::Int(s.wb_delays)),
        ("wb_occupancy_sum".into(), Value::Int(s.wb_occupancy_sum)),
        ("pb_occupancy_sum".into(), Value::Int(s.pb_occupancy_sum)),
        ("stall_pb".into(), Value::Int(s.stall_pb)),
        ("stall_rbt".into(), Value::Int(s.stall_rbt)),
        ("stall_wb".into(), Value::Int(s.stall_wb)),
        ("stall_sync".into(), Value::Int(s.stall_sync)),
        ("stall_wpq".into(), Value::Int(s.stall_wpq)),
        ("stall_scheme".into(), Value::Int(s.stall_scheme)),
        ("l1".into(), pair_to_json(s.l1)),
        ("llc_sram".into(), pair_to_json(s.llc_sram)),
        ("dram_cache".into(), pair_to_json(s.dram_cache)),
        ("nvm_reads".into(), Value::Int(s.nvm_reads)),
        ("nvm_writes".into(), Value::Int(s.nvm_writes)),
        ("log_appends".into(), Value::Int(s.log_appends)),
        ("peak_live_logs".into(), Value::Int(s.peak_live_logs as u64)),
        (
            "region_size_hist".into(),
            Value::Arr(s.region_size_hist.iter().map(|&n| Value::Int(n)).collect()),
        ),
        (
            "op_mix".into(),
            Value::Arr(s.op_mix.iter().map(|&n| Value::Int(n)).collect()),
        ),
    ])
}

/// Deserialize stats; `None` on any missing/mistyped field (treated as a
/// cache miss, so schema drift degrades to recomputation, never corruption).
fn stats_from_json(v: &Value) -> Option<SimStats> {
    let hist_v = v.get("region_size_hist")?.as_arr()?;
    if hist_v.len() != 7 {
        return None;
    }
    let mut region_size_hist = [0u64; 7];
    for (slot, item) in region_size_hist.iter_mut().zip(hist_v) {
        *slot = item.as_u64()?;
    }
    let mix_v = v.get("op_mix")?.as_arr()?;
    if mix_v.len() != cwsp_ir::decoded::OPCODE_COUNT {
        return None;
    }
    let mut op_mix = [0u64; cwsp_ir::decoded::OPCODE_COUNT];
    for (slot, item) in op_mix.iter_mut().zip(mix_v) {
        *slot = item.as_u64()?;
    }
    Some(SimStats {
        cycles: v.get("cycles")?.as_u64()?,
        insts: v.get("insts")?.as_u64()?,
        loads: v.get("loads")?.as_u64()?,
        stores: v.get("stores")?.as_u64()?,
        ckpt_stores: v.get("ckpt_stores")?.as_u64()?,
        frame_stores: v.get("frame_stores")?.as_u64()?,
        syncs: v.get("syncs")?.as_u64()?,
        regions: v.get("regions")?.as_u64()?,
        region_insts: v.get("region_insts")?.as_u64()?,
        wpq_hits: v.get("wpq_hits")?.as_u64()?,
        wb_delays: v.get("wb_delays")?.as_u64()?,
        wb_occupancy_sum: v.get("wb_occupancy_sum")?.as_u64()?,
        pb_occupancy_sum: v.get("pb_occupancy_sum")?.as_u64()?,
        stall_pb: v.get("stall_pb")?.as_u64()?,
        stall_rbt: v.get("stall_rbt")?.as_u64()?,
        stall_wb: v.get("stall_wb")?.as_u64()?,
        stall_sync: v.get("stall_sync")?.as_u64()?,
        stall_wpq: v.get("stall_wpq")?.as_u64()?,
        stall_scheme: v.get("stall_scheme")?.as_u64()?,
        l1: pair_from_json(v.get("l1")?)?,
        llc_sram: pair_from_json(v.get("llc_sram")?)?,
        dram_cache: pair_from_json(v.get("dram_cache")?)?,
        nvm_reads: v.get("nvm_reads")?.as_u64()?,
        nvm_writes: v.get("nvm_writes")?.as_u64()?,
        log_appends: v.get("log_appends")?.as_u64()?,
        peak_live_logs: v.get("peak_live_logs")?.as_u64()? as usize,
        region_size_hist,
        op_mix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwsp_core::genprog::generate_default;

    fn tiny_module() -> Module {
        generate_default(11)
    }

    #[test]
    fn stats_json_round_trips_every_field() {
        let mut s = SimStats::default();
        // Give every field a distinct value so a swapped mapping is caught.
        for (n, f) in [
            &mut s.cycles,
            &mut s.insts,
            &mut s.loads,
            &mut s.stores,
            &mut s.ckpt_stores,
            &mut s.frame_stores,
            &mut s.syncs,
            &mut s.regions,
            &mut s.region_insts,
            &mut s.wpq_hits,
            &mut s.wb_delays,
            &mut s.wb_occupancy_sum,
            &mut s.pb_occupancy_sum,
            &mut s.stall_pb,
            &mut s.stall_rbt,
            &mut s.stall_wb,
            &mut s.stall_sync,
            &mut s.stall_wpq,
            &mut s.stall_scheme,
            &mut s.nvm_reads,
            &mut s.nvm_writes,
            &mut s.log_appends,
        ]
        .into_iter()
        .enumerate()
        {
            *f = n as u64 + 1;
        }
        s.l1 = (100, 101);
        s.llc_sram = (102, 103);
        s.dram_cache = (104, 105);
        s.peak_live_logs = 99;
        s.region_size_hist = [1, 2, 3, 4, 5, 6, 7];
        s.op_mix = std::array::from_fn(|i| 200 + i as u64);
        let text = stats_to_json(&s).to_pretty();
        let back = stats_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn memo_runs_each_key_once() {
        let e = Engine::new(None);
        let m = tiny_module();
        let cfg = SimConfig::default();
        let a = e.stats("t", &m, &cfg, Scheme::Baseline);
        let b = e.stats("t", &m, &cfg, Scheme::Baseline);
        assert_eq!(a, b);
        let c = e.counters();
        assert_eq!(c.jobs, 2);
        assert_eq!(c.memo_hits, 1);
        assert_eq!(c.disk_hits, 0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compile_memo_shares_one_compilation() {
        let e = Engine::new(None);
        let m = tiny_module();
        let a = e.compiled(&m, CompileOptions::default());
        let b = e.compiled(&m, CompileOptions::default());
        assert!(Arc::ptr_eq(&a, &b), "same Arc, compiled once");
        let c = e.compiled(
            &m,
            CompileOptions {
                pruning: false,
                ..Default::default()
            },
        );
        assert!(!Arc::ptr_eq(&a, &c), "different options compile separately");
    }

    #[test]
    fn disk_cache_round_trips_and_survives_a_fresh_engine() {
        let dir = std::env::temp_dir().join(format!("cwsp-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = tiny_module();
        let cfg = SimConfig::default();
        let warm = Engine::new(Some(dir.clone()));
        let a = warm.stats("t", &m, &cfg, Scheme::Baseline);
        assert_eq!(warm.counters().disk_hits, 0);
        // A fresh engine (fresh process, conceptually) hits the disk.
        let cold = Engine::new(Some(dir.clone()));
        let b = cold.stats("t", &m, &cfg, Scheme::Baseline);
        assert_eq!(a, b);
        assert_eq!(cold.counters().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn par_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_stats_agree_with_each_other() {
        let e = Engine::new(None);
        let m = tiny_module();
        let cfg = SimConfig::default();
        let runs: Vec<SimStats> = par_map(&[(); 8], |_| e.stats("t", &m, &cfg, Scheme::Baseline));
        for r in &runs[1..] {
            assert_eq!(*r, runs[0]);
        }
        assert_eq!(e.counters().jobs, 8);
    }

    #[test]
    fn harness_entry_schema_validates_and_catches_drift() {
        let delta = Counters {
            jobs: 10,
            memo_hits: 4,
            sim_insts: 1000,
            ..Default::default()
        };
        let entry = build_harness_entry(
            &delta,
            std::time::Duration::from_millis(12),
            &[1_000, 2_000, 50_000],
            0.83,
        );
        validate_harness_entry(&entry).expect("fresh entry validates");
        // Round-trip through the JSON text form (what lands on disk).
        let back = json::parse(&entry.to_pretty()).unwrap();
        validate_harness_entry(&back).expect("parsed entry validates");
        // Drift is caught: drop a required field.
        let mut broken = entry.clone();
        if let Value::Obj(fields) = &mut broken {
            fields.retain(|(k, _)| k != "queue_latency_us");
        }
        assert!(validate_harness_entry(&broken).is_err());
    }

    #[test]
    fn job_latencies_and_percentiles() {
        let e = Engine::new(None);
        let m = tiny_module();
        let cfg = SimConfig::default();
        assert_eq!(e.job_latency_count(), 0);
        let _ = e.stats("t", &m, &cfg, Scheme::Baseline);
        let _ = e.stats("t", &m, &cfg, Scheme::Baseline);
        let lats = e.job_latencies_since(0);
        assert_eq!(lats.len(), 2, "every request records a latency");
        assert!(lats[0] > 0);
        // Nearest-rank percentiles on a known distribution.
        let s = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile_ns(&s, 50.0), 50);
        assert_eq!(percentile_ns(&s, 90.0), 90);
        assert_eq!(percentile_ns(&s, 99.0), 100);
        assert_eq!(percentile_ns(&[], 50.0), 0);
    }

    #[test]
    fn pool_usage_accumulates_across_par_map() {
        let before = pool_usage();
        let items: Vec<u64> = (0..32).collect();
        let _ = par_map(&items, |&x| x + 1);
        let after = pool_usage();
        assert!(after.1 > before.1, "capacity advanced");
        assert!(after.0 >= before.0, "busy time is monotonic");
    }

    #[test]
    fn engine_publishes_metrics_registry() {
        let e = Engine::new(None);
        let m = tiny_module();
        let cfg = SimConfig::default();
        let _ = e.stats("t", &m, &cfg, Scheme::Baseline);
        let _ = e.stats("t", &m, &cfg, Scheme::Baseline);
        let mut reg = cwsp_obs::Registry::new();
        e.publish(&mut reg);
        assert_eq!(reg.counter_value("engine.jobs"), 2);
        assert_eq!(reg.counter_value("engine.memo_hits"), 1);
        assert!((reg.gauge_value("engine.hit_rate") - 0.5).abs() < 1e-12);
        assert!(json::parse(&reg.to_json()).is_ok(), "registry JSON parses");
    }

    #[test]
    fn harness_section_merges_as_top_level_key() {
        let dir = std::env::temp_dir().join(format!("cwsp-section-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_harness.json");
        merge_harness_entry(
            &path,
            "fig13_overhead",
            Value::Obj(vec![("wall_ms".into(), Value::Int(10))]),
        );
        merge_harness_section_at(
            &path,
            "analyzer",
            Value::Obj(vec![("modules".into(), Value::Int(38))]),
        );
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        // The section is a sibling of `figures`, not inside it.
        assert_eq!(
            doc.get("analyzer")
                .unwrap()
                .get("modules")
                .unwrap()
                .as_u64(),
            Some(38)
        );
        assert!(doc.get("figures").unwrap().get("analyzer").is_none());
        assert!(doc.get("figures").unwrap().get("fig13_overhead").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn harness_entry_merges_into_existing_document() {
        let dir = std::env::temp_dir().join(format!("cwsp-harness-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_harness.json");
        let entry = |ms| {
            Value::Obj(vec![
                ("wall_ms".into(), Value::Int(ms)),
                ("jobs".into(), Value::Int(4)),
            ])
        };
        merge_harness_entry(&path, "fig13_overhead", entry(10));
        merge_harness_entry(&path, "fig14_wsp_comparison", entry(20));
        merge_harness_entry(&path, "fig13_overhead", entry(30)); // overwrite
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let figs = doc.get("figures").unwrap();
        assert_eq!(
            figs.get("fig13_overhead")
                .unwrap()
                .get("wall_ms")
                .unwrap()
                .as_u64(),
            Some(30)
        );
        assert_eq!(
            figs.get("fig14_wsp_comparison")
                .unwrap()
                .get("wall_ms")
                .unwrap()
                .as_u64(),
            Some(20)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
