//! Flight recorder + crash forensics, end to end over real workloads.
//!
//! Three claims are pinned here:
//! 1. a disabled recorder is invisible — simulated statistics and output are
//!    byte-identical with the recorder attached or absent;
//! 2. the forensic frontier is *exact*: across hundreds of seeded power-fail
//!    injections, the report's predicted replay set matches the ordered
//!    write log of the actual recovery replay, address for address;
//! 3. the journal is crash-survivable — a directory-backed journal written
//!    through the spill store reads back from disk after the machine died.

use cwsp::core::system::CwspSystem;
use cwsp::obs::flight::{read_journal, FlightKind, FlightRecorder};
use cwsp::obs::forensics::StoreFate;
use cwsp::sim::config::SimConfig;
use cwsp::sim::machine::Machine;
use cwsp::sim::scheme::Scheme;

#[test]
fn recorder_is_invisible_to_simulated_results() {
    for name in ["tatp", "kmeans"] {
        let w = cwsp::workloads::by_name(name).unwrap();
        let system = CwspSystem::compile(&w.module);
        let cfg = SimConfig::default();
        let mut off = Machine::new(&system.compiled.module, &cfg, Scheme::cwsp());
        let r_off = off.run(150_000, None).unwrap();
        let mut on = Machine::new(&system.compiled.module, &cfg, Scheme::cwsp());
        on.enable_flight().unwrap();
        let r_on = on.run(150_000, None).unwrap();
        assert_eq!(r_off.end, r_on.end, "{name}: run end");
        assert_eq!(r_off.stats, r_on.stats, "{name}: stats must be invariant");
        assert_eq!(off.output(), on.output(), "{name}: output");
        assert!(
            !on.flight_records().is_empty(),
            "{name}: the recorder did record"
        );
    }
}

/// The acceptance bar: >= 200 effective seeded kill-cycle injections across
/// >= 3 workloads, every one with an exactly-matching replay prediction.
#[test]
fn frontier_prediction_matches_replay_oracle_across_injections() {
    let mut checked = 0usize;
    for (wi, name) in ["tatp", "kmeans", "radix"].iter().enumerate() {
        let w = cwsp::workloads::by_name(name).unwrap();
        let system = CwspSystem::compile(&w.module);
        // Deterministic LCG schedule of kill cycles, distinct per workload.
        let mut s: u64 = 0x9e37_79b9_7f4a_7c15 ^ (wi as u64).wrapping_mul(0xda94);
        for _ in 0..80 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let kill = 50 + (s >> 33) % 40_000;
            let inv = system
                .investigate_crash(kill, 50_000_000)
                .unwrap_or_else(|e| panic!("{name} crash@{kill}: {e}"));
            if inv.completed {
                continue;
            }
            let rep = inv.report.unwrap();
            assert!(
                rep.all_matched(),
                "{name} crash@{kill}: frontier/replay divergence: {:?}",
                rep.cross_checks
            );
            checked += 1;
        }
    }
    assert!(checked >= 200, "only {checked} effective injections");
}

#[test]
fn forensic_report_accounts_for_every_journaled_store() {
    let w = cwsp::workloads::by_name("tatp").unwrap();
    let system = CwspSystem::compile(&w.module);
    let inv = system.investigate_crash(20_000, 50_000_000).unwrap();
    assert!(!inv.completed);
    let rep = inv.report.unwrap();
    assert_eq!(rep.power_fail_cycle, Some(rep.crash_cycle));
    let c = rep.counts();
    let classified = c.committed + c.in_wpq + c.in_path + c.in_pb + c.reverted;
    assert_eq!(
        classified,
        rep.stores.len() as u64,
        "every store has exactly one fate"
    );
    assert!(c.committed > 0, "a 20k-cycle run committed something");
    // Lost stores carry (function, region, cause) attribution.
    for s in rep.stores.iter().filter(|s| s.fate.is_lost()) {
        assert_ne!(rep.func_name(s.func), "?", "lost store lacks attribution");
    }
    // Renderings stay well-formed on real data.
    assert!(rep.to_text().contains("crash"));
    assert!(rep.to_json().starts_with('{'));
    assert!(rep.to_chrome().to_json().contains("traceEvents"));
}

#[test]
fn directory_backed_journal_survives_the_machine() {
    let dir = std::env::temp_dir().join(format!("cwsp-flight-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let w = cwsp::workloads::by_name("kmeans").unwrap();
    let system = CwspSystem::compile(&w.module);
    let path = {
        let mut m = Machine::new(&system.compiled.module, &system.config, Scheme::cwsp());
        m.attach_flight(FlightRecorder::create_in(&dir).unwrap());
        let r = m.run(u64::MAX, Some(15_000)).unwrap();
        assert_eq!(r.end, cwsp::sim::machine::RunEnd::PowerFailure);
        m.flight().unwrap().path().unwrap().to_path_buf()
        // machine dropped here — only the file remains
    };
    let records = read_journal(&path).unwrap();
    assert!(records.iter().any(|r| r.kind == FlightKind::StoreIssue));
    assert!(
        records
            .last()
            .is_some_and(|r| r.kind == FlightKind::PowerFail),
        "sealed journal ends with the power-fail record"
    );
    // A frontier-free reconstruction still classifies committed stores.
    let rep = cwsp::obs::forensics::ForensicReport::reconstruct(&records, Default::default());
    assert!(rep
        .stores
        .iter()
        .any(|s| s.fate == StoreFate::Committed || s.fate == StoreFate::InWpq));
    std::fs::remove_dir_all(&dir).ok();
}
