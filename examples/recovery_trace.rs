//! Crash post-mortem with event tracing: run a workload under cWSP with the
//! machine's event ring enabled, cut power, and print the persist-machinery
//! timeline leading up to the failure — region opens/retirements, persist
//! arrivals, and the failure itself — then recover and verify.
//!
//! ```sh
//! cargo run --release --example recovery_trace
//! ```

use cwsp::compiler::pipeline::{CompileOptions, CwspCompiler};
use cwsp::core::recovery::recover;
use cwsp::sim::config::SimConfig;
use cwsp::sim::machine::{Machine, RunEnd};
use cwsp::sim::scheme::Scheme;

fn main() {
    let w = cwsp::workloads::by_name("cholesky").expect("workload");
    let compiled = CwspCompiler::new(CompileOptions::default()).compile(&w.module);
    let oracle = cwsp::ir::interp::run(&compiled.module, u64::MAX / 2).expect("oracle");

    let crash_cycle = 12_345;
    let cfg_ = SimConfig::default();
    let mut machine = Machine::new(&compiled.module, &cfg_, Scheme::cwsp());
    machine.enable_trace(4096);
    let r = machine.run(u64::MAX, Some(crash_cycle)).expect("run");
    assert_eq!(r.end, RunEnd::PowerFailure);

    println!("=== crash post-mortem ===");
    println!("{}", machine.trace().unwrap().post_mortem(16));

    let image = machine.into_crash_image();
    println!(
        "\ncrash image: {} undo records reverted, resume = {:?}",
        image.reverted_records, image.resume[0].1
    );
    let rec = recover(&compiled, image, 0, u64::MAX / 2).expect("recovery");
    println!(
        "recovered: replayed {} instructions; output matches oracle: {}",
        rec.replayed_steps,
        rec.output == oracle.output
    );
    assert_eq!(rec.output, oracle.output);
}
